"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package (the
PEP 660 editable-install path needs ``bdist_wheel``, the legacy
``setup.py develop`` path does not).
"""

from setuptools import setup

setup()
