"""Tests for the shared byte-packing helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import bytes_to_tile, ceil_div, pad_to_multiple, tile_to_bytes


class TestTileConversion:
    def test_int8_roundtrip(self):
        tile = np.arange(-8, 8, dtype=np.int8).reshape(4, 4)
        raw = tile_to_bytes(tile)
        assert raw.dtype == np.uint8
        back = bytes_to_tile(raw, (4, 4), np.int8)
        assert np.array_equal(back, tile)

    def test_int32_roundtrip(self):
        tile = np.array([[2**20, -5], [7, -(2**30)]], dtype=np.int32)
        raw = tile_to_bytes(tile)
        assert raw.size == 16
        back = bytes_to_tile(raw, (2, 2), np.int32)
        assert np.array_equal(back, tile)

    def test_row_major_byte_order(self):
        tile = np.array([[1, 2], [3, 4]], dtype=np.int8)
        assert list(tile_to_bytes(tile)) == [1, 2, 3, 4]

    def test_wrong_size_raises(self):
        with pytest.raises(ValueError):
            bytes_to_tile(np.zeros(5, dtype=np.uint8), (2, 2), np.int8)

    @given(
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
        dtype=st.sampled_from([np.int8, np.int16, np.int32]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, rows, cols, dtype, seed):
        rng = np.random.default_rng(seed)
        info = np.iinfo(dtype)
        tile = rng.integers(info.min, info.max, size=(rows, cols)).astype(dtype)
        back = bytes_to_tile(tile_to_bytes(tile), (rows, cols), dtype)
        assert np.array_equal(back, tile)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "num,den,expected", [(0, 8, 0), (1, 8, 1), (8, 8, 1), (9, 8, 2), (64, 8, 8)]
    )
    def test_values(self, num, den, expected):
        assert ceil_div(num, den) == expected

    def test_invalid_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(
        num=st.integers(min_value=0, max_value=10_000),
        den=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_property(self, num, den):
        result = ceil_div(num, den)
        assert result * den >= num
        assert (result - 1) * den < num or result == 0


class TestPadToMultiple:
    def test_no_padding_needed(self):
        array = np.ones((4, 8), dtype=np.int8)
        padded = pad_to_multiple(array, (4, 8))
        assert padded.shape == (4, 8)
        assert padded is array

    def test_padding_added_with_zeros(self):
        array = np.ones((3, 5), dtype=np.int8)
        padded = pad_to_multiple(array, (4, 8))
        assert padded.shape == (4, 8)
        assert padded[:3, :5].sum() == 15
        assert padded.sum() == 15

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            pad_to_multiple(np.ones((2, 2)), (2,))

    def test_invalid_multiple_raises(self):
        with pytest.raises(ValueError):
            pad_to_multiple(np.ones((2,)), (0,))
