"""Tests for the host CSR driver and the DMA model."""

import numpy as np
import pytest

from repro.compiler import PrePass, TensorLoad, compile_workload
from repro.core import FeatureSet
from repro.memory import MemorySubsystem
from repro.system import HostProcessor, datamaestro_evaluation_system
from repro.system.dma import Dma
from repro.system.system import AcceleratorSystem
from repro.workloads import GemmWorkload

DESIGN = datamaestro_evaluation_system()


class TestHostProcessor:
    def make_program(self):
        workload = GemmWorkload(name="host_gemm", m=16, n=16, k=16)
        return compile_workload(workload, DESIGN, FeatureSet.all_enabled())

    def test_csr_write_and_decode_roundtrip(self):
        program = self.make_program()
        host = HostProcessor(DESIGN)
        host.write_csrs("A", program.csr_writes["A"])
        decoded = host.decoded_config("A")
        original = program.streamer_configs["A"]
        assert decoded.base_address == original.base_address
        assert decoded.temporal_bounds == original.temporal_bounds
        assert decoded.temporal_strides == original.temporal_strides
        assert decoded.bank_group_size == original.bank_group_size

    def test_unprogrammed_port_raises(self):
        host = HostProcessor(DESIGN)
        with pytest.raises(KeyError):
            host.decoded_config("A")

    def test_program_streamer_configures_it(self):
        program = self.make_program()
        system = AcceleratorSystem(DESIGN)
        system.reset()
        host = HostProcessor(DESIGN)
        runtime = host.program_streamer(
            system.streamers["A"], program.csr_writes["A"], program.features
        )
        assert system.streamers["A"].configured
        assert runtime.total_iterations == program.ideal_compute_cycles

    def test_statistics_and_clear(self):
        program = self.make_program()
        host = HostProcessor(DESIGN)
        host.write_csrs("A", program.csr_writes["A"])
        stats = host.statistics()
        assert stats["csr_writes_issued"] == len(program.csr_writes["A"])
        assert stats["ports_programmed"] == 1
        host.clear()
        assert host.statistics()["ports_programmed"] == 0


class TestDma:
    def make_memory(self):
        return MemorySubsystem(DESIGN.memory.geometry())

    def test_load_tensor_places_data(self):
        memory = self.make_memory()
        dma = Dma(memory, words_per_cycle=8)
        data = np.arange(128, dtype=np.uint8)
        cycles = dma.load_tensor(TensorLoad("A", 256, data, 64))
        assert cycles == 2  # 16 words at 8 words/cycle
        stored = memory.scratchpad.backdoor_read(256, 128, group_size=64)
        assert np.array_equal(stored, data)
        # Initial loads are not charged to the kernel's access counters.
        assert memory.total_reads == 0 and memory.total_writes == 0

    def test_prepass_charges_accesses_and_cycles(self):
        memory = self.make_memory()
        dma = Dma(memory, words_per_cycle=8)
        cycles = dma.execute_prepass(
            PrePass("software_transpose", word_reads=64, word_writes=64, cycles=8)
        )
        assert cycles == 8
        assert memory.total_reads == 64
        assert memory.total_writes == 64
        stats = dma.statistics()
        assert stats["prepass_cycles"] == 8
        assert stats["prepass_reads"] == 64

    def test_multiple_loads_accumulate(self):
        memory = self.make_memory()
        dma = Dma(memory, words_per_cycle=8)
        loads = [
            TensorLoad("A", 0, np.zeros(64, dtype=np.uint8), 64),
            TensorLoad("B", 4096, np.zeros(64, dtype=np.uint8), 64),
        ]
        dma.load_tensors(loads)
        assert dma.bytes_loaded == 128

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dma(self.make_memory(), words_per_cycle=0)
