"""Failure-injection tests: the system surfaces misconfiguration loudly.

A cycle-level model is only trustworthy if broken configurations fail in
detectable ways instead of silently producing wrong numbers.  These tests
corrupt compiled programs in targeted ways and check that the system either
raises, deadlocks against the cycle budget, or produces results that the
numpy-oracle comparison rejects.
"""

import dataclasses

import numpy as np
import pytest

from repro.compiler import compile_workload
from repro.core import FeatureSet
from repro.sim import SimulationLimitError
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import GemmWorkload

DESIGN = datamaestro_evaluation_system()


@pytest.fixture(scope="module")
def system():
    return AcceleratorSystem(DESIGN)


def fresh_program(name, **workload_overrides):
    params = dict(m=16, n=16, k=16)
    params.update(workload_overrides)
    workload = GemmWorkload(name=name, **params)
    return compile_workload(workload, DESIGN, FeatureSet.all_enabled())


class TestConfigurationFaults:
    def test_too_few_streamed_words_deadlocks(self, system):
        """An AGU programmed with too few iterations starves the core."""
        program = fresh_program("fault_short_a")
        short_config = program.streamer_configs["A"].with_updates(
            temporal_bounds=(1, 1, 1)
        )
        program.streamer_configs["A"] = short_config
        from repro.core.csr import encode_runtime_config

        program.csr_writes["A"] = encode_runtime_config(
            DESIGN.streamer("A"), short_config, list(DESIGN.group_size_options())
        )
        with pytest.raises(SimulationLimitError) as excinfo:
            system.run(program, max_cycles=5_000)
        assert "fault_short_a" in str(excinfo.value)

    def test_wrong_base_address_detected_by_oracle(self, system):
        """Pointing the B stream at the wrong tensor yields a wrong result."""
        program = fresh_program("fault_wrong_base")
        wrong = program.streamer_configs["B"].with_updates(
            base_address=program.streamer_configs["A"].base_address
        )
        program.streamer_configs["B"] = wrong
        from repro.core.csr import encode_runtime_config

        program.csr_writes["B"] = encode_runtime_config(
            DESIGN.streamer("B"), wrong, list(DESIGN.group_size_options())
        )
        result = system.run(program)
        assert not system.verify_outputs(result)
        assert not np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_mismatched_addressing_mode_corrupts_data_not_timing(self, system):
        """Reading a region with the wrong RS decodes to the wrong banks."""
        program = fresh_program("fault_wrong_mode")
        wrong = program.streamer_configs["A"].with_updates(
            bank_group_size=DESIGN.memory.num_banks
        )
        program.streamer_configs["A"] = wrong
        from repro.core.csr import encode_runtime_config

        program.csr_writes["A"] = encode_runtime_config(
            DESIGN.streamer("A"), wrong, list(DESIGN.group_size_options())
        )
        result = system.run(program)
        assert not system.verify_outputs(result)

    def test_missing_port_configuration_rejected(self, system):
        """Dropping the B stream entirely must deadlock, not fabricate data."""
        program = fresh_program("fault_missing_port")
        del program.streamer_configs["B"]
        del program.csr_writes["B"]
        with pytest.raises(SimulationLimitError):
            system.run(program, max_cycles=2_000)

    def test_invalid_csr_image_rejected_at_configuration(self, system):
        program = fresh_program("fault_bad_csr")
        from repro.core.csr import CsrAddressMap

        csr_map = CsrAddressMap(DESIGN.streamer("A"))
        bad_writes = list(program.csr_writes["A"])
        bad_writes.append((csr_map.offset_of("addressing_mode"), 99))
        program.csr_writes["A"] = bad_writes
        with pytest.raises(ValueError):
            system.run(program)


class TestBudgetAndRecovery:
    def test_system_recovers_after_a_failed_run(self, system):
        program = fresh_program("fault_recover_broken")
        del program.streamer_configs["B"]
        del program.csr_writes["B"]
        with pytest.raises(SimulationLimitError):
            system.run(program, max_cycles=1_000)
        # A subsequent healthy kernel runs to completion and verifies.
        healthy = fresh_program("fault_recover_ok")
        result = system.run(healthy)
        assert system.verify_outputs(result)

    def test_deadlock_report_names_the_stalled_ports(self, system):
        program = fresh_program("fault_report")
        del program.streamer_configs["B"]
        del program.csr_writes["B"]
        with pytest.raises(SimulationLimitError) as excinfo:
            system.run(program, max_cycles=1_000)
        detail = str(excinfo.value)
        assert "A:" in detail and "core tiles done" in detail

    def test_oracle_mismatch_reported_for_corrupted_memory(self, system):
        """Corrupting the scratchpad after the run is caught by verification."""
        program = fresh_program("fault_corrupt_mem")
        result = system.run(program)
        readback = program.readbacks["D"]
        system.memory.scratchpad.backdoor_write(
            readback.base_address,
            np.full(16, 0xFF, dtype=np.uint8),
            group_size=readback.group_size,
        )
        from repro.compiler import extract_outputs

        corrupted = extract_outputs(program, system.memory)
        assert not np.array_equal(corrupted["D"], program.expected_outputs["D"])
