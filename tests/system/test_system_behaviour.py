"""System-level behavioural tests beyond functional correctness."""

import numpy as np
import pytest

from repro.compiler import compile_workload
from repro.core import FeatureSet
from repro.sim import SimulationLimitError
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import ConvWorkload, GemmWorkload

DESIGN = datamaestro_evaluation_system()


@pytest.fixture(scope="module")
def system():
    return AcceleratorSystem(DESIGN)


class TestRunMechanics:
    def test_run_is_deterministic(self, system):
        workload = GemmWorkload(name="sys_det", m=24, n=24, k=24)
        program = compile_workload(workload, DESIGN, FeatureSet.all_enabled())
        first = system.run(program)
        second = system.run(program)
        assert first.kernel_cycles == second.kernel_cycles
        assert first.memory_accesses == second.memory_accesses
        assert np.array_equal(first.outputs["D"], second.outputs["D"])

    def test_back_to_back_kernels_do_not_interfere(self, system):
        small = compile_workload(
            GemmWorkload(name="sys_small", m=16, n=16, k=16), DESIGN
        )
        large = compile_workload(
            GemmWorkload(name="sys_large", m=32, n=32, k=32), DESIGN
        )
        result_large = system.run(large)
        result_small = system.run(small)
        assert np.array_equal(result_small.outputs["D"], small.expected_outputs["D"])
        assert np.array_equal(result_large.outputs["D"], large.expected_outputs["D"])

    def test_cycle_budget_enforced(self, system):
        program = compile_workload(
            GemmWorkload(name="sys_budget", m=32, n=32, k=32), DESIGN
        )
        with pytest.raises(SimulationLimitError):
            system.run(program, max_cycles=10)

    def test_step_without_program_is_noop(self):
        fresh = AcceleratorSystem(DESIGN)
        assert fresh.finished
        assert not fresh.step()

    def test_metadata_recorded(self, system):
        workload = ConvWorkload(
            name="sys_meta",
            in_height=8,
            in_width=8,
            in_channels=8,
            out_channels=8,
            kernel_h=3,
            kernel_w=3,
        )
        program = compile_workload(workload, DESIGN)
        result = system.run(program)
        assert result.metadata["workload_group"] == "convolution"
        assert result.metadata["active_ports"] == ["A", "B", "C", "D"]
        assert result.metadata["features"]["fine_grained_prefetch"]


class TestArchitecturalEffects:
    def test_prefetch_reduces_stall_cycles(self, system):
        workload = GemmWorkload(name="sys_prefetch", m=32, n=32, k=32)
        on = system.run(compile_workload(workload, DESIGN, FeatureSet.all_enabled()))
        off = system.run(
            compile_workload(
                workload,
                DESIGN,
                FeatureSet.all_enabled().with_updates(fine_grained_prefetch=False),
            )
        )
        assert off.counters["gemm_stall_cycles"] > on.counters["gemm_stall_cycles"]
        assert off.kernel_cycles > on.kernel_cycles

    def test_addressing_mode_switching_reduces_conflicts(self, system):
        workload = GemmWorkload(name="sys_addr", m=64, n=64, k=64)
        switched = system.run(compile_workload(workload, DESIGN, FeatureSet.all_enabled()))
        flat = system.run(
            compile_workload(
                workload,
                DESIGN,
                FeatureSet.all_enabled().with_updates(addressing_mode_switching=False),
            )
        )
        assert switched.utilization >= flat.utilization
        assert np.array_equal(switched.outputs["D"], flat.outputs["D"])

    def test_write_volume_matches_output_size(self, system):
        workload = GemmWorkload(name="sys_writes", m=16, n=16, k=16, with_bias=False)
        program = compile_workload(workload, DESIGN)
        result = system.run(program)
        # D writes: 2x2 tiles x 32 words per tile.
        assert result.memory_writes == 2 * 2 * 32

    def test_read_volume_matches_streamed_words(self, system):
        workload = GemmWorkload(name="sys_reads", m=16, n=16, k=16, with_bias=False)
        program = compile_workload(workload, DESIGN)
        result = system.run(program)
        # A and B each stream 8 words per compute step.
        assert result.memory_reads == 2 * 8 * program.ideal_compute_cycles

    def test_quantized_path_writes_int8_volume(self, system):
        workload = GemmWorkload(name="sys_quant", m=16, n=16, k=16, quantize=True)
        program = compile_workload(workload, DESIGN)
        result = system.run(program)
        assert result.counters["quantizer_tiles"] == program.job.output_tiles
        # E writes: 8 words per output tile instead of 32.
        assert result.memory_writes == program.job.output_tiles * 8

    def test_verify_outputs_detects_corruption(self, system):
        workload = GemmWorkload(name="sys_verify", m=16, n=16, k=16)
        program = compile_workload(workload, DESIGN)
        result = system.run(program)
        assert system.verify_outputs(result)
        result.outputs["D"][0, 0] += 1
        assert not system.verify_outputs(result)
