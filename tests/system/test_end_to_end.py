"""End-to-end integration tests: compile → simulate → compare with numpy.

These are the most important tests in the repository: they run real data
through the full cycle-level system (five DataMaestros, crossbar, GeMM core,
quantizer) and check the functional result against the numpy oracle, for
every workload group and every ablation feature configuration.
"""

import numpy as np
import pytest

from repro.core import FeatureSet, ablation_feature_sets
from repro.compiler import compile_workload
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import ConvWorkload, GemmWorkload


@pytest.fixture(scope="module")
def design():
    return datamaestro_evaluation_system()


@pytest.fixture(scope="module")
def system(design):
    return AcceleratorSystem(design)


def run_workload(system, design, workload, features=None, seed=0):
    program = compile_workload(workload, design, features, seed=seed)
    result = system.run(program)
    return program, result


class TestGemmFunctional:
    def test_small_gemm_matches_numpy(self, system, design):
        workload = GemmWorkload(name="e2e_gemm_16", m=16, n=16, k=16)
        program, result = run_workload(system, design, workload)
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])
        assert system.verify_outputs(result)

    def test_non_multiple_dimensions_are_padded(self, system, design):
        workload = GemmWorkload(name="e2e_gemm_odd", m=13, n=11, k=19)
        program, result = run_workload(system, design, workload)
        assert result.outputs["D"].shape == (13, 11)
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_gemm_without_bias(self, system, design):
        workload = GemmWorkload(name="e2e_gemm_nobias", m=16, n=16, k=16, with_bias=False)
        program, result = run_workload(system, design, workload)
        assert "C" not in program.streamer_configs
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_transposed_gemm_with_transposer(self, system, design):
        workload = GemmWorkload(name="e2e_tgemm", m=16, n=16, k=24, transposed_a=True)
        program, result = run_workload(system, design, workload)
        assert program.metadata["use_transposer"]
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_transposed_gemm_without_transposer_feature(self, system, design):
        features = FeatureSet.all_enabled().with_updates(transposer=False)
        workload = GemmWorkload(name="e2e_tgemm_sw", m=16, n=16, k=24, transposed_a=True)
        program, result = run_workload(system, design, workload, features)
        assert not program.metadata["use_transposer"]
        assert program.prepasses and program.prepasses[0].name == "software_transpose_A"
        assert result.prepass_cycles > 0
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_quantized_gemm_produces_int8(self, system, design):
        workload = GemmWorkload(name="e2e_gemm_quant", m=16, n=16, k=32, quantize=True)
        program, result = run_workload(system, design, workload)
        assert program.uses_quantizer
        assert result.outputs["E"].dtype == np.int8
        assert np.array_equal(result.outputs["E"], program.expected_outputs["E"])

    def test_seed_changes_data_but_not_timing_shape(self, system, design):
        workload = GemmWorkload(name="e2e_gemm_seed", m=16, n=16, k=16)
        program0, result0 = run_workload(system, design, workload, seed=0)
        program1, result1 = run_workload(system, design, workload, seed=1)
        assert not np.array_equal(
            program0.expected_outputs["D"], program1.expected_outputs["D"]
        )
        assert result0.streaming_cycles == result1.streaming_cycles


class TestGemmFeatureConfigurations:
    @pytest.mark.parametrize("step_name", list(ablation_feature_sets().keys()))
    def test_every_ablation_step_is_functionally_correct(
        self, system, design, step_name
    ):
        features = ablation_feature_sets()[step_name]
        workload = GemmWorkload(name=f"e2e_abl_{step_name}", m=16, n=16, k=16)
        program, result = run_workload(system, design, workload, features)
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_full_features_reach_near_peak_utilization(self, system, design):
        workload = GemmWorkload(name="e2e_gemm_util", m=32, n=32, k=64)
        _, result = run_workload(system, design, workload, FeatureSet.all_enabled())
        assert result.utilization > 0.93

    def test_baseline_is_much_slower_than_full(self, system, design):
        workload = GemmWorkload(name="e2e_gemm_base", m=32, n=32, k=32)
        _, full = run_workload(system, design, workload, FeatureSet.all_enabled())
        _, base = run_workload(system, design, workload, FeatureSet.all_disabled())
        assert base.kernel_cycles > 1.5 * full.kernel_cycles
        assert base.utilization < full.utilization

    def test_broadcaster_reduces_memory_reads(self, system, design):
        workload = GemmWorkload(name="e2e_gemm_bcast", m=32, n=32, k=32)
        with_bcast = FeatureSet.all_enabled()
        without_bcast = FeatureSet.all_enabled().with_updates(broadcaster=False)
        _, on = run_workload(system, design, workload, with_bcast)
        _, off = run_workload(system, design, workload, without_bcast)
        assert on.memory_reads < off.memory_reads
        assert np.array_equal(on.outputs["D"], off.outputs["D"])


class TestConvFunctional:
    def test_small_conv_matches_numpy(self, system, design):
        workload = ConvWorkload(
            name="e2e_conv3x3",
            in_height=8,
            in_width=8,
            in_channels=8,
            out_channels=8,
            kernel_h=3,
            kernel_w=3,
        )
        program, result = run_workload(system, design, workload)
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_conv_with_padding(self, system, design):
        workload = ConvWorkload(
            name="e2e_conv_pad",
            in_height=8,
            in_width=8,
            in_channels=8,
            out_channels=16,
            kernel_h=3,
            kernel_w=3,
            padding=1,
        )
        program, result = run_workload(system, design, workload)
        assert result.outputs["D"].shape == (8, 8, 16)
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_strided_conv(self, system, design):
        workload = ConvWorkload(
            name="e2e_conv_stride2",
            in_height=10,
            in_width=10,
            in_channels=8,
            out_channels=8,
            kernel_h=3,
            kernel_w=3,
            stride=2,
        )
        program, result = run_workload(system, design, workload)
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_pointwise_conv(self, system, design):
        workload = ConvWorkload(
            name="e2e_conv1x1",
            in_height=8,
            in_width=8,
            in_channels=16,
            out_channels=16,
            kernel_h=1,
            kernel_w=1,
        )
        program, result = run_workload(system, design, workload)
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_conv_without_implicit_im2col_charges_prepass(self, system, design):
        features = FeatureSet.all_enabled().with_updates(implicit_im2col=False)
        workload = ConvWorkload(
            name="e2e_conv_sw_im2col",
            in_height=8,
            in_width=8,
            in_channels=8,
            out_channels=8,
            kernel_h=3,
            kernel_w=3,
        )
        program, result = run_workload(system, design, workload, features)
        assert program.prepasses and program.prepasses[0].name == "software_im2col"
        assert result.prepass_cycles > 0
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])

    def test_pointwise_conv_needs_no_im2col_prepass(self, system, design):
        features = FeatureSet.all_enabled().with_updates(implicit_im2col=False)
        workload = ConvWorkload(
            name="e2e_conv1x1_noim2col",
            in_height=8,
            in_width=8,
            in_channels=8,
            out_channels=8,
            kernel_h=1,
            kernel_w=1,
        )
        program, _ = run_workload(system, design, workload, features)
        assert not program.prepasses

    def test_quantized_conv(self, system, design):
        workload = ConvWorkload(
            name="e2e_conv_quant",
            in_height=8,
            in_width=8,
            in_channels=8,
            out_channels=8,
            kernel_h=3,
            kernel_w=3,
            quantize=True,
        )
        program, result = run_workload(system, design, workload)
        assert np.array_equal(result.outputs["E"], program.expected_outputs["E"])

    def test_conv_baseline_functionally_correct(self, system, design):
        workload = ConvWorkload(
            name="e2e_conv_base",
            in_height=8,
            in_width=8,
            in_channels=8,
            out_channels=8,
            kernel_h=3,
            kernel_w=3,
        )
        program, result = run_workload(
            system, design, workload, FeatureSet.all_disabled()
        )
        assert np.array_equal(result.outputs["D"], program.expected_outputs["D"])


class TestTimingMetrics:
    def test_utilization_never_exceeds_one(self, system, design):
        workload = GemmWorkload(name="e2e_util_bound", m=16, n=16, k=16)
        _, result = run_workload(system, design, workload)
        assert 0.0 < result.utilization <= 1.0

    def test_result_counters_present(self, system, design):
        workload = GemmWorkload(name="e2e_counters", m=16, n=16, k=16)
        _, result = run_workload(system, design, workload)
        assert result.counters["gemm_mac_cycles"] == result.ideal_compute_cycles
        assert result.memory_reads > 0
        assert result.memory_writes > 0
        assert set(result.streamer_stats) == {"A", "B", "C", "D"}

    def test_memory_reads_scale_with_work(self, system, design):
        small = GemmWorkload(name="e2e_small", m=16, n=16, k=16)
        large = GemmWorkload(name="e2e_large", m=32, n=32, k=32)
        _, small_result = run_workload(system, design, small)
        _, large_result = run_workload(system, design, large)
        assert large_result.memory_reads > 4 * small_result.memory_reads
