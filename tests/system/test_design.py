"""Tests for the evaluation-system design description (Fig. 6 parameters)."""

import pytest

from repro.core import StreamerMode
from repro.system import (
    PORT_NAMES,
    datamaestro_evaluation_system,
    validate_port_widths,
)
from repro.system.design import AcceleratorSystemDesign


class TestEvaluationSystemDesign:
    def test_five_ports_with_expected_roles(self):
        design = datamaestro_evaluation_system()
        assert tuple(s.name for s in design.streamers) == PORT_NAMES
        assert design.streamer("A").mode is StreamerMode.READ
        assert design.streamer("B").mode is StreamerMode.READ
        assert design.streamer("C").mode is StreamerMode.READ
        assert design.streamer("D").mode is StreamerMode.WRITE
        assert design.streamer("E").mode is StreamerMode.WRITE

    def test_paper_figure6_parameters(self):
        design = datamaestro_evaluation_system()
        # 8x8x8 Tensor-Core-like array -> 512 PEs, 1 TOPS peak at 1 GHz.
        assert design.num_pes == 512
        assert design.peak_gops == pytest.approx(1024.0)
        # 128 KiB scratchpad with 64-bit banks.
        assert design.memory.capacity_bytes == 128 * 1024
        assert design.memory.bank_width_bits == 64
        # Port widths: A/B 512-bit, C/D 2048-bit, E 512-bit.
        assert design.streamer("A").word_bytes == 64
        assert design.streamer("B").word_bytes == 64
        assert design.streamer("C").word_bytes == 256
        assert design.streamer("D").word_bytes == 256
        assert design.streamer("E").word_bytes == 64
        # Deep data FIFOs on the per-cycle streams, single-entry elsewhere.
        assert design.streamer("A").data_buffer_depth == 8
        assert design.streamer("C").data_buffer_depth == 1
        # The 6-D temporal AGU of port A enables implicit im2col.
        assert design.streamer("A").temporal_dims == 6
        # Extensions: Transposer on A, Broadcaster on the init stream C.
        assert design.streamer("A").extension_kinds() == ["transposer"]
        assert design.streamer("C").extension_kinds() == ["broadcaster"]

    def test_group_size_options_cover_all_three_modes(self):
        design = datamaestro_evaluation_system()
        options = design.group_size_options()
        assert design.memory.num_banks in options  # FIMA
        assert 1 in options  # NIMA
        assert any(1 < option < design.memory.num_banks for option in options)  # GIMA

    def test_port_width_validation_passes(self):
        validate_port_widths(datamaestro_evaluation_system())

    def test_port_width_validation_catches_mismatch(self):
        design = datamaestro_evaluation_system()
        bad = AcceleratorSystemDesign(
            name="bad",
            memory=design.memory,
            streamers=design.streamers,
            gemm_mu=16,
            gemm_nu=8,
            gemm_ku=8,
        )
        with pytest.raises(ValueError):
            validate_port_widths(bad)

    def test_unknown_port_raises(self):
        with pytest.raises(KeyError):
            datamaestro_evaluation_system().streamer("Z")

    def test_streamer_map(self):
        design = datamaestro_evaluation_system()
        assert set(design.streamer_map()) == set(PORT_NAMES)

    def test_configurable_scratchpad_size(self):
        design = datamaestro_evaluation_system(scratchpad_kib=256)
        assert design.memory.capacity_bytes == 256 * 1024

    def test_invalid_parameters_rejected(self):
        design = datamaestro_evaluation_system()
        with pytest.raises(ValueError):
            AcceleratorSystemDesign(
                name="bad",
                memory=design.memory,
                streamers=design.streamers,
                gemm_mu=0,
            )
        with pytest.raises(ValueError):
            AcceleratorSystemDesign(
                name="bad",
                memory=design.memory,
                streamers=design.streamers,
                dma_words_per_cycle=0,
            )
