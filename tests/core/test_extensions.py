"""Tests for datapath extensions: transposer, broadcaster, registry, cascade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Broadcaster,
    DatapathExtension,
    ExtensionPipeline,
    ExtensionSpec,
    Transposer,
    create_extension,
    register_extension,
    registered_extensions,
)


class TestTransposer:
    def test_transposes_square_int8_tile(self):
        tile = np.arange(64, dtype=np.uint8)
        transposer = Transposer(rows=8, cols=8, element_bytes=1)
        out = transposer.apply(tile)
        expected = tile.reshape(8, 8).T.reshape(-1)
        assert np.array_equal(out, expected)

    def test_transposes_rectangular_tile(self):
        tile = np.arange(2 * 4, dtype=np.uint8)
        transposer = Transposer(rows=2, cols=4, element_bytes=1)
        out = transposer.apply(tile)
        assert np.array_equal(out, tile.reshape(2, 4).T.reshape(-1))

    def test_transposes_multibyte_elements(self):
        tile = np.arange(4 * 4, dtype=np.int32)
        raw = tile.view(np.uint8)
        transposer = Transposer(rows=4, cols=4, element_bytes=4)
        out = transposer.apply(raw)
        recovered = out.view(np.int32).reshape(4, 4)
        assert np.array_equal(recovered, tile.reshape(4, 4).T)

    def test_double_transpose_is_identity(self):
        tile = np.arange(64, dtype=np.uint8)
        transposer = Transposer(rows=8, cols=8, element_bytes=1)
        assert np.array_equal(transposer.apply(transposer.apply(tile)), tile)

    def test_bypass_when_disabled(self):
        tile = np.arange(64, dtype=np.uint8)
        transposer = Transposer(rows=8, cols=8, element_bytes=1)
        transposer.set_enabled(False)
        assert np.array_equal(transposer.apply(tile), tile)
        assert transposer.words_bypassed == 1
        assert transposer.words_processed == 0

    def test_wrong_size_raises(self):
        transposer = Transposer(rows=8, cols=8, element_bytes=1)
        with pytest.raises(ValueError):
            transposer.apply(np.zeros(63, dtype=np.uint8))

    @given(
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
        element_bytes=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_transpose_matches_numpy(self, rows, cols, element_bytes, seed):
        rng = np.random.default_rng(seed)
        word = rng.integers(0, 256, size=rows * cols * element_bytes, dtype=np.uint8)
        transposer = Transposer(rows=rows, cols=cols, element_bytes=element_bytes)
        out = transposer.apply(word)
        expected = (
            word.reshape(rows, cols, element_bytes).transpose(1, 0, 2).reshape(-1)
        )
        assert np.array_equal(out, expected)


class TestBroadcaster:
    def test_duplicates_word(self):
        broadcaster = Broadcaster(factor=4)
        word = np.array([1, 2, 3], dtype=np.uint8)
        out = broadcaster.apply(word)
        assert np.array_equal(out, np.tile(word, 4))

    def test_factor_one_is_identity(self):
        broadcaster = Broadcaster(factor=1)
        word = np.arange(8, dtype=np.uint8)
        assert np.array_equal(broadcaster.apply(word), word)

    def test_expansion_factor(self):
        broadcaster = Broadcaster(factor=8)
        assert broadcaster.expansion_factor() == 8
        broadcaster.set_enabled(False)
        assert broadcaster.expansion_factor() == 1

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            Broadcaster(factor=0)

    def test_runtime_reconfiguration(self):
        broadcaster = Broadcaster(factor=2)
        broadcaster.configure(factor=3)
        out = broadcaster.apply(np.array([7], dtype=np.uint8))
        assert out.size == 3


class TestRegistry:
    def test_builtin_kinds_registered(self):
        kinds = registered_extensions()
        assert "transposer" in kinds
        assert "broadcaster" in kinds
        assert "identity" in kinds

    def test_create_from_spec(self):
        spec = ExtensionSpec.make("transposer", rows=4, cols=4, element_bytes=1)
        extension = create_extension(spec)
        assert isinstance(extension, Transposer)
        assert extension.params["rows"] == 4

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            create_extension(ExtensionSpec.make("does_not_exist"))

    def test_custom_extension_registration(self):
        @register_extension
        class NegateExtension(DatapathExtension):
            kind = "test_negate"

            def process(self, word):
                return (255 - word).astype(np.uint8)

        extension = create_extension(ExtensionSpec.make("test_negate"))
        out = extension.apply(np.array([0, 255, 10], dtype=np.uint8))
        assert list(out) == [255, 0, 245]


class TestPipeline:
    def test_cascade_applies_in_order(self):
        pipeline = ExtensionPipeline(
            [Transposer(rows=2, cols=2, element_bytes=1), Broadcaster(factor=2)]
        )
        word = np.array([1, 2, 3, 4], dtype=np.uint8)
        out = pipeline.apply(word)
        transposed = np.array([1, 3, 2, 4], dtype=np.uint8)
        assert np.array_equal(out, np.tile(transposed, 2))

    def test_from_specs(self):
        pipeline = ExtensionPipeline.from_specs(
            [ExtensionSpec.make("broadcaster", factor=2)]
        )
        assert len(pipeline) == 1
        assert pipeline.stage("broadcaster") is not None
        assert pipeline.stage("transposer") is None

    def test_set_enables_bypasses_stage(self):
        pipeline = ExtensionPipeline([Transposer(rows=2, cols=2, element_bytes=1)])
        pipeline.set_enables([False])
        word = np.array([1, 2, 3, 4], dtype=np.uint8)
        assert np.array_equal(pipeline.apply(word), word)

    def test_configure_stage(self):
        pipeline = ExtensionPipeline([Broadcaster(factor=2)])
        pipeline.configure_stage("broadcaster", factor=4)
        assert pipeline.expansion_factor() == 4

    def test_configure_missing_stage_raises(self):
        pipeline = ExtensionPipeline([])
        with pytest.raises(KeyError):
            pipeline.configure_stage("transposer", rows=8)

    def test_statistics(self):
        pipeline = ExtensionPipeline([Broadcaster(factor=2)])
        pipeline.apply(np.zeros(4, dtype=np.uint8))
        stats = pipeline.statistics()
        assert stats["broadcaster_0_processed"] == 1
        assert stats["broadcaster_0_bypassed"] == 0


class TestApplyBatch:
    """apply_batch must equal per-word apply, counters included."""

    def _pair(self, make):
        return make(), make()

    def test_transposer_batch_matches_scalar(self):
        import numpy as np

        scalar, batched = self._pair(
            lambda: Transposer(rows=4, cols=4, element_bytes=1)
        )
        words = np.arange(3 * 16, dtype=np.uint8).reshape(3, 16)
        expected = np.stack([scalar.apply(word) for word in words])
        result = batched.apply_batch(words)
        assert np.array_equal(result, expected)
        assert batched.words_processed == scalar.words_processed == 3

    def test_broadcaster_batch_matches_scalar(self):
        import numpy as np

        scalar, batched = self._pair(lambda: Broadcaster(factor=4))
        words = np.arange(2 * 8, dtype=np.uint8).reshape(2, 8)
        expected = np.stack([scalar.apply(word) for word in words])
        assert np.array_equal(batched.apply_batch(words), expected)
        assert batched.words_processed == 2

    def test_disabled_stage_counts_bypasses(self):
        import numpy as np

        stage = Transposer(rows=2, cols=2, element_bytes=1)
        stage.set_enabled(False)
        words = np.zeros((5, 4), dtype=np.uint8)
        out = stage.apply_batch(words)
        assert np.array_equal(out, words)
        assert stage.words_bypassed == 5
        assert stage.words_processed == 0

    def test_custom_extension_falls_back_to_per_word(self):
        import numpy as np

        class Reverser(DatapathExtension):
            kind = "reverser"

            def process(self, word):
                return word[::-1]

        stage = Reverser()
        words = np.arange(2 * 4, dtype=np.uint8).reshape(2, 4)
        out = stage.apply_batch(words)
        assert np.array_equal(out, words[:, ::-1])
        assert stage.words_processed == 2

    def test_pipeline_batch_matches_scalar_cascade(self):
        import numpy as np

        def build():
            pipeline = ExtensionPipeline(
                [Broadcaster(factor=2), Transposer(rows=4, cols=4, element_bytes=1)]
            )
            return pipeline

        scalar, batched = build(), build()
        words = np.arange(3 * 8, dtype=np.uint8).reshape(3, 8)
        expected = np.stack([scalar.apply(word) for word in words])
        assert np.array_equal(batched.apply_batch(words), expected)
        assert batched.statistics() == scalar.statistics()
