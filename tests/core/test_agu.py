"""Tests for the N-D affine address generation unit (paper §III-B, Fig. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AddressGenerationUnit,
    SpatialAddressGenerator,
    TemporalAddressGenerator,
    reference_address_sequence,
    reference_temporal_addresses,
)


class TestTemporalAGU:
    def test_single_dimension_sequence(self):
        agu = TemporalAddressGenerator(bounds=[4], strides=[8], base_address=100)
        addresses = []
        while not agu.exhausted:
            addresses.append(agu.current_address())
            agu.advance()
        assert addresses == [100, 108, 116, 124]

    def test_zero_stride_dimension_repeats(self):
        agu = TemporalAddressGenerator(bounds=[2, 3], strides=[4, 0])
        addresses = []
        while not agu.exhausted:
            addresses.append(agu.current_address())
            agu.advance()
        assert addresses == [0, 4, 0, 4, 0, 4]

    def test_total_iterations(self):
        agu = TemporalAddressGenerator(bounds=[2, 3, 4], strides=[1, 10, 100])
        assert agu.total_iterations == 24

    def test_reset(self):
        agu = TemporalAddressGenerator(bounds=[2], strides=[4])
        agu.advance()
        agu.advance()
        assert agu.exhausted
        agu.reset()
        assert not agu.exhausted
        assert agu.current_address() == 0

    def test_advance_past_end_raises(self):
        agu = TemporalAddressGenerator(bounds=[1], strides=[4])
        agu.advance()
        with pytest.raises(RuntimeError):
            agu.advance()

    def test_indices_track_loop_variables(self):
        agu = TemporalAddressGenerator(bounds=[2, 2], strides=[1, 10])
        seen = []
        while not agu.exhausted:
            seen.append(agu.current_indices())
            agu.advance()
        assert seen == [(0, 0), (1, 0), (0, 1), (1, 1)]

    @pytest.mark.parametrize(
        "bounds,strides",
        [([], []), ([2], [1, 2]), ([0], [1]), ([-1], [1])],
    )
    def test_invalid_configuration_rejected(self, bounds, strides):
        with pytest.raises(ValueError):
            TemporalAddressGenerator(bounds=bounds, strides=strides)


class TestSpatialAGU:
    def test_one_dimensional_offsets(self):
        spatial = SpatialAddressGenerator(bounds=[4], strides=[8])
        assert spatial.offsets == (0, 8, 16, 24)

    def test_two_dimensional_offsets_innermost_first(self):
        spatial = SpatialAddressGenerator(bounds=[2, 3], strides=[1, 10])
        assert spatial.offsets == (0, 1, 10, 11, 20, 21)

    def test_expand_adds_temporal_address(self):
        spatial = SpatialAddressGenerator(bounds=[2], strides=[4])
        assert spatial.expand(100) == (100, 104)

    def test_expand_with_reduced_channel_count(self):
        spatial = SpatialAddressGenerator(bounds=[4], strides=[8])
        assert spatial.expand(0, count=2) == (0, 8)
        assert spatial.expand(0, count=4) == (0, 8, 16, 24)
        assert spatial.expand(0, count=0) == (0, 8, 16, 24)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SpatialAddressGenerator(bounds=[], strides=[])
        with pytest.raises(ValueError):
            SpatialAddressGenerator(bounds=[2], strides=[1, 2])


class TestFigure4Example:
    """The exact example of Fig. 4: 4x4x4 GeMM on a 2x2x2 PE array."""

    def make_agu(self):
        # Dt=3: Bt=[2,2,2], St=[4,0,8]; Ds=2: Bs=[2,2], Ss=[1,2].
        return AddressGenerationUnit(
            temporal_bounds=[2, 2, 2],
            temporal_strides=[4, 0, 8],
            spatial_bounds=[2, 2],
            spatial_strides=[1, 2],
            base_address=0,
        )

    def test_temporal_addresses_match_figure(self):
        agu = self.make_agu()
        temporal = [bundle.temporal_address for bundle in agu.iter_bundles()]
        assert temporal == [0, 4, 0, 4, 8, 12, 8, 12]

    def test_spatial_addresses_match_figure(self):
        agu = self.make_agu()
        bundles = list(agu.iter_bundles())
        # Figure 4 (c): per clock cycle the four spatial addresses SA0..SA3.
        expected = [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9, 10, 11),
            (12, 13, 14, 15),
            (8, 9, 10, 11),
            (12, 13, 14, 15),
        ]
        assert [bundle.addresses for bundle in bundles] == expected

    def test_bundle_metadata(self):
        agu = self.make_agu()
        bundles = list(agu.iter_bundles())
        assert len(bundles) == 8
        assert bundles[0].step == 0
        assert bundles[-1].last
        assert not bundles[0].last
        assert agu.exhausted


class TestAGUProperties:
    temporal_dims = st.integers(min_value=1, max_value=4)

    @given(
        data=st.data(),
        base=st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_dual_counter_matches_multiplication_reference(self, data, base):
        """The accumulator-based AGU equals base + Σ stride*index."""
        dims = data.draw(st.integers(min_value=1, max_value=4))
        bounds = data.draw(
            st.lists(st.integers(min_value=1, max_value=5), min_size=dims, max_size=dims)
        )
        strides = data.draw(
            st.lists(st.integers(min_value=0, max_value=256), min_size=dims, max_size=dims)
        )
        agu = TemporalAddressGenerator(bounds=bounds, strides=strides, base_address=base)
        produced = []
        while not agu.exhausted:
            produced.append(agu.current_address())
            agu.advance()
        assert produced == reference_temporal_addresses(bounds, strides, base)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_full_agu_matches_reference_sequence(self, data):
        t_dims = data.draw(st.integers(min_value=1, max_value=3))
        s_dims = data.draw(st.integers(min_value=1, max_value=2))
        t_bounds = data.draw(
            st.lists(st.integers(min_value=1, max_value=4), min_size=t_dims, max_size=t_dims)
        )
        t_strides = data.draw(
            st.lists(st.integers(min_value=0, max_value=64), min_size=t_dims, max_size=t_dims)
        )
        s_bounds = data.draw(
            st.lists(st.integers(min_value=1, max_value=4), min_size=s_dims, max_size=s_dims)
        )
        s_strides = data.draw(
            st.lists(st.integers(min_value=0, max_value=64), min_size=s_dims, max_size=s_dims)
        )
        agu = AddressGenerationUnit(
            temporal_bounds=t_bounds,
            temporal_strides=t_strides,
            spatial_bounds=s_bounds,
            spatial_strides=s_strides,
        )
        produced = [bundle.addresses for bundle in agu.iter_bundles()]
        expected = reference_address_sequence(
            t_bounds, t_strides, s_bounds, s_strides
        )
        assert produced == expected

    @given(
        bounds=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_number_of_bundles_equals_product_of_bounds(self, bounds):
        agu = AddressGenerationUnit(
            temporal_bounds=bounds,
            temporal_strides=[1] * len(bounds),
            spatial_bounds=[2],
            spatial_strides=[1],
        )
        bundles = list(agu.iter_bundles())
        expected = 1
        for bound in bounds:
            expected *= bound
        assert len(bundles) == expected


class TestBatchEvaluation:
    """Vectorized AGU evaluation must equal the stepped dual counters."""

    CONFIGS = [
        ((4,), (8,), 0),
        ((3, 5), (16, 64), 128),
        ((2, 3, 4), (8, 0, 512), 32768),
        ((8, 8, 8), (64, 0, 512), 0),
    ]

    def test_address_batch_matches_stepping(self):
        from repro.core.agu import TemporalAddressGenerator

        for bounds, strides, base in self.CONFIGS:
            generator = TemporalAddressGenerator(bounds, strides, base)
            stepped = []
            while not generator.exhausted:
                stepped.append(generator.current_address())
                generator.advance()
            fresh = TemporalAddressGenerator(bounds, strides, base)
            batch = fresh.address_batch(0, len(stepped))
            assert batch.tolist() == stepped
            # Arbitrary window.
            window = fresh.address_batch(2, len(stepped) - 2)
            assert window.tolist() == stepped[2:]

    def test_address_batch_window_bounds(self):
        from repro.core.agu import TemporalAddressGenerator

        generator = TemporalAddressGenerator((2, 2), (1, 2))
        with pytest.raises(ValueError):
            generator.address_batch(0, 5)
        with pytest.raises(ValueError):
            generator.address_batch(-1, 1)

    def test_fast_forward_matches_stepping(self):
        import math

        from repro.core.agu import TemporalAddressGenerator

        for bounds, strides, base in self.CONFIGS:
            total = math.prod(bounds)
            for jump in (1, 2, total - 1, total):
                stepped = TemporalAddressGenerator(bounds, strides, base)
                for _ in range(jump):
                    stepped.advance()
                jumped = TemporalAddressGenerator(bounds, strides, base)
                jumped.fast_forward(jump)
                assert jumped.current_indices() == stepped.current_indices()
                assert jumped.current_address() == stepped.current_address()
                assert jumped.exhausted == stepped.exhausted
                assert jumped.steps_generated == stepped.steps_generated

    def test_fast_forward_overrun_rejected(self):
        from repro.core.agu import TemporalAddressGenerator

        generator = TemporalAddressGenerator((2, 2), (1, 2))
        with pytest.raises(RuntimeError):
            generator.fast_forward(5)
        with pytest.raises(ValueError):
            generator.fast_forward(-1)

    def test_address_matrix_matches_bundles(self):
        unit = AddressGenerationUnit(
            temporal_bounds=(3, 4),
            temporal_strides=(64, 512),
            spatial_bounds=(8,),
            spatial_strides=(8,),
            base_address=1024,
        )
        expected = [bundle.addresses for bundle in unit.iter_bundles(8)]
        fresh = AddressGenerationUnit(
            temporal_bounds=(3, 4),
            temporal_strides=(64, 512),
            spatial_bounds=(8,),
            spatial_strides=(8,),
            base_address=1024,
        )
        matrix = fresh.address_matrix(0, len(expected), 8)
        assert [tuple(row) for row in matrix.tolist()] == expected

    def test_agu_fast_forward_continues_identically(self):
        def fresh_unit():
            return AddressGenerationUnit(
                temporal_bounds=(4, 4),
                temporal_strides=(8, 128),
                spatial_bounds=(4,),
                spatial_strides=(2,),
            )

        stepped = fresh_unit()
        for _ in range(6):
            stepped.next_bundle(4)
        jumped = fresh_unit()
        jumped.fast_forward(6)
        assert jumped.bundles_generated == stepped.bundles_generated
        while not stepped.exhausted:
            assert jumped.next_bundle(4) == stepped.next_bundle(4)
        assert jumped.exhausted
