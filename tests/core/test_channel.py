"""Tests for the per-channel MIC (credits, issue, collect) behaviour."""

import numpy as np
import pytest

from repro.core import StreamerDesign, StreamerMode
from repro.core.channel import ChannelAddress, StreamChannel
from repro.memory import BankGeometry, BankLocation, MemorySubsystem

GEOMETRY = BankGeometry(num_banks=4, bank_width_bytes=8, bank_depth=16)


def make_design(mode=StreamerMode.READ, data_depth=2, addr_depth=4):
    return StreamerDesign(
        name="dm_t",
        mode=mode,
        num_channels=2,
        spatial_bounds=(2,),
        temporal_dims=2,
        bank_width_bits=64,
        address_buffer_depth=addr_depth,
        data_buffer_depth=data_depth,
    )


def make_channel(mode=StreamerMode.READ, **kwargs):
    return StreamChannel("dm_t", 0, make_design(mode=mode, **kwargs))


def address(step, bank=0, line=0):
    return ChannelAddress(
        logical=line * GEOMETRY.num_banks * 8 + bank * 8,
        location=BankLocation(bank=bank, line=line, byte_offset=0),
        step=step,
    )


def cycle(memory, channels):
    memory.deliver()
    for channel in channels:
        channel.collect(memory)
    for channel in channels:
        channel.issue(memory)
    memory.step()


class TestReadChannel:
    def test_issue_requires_address(self):
        channel = make_channel()
        memory = MemorySubsystem(GEOMETRY)
        assert not channel.issue(memory)
        assert channel.requests_issued == 0

    def test_read_data_lands_in_fifo(self):
        channel = make_channel()
        memory = MemorySubsystem(GEOMETRY)
        memory.scratchpad.backdoor_write(0, np.arange(8, dtype=np.uint8), group_size=4)
        channel.push_address(address(step=0, bank=0, line=0))
        for _ in range(3):
            cycle(memory, [channel])
        assert channel.output_word_available()
        assert np.array_equal(channel.pop_output_word(), np.arange(8, dtype=np.uint8))

    def test_orm_credits_limit_outstanding_requests(self):
        """No more requests in flight than free data-FIFO slots."""
        channel = make_channel(data_depth=2)
        memory = MemorySubsystem(GEOMETRY)
        for step in range(4):
            channel.push_address(address(step=step, bank=0, line=step))
        # Issue without ever draining the data FIFO.
        issued_per_cycle = []
        for _ in range(6):
            before = channel.requests_issued
            cycle(memory, [channel])
            issued_per_cycle.append(channel.requests_issued - before)
        # With a depth-2 FIFO the channel can never have more than 2
        # requests outstanding or buffered, so only 2 are ever issued.
        assert channel.requests_issued == 2
        assert channel.data_fifo.occupancy == 2
        assert channel.credit_stall_cycles > 0

    def test_credits_replenish_after_pop(self):
        channel = make_channel(data_depth=1)
        memory = MemorySubsystem(GEOMETRY)
        for step in range(2):
            channel.push_address(address(step=step, bank=0, line=step))
        for _ in range(3):
            cycle(memory, [channel])
        assert channel.requests_issued == 1
        channel.pop_output_word()
        for _ in range(3):
            cycle(memory, [channel])
        assert channel.requests_issued == 2

    def test_busy_tracks_all_stages(self):
        channel = make_channel()
        memory = MemorySubsystem(GEOMETRY)
        assert not channel.busy
        channel.push_address(address(step=0))
        assert channel.busy
        for _ in range(3):
            cycle(memory, [channel])
        assert channel.busy  # data waiting in FIFO
        channel.pop_output_word()
        assert not channel.busy

    def test_reset_clears_state(self):
        channel = make_channel()
        channel.push_address(address(step=0))
        channel.reset()
        assert not channel.busy
        assert channel.address_fifo.is_empty


class TestWriteChannel:
    def test_write_requires_address_and_data(self):
        channel = make_channel(mode=StreamerMode.WRITE)
        memory = MemorySubsystem(GEOMETRY)
        channel.push_input_word(np.full(8, 5, dtype=np.uint8))
        assert not channel.issue(memory)
        channel.push_address(address(step=0, bank=1, line=2))
        assert channel.issue(memory)

    def test_write_reaches_memory(self):
        channel = make_channel(mode=StreamerMode.WRITE)
        memory = MemorySubsystem(GEOMETRY)
        channel.push_address(address(step=0, bank=1, line=2))
        channel.push_input_word(np.full(8, 9, dtype=np.uint8))
        for _ in range(3):
            cycle(memory, [channel])
        stored = memory.scratchpad.read_word(1, 2)
        assert np.array_equal(stored, np.full(8, 9, dtype=np.uint8))
        assert not channel.busy  # ack received, nothing outstanding

    def test_input_space_available(self):
        channel = make_channel(mode=StreamerMode.WRITE, data_depth=1)
        assert channel.input_space_available()
        channel.push_input_word(np.zeros(8, dtype=np.uint8))
        assert not channel.input_space_available()


class TestStatistics:
    def test_statistics_dictionary(self):
        channel = make_channel()
        memory = MemorySubsystem(GEOMETRY)
        channel.push_address(address(step=0))
        for _ in range(3):
            cycle(memory, [channel])
        stats = channel.statistics()
        assert stats["requests_issued"] == 1
        assert stats["responses_received"] == 1
        assert stats["max_data_occupancy"] == 1
