"""Tests for the CSR programming model (encode/decode round trip)."""

import pytest

from repro.core import (
    CsrAddressMap,
    ExtensionSpec,
    StreamerDesign,
    StreamerMode,
    StreamerRuntimeConfig,
    decode_runtime_config,
    encode_runtime_config,
)

GROUP_OPTIONS = [16, 4, 1]


def make_design():
    return StreamerDesign(
        name="dm_a",
        mode=StreamerMode.READ,
        num_channels=8,
        spatial_bounds=(8,),
        temporal_dims=6,
        bank_width_bits=64,
        extensions=(
            ExtensionSpec.make("transposer", rows=8, cols=8, element_bytes=1),
            ExtensionSpec.make("broadcaster", factor=1),
        ),
    )


def make_runtime(**overrides):
    params = dict(
        base_address=0x1000,
        temporal_bounds=(4, 2, 8),
        temporal_strides=(64, 0, 512),
        spatial_strides=(8,),
        bank_group_size=4,
        active_channels=None,
        extension_enables=(True, False),
        extension_params=(
            ("transposer", (("cols", 8), ("element_bytes", 1), ("rows", 8))),
            ("broadcaster", (("factor", 2),)),
        ),
    )
    params.update(overrides)
    return StreamerRuntimeConfig(**params)


class TestCsrAddressMap:
    def test_all_fields_have_unique_offsets(self):
        csr_map = CsrAddressMap(make_design())
        offsets = [field.offset for field in csr_map.fields()]
        assert len(offsets) == len(set(offsets))
        assert csr_map.size_bytes == len(offsets) * 4

    def test_field_lookup_roundtrip(self):
        csr_map = CsrAddressMap(make_design())
        offset = csr_map.offset_of("temporal_bound_3")
        assert csr_map.name_of(offset) == "temporal_bound_3"

    def test_unknown_field_raises(self):
        csr_map = CsrAddressMap(make_design())
        with pytest.raises(KeyError):
            csr_map.offset_of("nonexistent")
        with pytest.raises(KeyError):
            csr_map.name_of(0xFFFF)

    def test_map_scales_with_design(self):
        small = StreamerDesign(
            name="dm_s",
            mode=StreamerMode.WRITE,
            num_channels=2,
            spatial_bounds=(2,),
            temporal_dims=2,
        )
        assert CsrAddressMap(small).size_bytes < CsrAddressMap(make_design()).size_bytes


class TestEncodeDecode:
    def test_roundtrip_preserves_semantics(self):
        design = make_design()
        runtime = make_runtime()
        writes = encode_runtime_config(design, runtime, GROUP_OPTIONS)
        image = dict(writes)
        decoded = decode_runtime_config(design, image, GROUP_OPTIONS)
        assert decoded.base_address == runtime.base_address
        assert decoded.temporal_bounds == runtime.temporal_bounds
        assert decoded.temporal_strides == runtime.temporal_strides
        assert decoded.spatial_strides == runtime.spatial_strides
        assert decoded.bank_group_size == runtime.bank_group_size
        assert decoded.extension_enables == runtime.extension_enables
        decoded_params = {k: dict(v) for k, v in decoded.extension_params_dict().items()}
        assert decoded_params["transposer"] == {"rows": 8, "cols": 8, "element_bytes": 1}
        assert decoded_params["broadcaster"] == {"factor": 2}

    def test_unused_temporal_dims_padded_with_unit_bounds(self):
        design = make_design()
        runtime = make_runtime(temporal_bounds=(4,), temporal_strides=(64,))
        writes = dict(encode_runtime_config(design, runtime, GROUP_OPTIONS))
        csr_map = CsrAddressMap(design)
        assert writes[csr_map.offset_of("temporal_bound_5")] == 1
        assert writes[csr_map.offset_of("temporal_stride_5")] == 0
        decoded = decode_runtime_config(design, writes, GROUP_OPTIONS)
        assert decoded.temporal_bounds == (4,)

    def test_active_channels_roundtrip(self):
        design = make_design()
        runtime = make_runtime(active_channels=4)
        writes = dict(encode_runtime_config(design, runtime, GROUP_OPTIONS))
        decoded = decode_runtime_config(design, writes, GROUP_OPTIONS)
        assert decoded.active_channels == 4

    def test_group_size_must_be_available(self):
        design = make_design()
        runtime = make_runtime(bank_group_size=2)
        with pytest.raises(ValueError):
            encode_runtime_config(design, runtime, GROUP_OPTIONS)

    def test_decode_rejects_bad_mode_index(self):
        design = make_design()
        csr_map = CsrAddressMap(design)
        image = {csr_map.offset_of("addressing_mode"): 17}
        with pytest.raises(ValueError):
            decode_runtime_config(design, image, GROUP_OPTIONS)

    def test_encode_validates_runtime(self):
        design = make_design()
        runtime = make_runtime(spatial_strides=(8, 8))
        with pytest.raises(ValueError):
            encode_runtime_config(design, runtime, GROUP_OPTIONS)
