"""Tests for design-time / runtime parameter validation (Table II)."""

import pytest

from repro.core import (
    ABLATION_STEPS,
    ExtensionSpec,
    FeatureSet,
    MemoryDesign,
    StreamerDesign,
    StreamerMode,
    StreamerRuntimeConfig,
    ablation_feature_sets,
    validate_streamer_designs,
)


def make_design(**overrides):
    params = dict(
        name="dm_a",
        mode=StreamerMode.READ,
        num_channels=8,
        spatial_bounds=(8,),
        temporal_dims=3,
        bank_width_bits=64,
        address_buffer_depth=8,
        data_buffer_depth=8,
        extensions=(ExtensionSpec.make("transposer", rows=8, cols=8, element_bytes=1),),
    )
    params.update(overrides)
    return StreamerDesign(**params)


def make_runtime(**overrides):
    params = dict(
        base_address=0,
        temporal_bounds=(2, 2, 2),
        temporal_strides=(64, 0, 128),
        spatial_strides=(8,),
        bank_group_size=16,
    )
    params.update(overrides)
    return StreamerRuntimeConfig(**params)


class TestStreamerDesign:
    def test_valid_design_properties(self):
        design = make_design()
        assert design.spatial_dims == 1
        assert design.bank_width_bytes == 8
        assert design.word_bytes == 64
        assert design.is_read and not design.is_write
        assert design.extension_kinds() == ["transposer"]

    def test_spatial_bounds_must_match_channels(self):
        with pytest.raises(ValueError):
            make_design(num_channels=8, spatial_bounds=(4,))

    def test_two_dim_spatial_bounds(self):
        design = make_design(num_channels=32, spatial_bounds=(8, 4))
        assert design.spatial_dims == 2
        assert design.word_bytes == 256

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_channels": 0, "spatial_bounds": ()},
            {"temporal_dims": 0},
            {"bank_width_bits": 65},
            {"address_buffer_depth": 0},
            {"data_buffer_depth": -1},
            {"spatial_bounds": (0,), "num_channels": 0},
        ],
    )
    def test_invalid_designs_rejected(self, overrides):
        with pytest.raises(ValueError):
            make_design(**overrides)


class TestStreamerRuntimeConfig:
    def test_total_iterations(self):
        runtime = make_runtime(temporal_bounds=(2, 3, 4), temporal_strides=(1, 2, 3))
        assert runtime.total_iterations == 24

    def test_validate_against_accepts_matching_design(self):
        make_runtime().validate_against(make_design())

    def test_too_many_temporal_dims_rejected(self):
        runtime = make_runtime(
            temporal_bounds=(2, 2, 2, 2), temporal_strides=(1, 1, 1, 1)
        )
        with pytest.raises(ValueError):
            runtime.validate_against(make_design(temporal_dims=3))

    def test_wrong_spatial_stride_count_rejected(self):
        runtime = make_runtime(spatial_strides=(8, 8))
        with pytest.raises(ValueError):
            runtime.validate_against(make_design())

    def test_active_channels_must_divide(self):
        runtime = make_runtime(active_channels=3)
        with pytest.raises(ValueError):
            runtime.validate_against(make_design())

    def test_active_channels_cannot_exceed_design(self):
        runtime = make_runtime(active_channels=16)
        with pytest.raises(ValueError):
            runtime.validate_against(make_design())

    def test_extension_enable_count_checked(self):
        runtime = make_runtime(extension_enables=(True, False))
        with pytest.raises(ValueError):
            runtime.validate_against(make_design())

    def test_with_updates(self):
        runtime = make_runtime()
        updated = runtime.with_updates(base_address=4096)
        assert updated.base_address == 4096
        assert runtime.base_address == 0

    @pytest.mark.parametrize(
        "overrides",
        [
            {"base_address": -1},
            {"temporal_bounds": (0,), "temporal_strides": (1,)},
            {"temporal_bounds": (2,), "temporal_strides": (1, 2)},
            {"bank_group_size": 0},
            {"active_channels": 0},
        ],
    )
    def test_invalid_runtime_rejected(self, overrides):
        with pytest.raises(ValueError):
            make_runtime(**overrides)


class TestMemoryDesign:
    def test_geometry_derivation(self):
        memory = MemoryDesign(
            num_banks=32,
            bank_width_bits=64,
            capacity_bytes=128 * 1024,
            group_size_options=(32, 8),
        )
        geometry = memory.geometry()
        assert geometry.num_banks == 32
        assert geometry.bank_width_bytes == 8
        assert geometry.bank_depth == 512
        assert memory.bank_depth * 32 * 8 == 128 * 1024

    def test_group_options_resolved_with_endpoints(self):
        memory = MemoryDesign(
            num_banks=32,
            bank_width_bits=64,
            capacity_bytes=128 * 1024,
            group_size_options=(8,),
        )
        assert memory.resolved_group_options() == (32, 8, 1)

    def test_invalid_group_option_rejected(self):
        with pytest.raises(ValueError):
            MemoryDesign(
                num_banks=32,
                bank_width_bits=64,
                capacity_bytes=128 * 1024,
                group_size_options=(5,),
            )

    def test_non_integral_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryDesign(num_banks=32, bank_width_bits=64, capacity_bytes=1000)


class TestFeatureSet:
    def test_defaults_enabled(self):
        features = FeatureSet.all_enabled()
        assert all(features.as_dict().values())

    def test_all_disabled(self):
        features = FeatureSet.all_disabled()
        assert not any(features.as_dict().values())

    def test_with_updates(self):
        features = FeatureSet.all_disabled().with_updates(transposer=True)
        assert features.transposer
        assert not features.fine_grained_prefetch

    def test_ablation_ladder_matches_paper_order(self):
        names = [name for name, _ in ABLATION_STEPS]
        assert names == [
            "1_baseline",
            "2_prefetch",
            "3_transposer",
            "4_broadcaster",
            "5_im2col",
            "6_full",
        ]
        ladder = ablation_feature_sets()
        assert not ladder["1_baseline"].fine_grained_prefetch
        assert ladder["2_prefetch"].fine_grained_prefetch
        assert not ladder["2_prefetch"].transposer
        assert ladder["6_full"] == FeatureSet.all_enabled()

    def test_each_step_adds_exactly_one_feature(self):
        ladder = [features for _, features in ABLATION_STEPS]
        for earlier, later in zip(ladder, ladder[1:]):
            earlier_on = sum(earlier.as_dict().values())
            later_on = sum(later.as_dict().values())
            assert later_on == earlier_on + 1


class TestCrossValidation:
    def test_duplicate_names_rejected(self):
        memory = MemoryDesign(num_banks=32, bank_width_bits=64, capacity_bytes=128 * 1024)
        with pytest.raises(ValueError):
            validate_streamer_designs([make_design(), make_design()], memory)

    def test_bank_width_mismatch_rejected(self):
        memory = MemoryDesign(num_banks=32, bank_width_bits=32, capacity_bytes=128 * 1024)
        with pytest.raises(ValueError):
            validate_streamer_designs([make_design()], memory)

    def test_more_channels_than_banks_rejected(self):
        memory = MemoryDesign(num_banks=4, bank_width_bits=64, capacity_bytes=32 * 1024)
        with pytest.raises(ValueError):
            validate_streamer_designs([make_design()], memory)

    def test_valid_combination_passes(self):
        memory = MemoryDesign(num_banks=32, bank_width_bits=64, capacity_bytes=128 * 1024)
        validate_streamer_designs(
            [make_design(), make_design(name="dm_b")], memory
        )
