"""Streamer-level tests: wide-word streaming, prefetch mode, extensions."""

import numpy as np
import pytest

from repro.core import (
    DataMaestro,
    ExtensionSpec,
    StreamerDesign,
    StreamerMode,
    StreamerRuntimeConfig,
    reference_address_sequence,
)
from repro.memory import BankGeometry, MemorySubsystem

GEOMETRY = BankGeometry(num_banks=8, bank_width_bytes=8, bank_depth=64)


def read_design(name="dm_r", extensions=(), data_depth=8):
    return StreamerDesign(
        name=name,
        mode=StreamerMode.READ,
        num_channels=2,
        spatial_bounds=(2,),
        temporal_dims=3,
        bank_width_bits=64,
        address_buffer_depth=8,
        data_buffer_depth=data_depth,
        extensions=tuple(extensions),
    )


def write_design(name="dm_w"):
    return StreamerDesign(
        name=name,
        mode=StreamerMode.WRITE,
        num_channels=2,
        spatial_bounds=(2,),
        temporal_dims=2,
        bank_width_bits=64,
        address_buffer_depth=8,
        data_buffer_depth=4,
    )


def linear_runtime(steps=8, group_size=8, **overrides):
    params = dict(
        base_address=0,
        temporal_bounds=(steps,),
        temporal_strides=(16,),
        spatial_strides=(8,),
        bank_group_size=group_size,
    )
    params.update(overrides)
    return StreamerRuntimeConfig(**params)


def fill_memory(memory, num_bytes=1024, group_size=8):
    data = (np.arange(num_bytes, dtype=np.int64) % 251).astype(np.uint8)
    memory.scratchpad.backdoor_write(0, data, group_size=group_size)
    return data


def drain_read_streamer(streamer, memory, max_cycles=5000):
    """Mimic the system loop for a single read streamer; collect all words."""
    words = []
    cycles = 0
    while not streamer.done:
        if cycles > max_cycles:
            raise AssertionError("streamer did not finish (possible deadlock)")
        streamer.begin_cycle()
        memory.deliver()
        streamer.collect_responses(memory)
        if streamer.output_valid():
            words.append(streamer.pop_output())
        streamer.generate_addresses()
        streamer.issue_requests(memory)
        memory.step()
        cycles += 1
    return words, cycles


def drive_write_streamer(streamer, memory, words, max_cycles=5000):
    cycles = 0
    pushed = 0
    while not (streamer.done and pushed == len(words)):
        if cycles > max_cycles:
            raise AssertionError("write streamer did not finish")
        streamer.begin_cycle()
        memory.deliver()
        streamer.collect_responses(memory)
        if pushed < len(words) and streamer.input_ready():
            streamer.push_input(words[pushed])
            pushed += 1
        streamer.generate_addresses()
        streamer.issue_requests(memory)
        memory.step()
        cycles += 1
    return cycles


class TestReadStreaming:
    def test_streams_expected_data(self):
        memory = MemorySubsystem(GEOMETRY)
        data = fill_memory(memory)
        streamer = DataMaestro(read_design(), GEOMETRY, [8, 2, 1])
        runtime = linear_runtime(steps=8)
        streamer.configure(runtime)
        words, _ = drain_read_streamer(streamer, memory)
        assert len(words) == 8
        expected_addresses = reference_address_sequence(
            runtime.temporal_bounds,
            runtime.temporal_strides,
            (2,),
            runtime.spatial_strides,
        )
        for word, addresses in zip(words, expected_addresses):
            expected = np.concatenate([data[a : a + 8] for a in addresses])
            assert np.array_equal(word, expected)

    def test_streaming_under_non_interleaved_mode(self):
        memory = MemorySubsystem(GEOMETRY)
        data = (np.arange(512, dtype=np.int64) % 253).astype(np.uint8)
        memory.scratchpad.backdoor_write(0, data, group_size=1)
        streamer = DataMaestro(read_design(), GEOMETRY, [8, 2, 1])
        runtime = linear_runtime(steps=4, group_size=1)
        streamer.configure(runtime)
        words, _ = drain_read_streamer(streamer, memory)
        flat = np.concatenate(words)
        assert np.array_equal(flat, data[:64])

    def test_words_streamed_counter(self):
        memory = MemorySubsystem(GEOMETRY)
        fill_memory(memory)
        streamer = DataMaestro(read_design(), GEOMETRY, [8])
        streamer.configure(linear_runtime(steps=5))
        words, _ = drain_read_streamer(streamer, memory)
        assert streamer.words_streamed == 5
        assert streamer.bundles_generated == 5

    def test_prefetch_hides_latency(self):
        """With prefetch the streamer is much faster than without."""
        steps = 32

        def run(prefetch):
            memory = MemorySubsystem(GEOMETRY)
            fill_memory(memory)
            streamer = DataMaestro(read_design(), GEOMETRY, [8])
            streamer.configure(linear_runtime(steps=steps), prefetch_enabled=prefetch)
            _, cycles = drain_read_streamer(streamer, memory)
            return cycles

        cycles_with = run(True)
        cycles_without = run(False)
        # Prefetch pipelines request issue and data return; without it every
        # word pays the full round trip.
        assert cycles_without >= 2 * steps
        assert cycles_with <= steps + 10
        assert cycles_without > cycles_with

    def test_pop_without_valid_raises(self):
        streamer = DataMaestro(read_design(), GEOMETRY, [8])
        streamer.configure(linear_runtime(steps=1))
        with pytest.raises(RuntimeError):
            streamer.pop_output()

    def test_statistics_report(self):
        memory = MemorySubsystem(GEOMETRY)
        fill_memory(memory)
        streamer = DataMaestro(read_design(), GEOMETRY, [8])
        streamer.configure(linear_runtime(steps=4))
        drain_read_streamer(streamer, memory)
        stats = streamer.statistics(memory)
        assert stats.words_streamed == 4
        assert stats.requests_issued == 8  # 2 channels x 4 steps
        assert stats.requests_granted == 8


class TestExtensionsInStreamer:
    def test_transposer_applied_to_output(self):
        memory = MemorySubsystem(GEOMETRY)
        data = fill_memory(memory)
        design = read_design(
            extensions=[ExtensionSpec.make("transposer", rows=4, cols=4, element_bytes=1)]
        )
        streamer = DataMaestro(design, GEOMETRY, [8])
        runtime = linear_runtime(
            steps=2,
            extension_enables=(True,),
            extension_params=(("transposer", (("rows", 4), ("cols", 4), ("element_bytes", 1))),),
        )
        streamer.configure(runtime)
        words, _ = drain_read_streamer(streamer, memory)
        raw = np.concatenate([data[0:8], data[8:16]])
        expected = raw.reshape(4, 4).T.reshape(-1)
        assert np.array_equal(words[0], expected)

    def test_transposer_bypass(self):
        memory = MemorySubsystem(GEOMETRY)
        data = fill_memory(memory)
        design = read_design(
            extensions=[ExtensionSpec.make("transposer", rows=4, cols=4, element_bytes=1)]
        )
        streamer = DataMaestro(design, GEOMETRY, [8])
        runtime = linear_runtime(steps=1, extension_enables=(False,))
        streamer.configure(runtime)
        words, _ = drain_read_streamer(streamer, memory)
        assert np.array_equal(words[0], np.concatenate([data[0:8], data[8:16]]))

    def test_broadcaster_reduces_fetches_and_expands_word(self):
        memory = MemorySubsystem(GEOMETRY)
        data = fill_memory(memory)
        design = read_design(extensions=[ExtensionSpec.make("broadcaster", factor=2)])
        streamer = DataMaestro(design, GEOMETRY, [8])
        runtime = linear_runtime(
            steps=4,
            active_channels=1,
            extension_enables=(True,),
            extension_params=(("broadcaster", (("factor", 2),)),),
        )
        streamer.configure(runtime)
        words, _ = drain_read_streamer(streamer, memory)
        # Only one channel fetches (4 requests total), but the accelerator
        # still receives full 16-byte words.
        assert streamer.statistics(memory).requests_issued == 4
        for step, word in enumerate(words):
            narrow = data[step * 16 : step * 16 + 8]
            assert np.array_equal(word, np.tile(narrow, 2))


class TestWriteStreaming:
    def test_written_data_lands_in_memory(self):
        memory = MemorySubsystem(GEOMETRY)
        streamer = DataMaestro(write_design(), GEOMETRY, [8])
        runtime = linear_runtime(steps=4)
        streamer.configure(runtime)
        words = [np.full(16, value, dtype=np.uint8) for value in (1, 2, 3, 4)]
        drive_write_streamer(streamer, memory, words)
        for step, word in enumerate(words):
            stored = memory.scratchpad.backdoor_read(step * 16, 16, group_size=8)
            assert np.array_equal(stored, word)

    def test_push_wrong_size_raises(self):
        memory = MemorySubsystem(GEOMETRY)
        streamer = DataMaestro(write_design(), GEOMETRY, [8])
        streamer.configure(linear_runtime(steps=1))
        streamer.generate_addresses()
        with pytest.raises(ValueError):
            streamer.push_input(np.zeros(10, dtype=np.uint8))

    def test_push_when_not_ready_raises(self):
        streamer = DataMaestro(write_design(), GEOMETRY, [8])
        # Not configured yet -> never ready.
        with pytest.raises(RuntimeError):
            streamer.push_input(np.zeros(16, dtype=np.uint8))


class TestConfiguration:
    def test_configure_validates_against_design(self):
        streamer = DataMaestro(read_design(), GEOMETRY, [8])
        bad_runtime = linear_runtime(spatial_strides=(8, 8))
        with pytest.raises(ValueError):
            streamer.configure(bad_runtime)

    def test_unavailable_group_size_rejected(self):
        streamer = DataMaestro(read_design(), GEOMETRY, [8])
        with pytest.raises(ValueError):
            streamer.configure(linear_runtime(group_size=4))

    def test_reconfiguration_resets_state(self):
        memory = MemorySubsystem(GEOMETRY)
        fill_memory(memory)
        streamer = DataMaestro(read_design(), GEOMETRY, [8])
        streamer.configure(linear_runtime(steps=2))
        drain_read_streamer(streamer, memory)
        streamer.configure(linear_runtime(steps=3))
        assert streamer.words_streamed == 0
        words, _ = drain_read_streamer(streamer, memory)
        assert len(words) == 3

    def test_unconfigured_streamer_is_not_busy(self):
        streamer = DataMaestro(read_design(), GEOMETRY, [8])
        assert not streamer.busy
        assert not streamer.configured
