"""Tests for the runtime addressing-mode switching remapper (§III-D)."""

import pytest

from repro.core import AddressRemapper
from repro.memory import AddressingMode, BankGeometry, decode_address

GEOMETRY = BankGeometry(num_banks=16, bank_width_bytes=8, bank_depth=32)


def make_remapper(options=(16, 4, 1)):
    return AddressRemapper(GEOMETRY, options)


class TestSelection:
    def test_reset_mode_is_fully_interleaved(self):
        remapper = make_remapper()
        assert remapper.selected_group_size == 16
        assert remapper.selected_mode is AddressingMode.FULLY_INTERLEAVED

    def test_select_by_group_size(self):
        remapper = make_remapper()
        remapper.select_group_size(4)
        assert remapper.selected_mode is AddressingMode.GROUPED_INTERLEAVED
        remapper.select_group_size(1)
        assert remapper.selected_mode is AddressingMode.NON_INTERLEAVED

    def test_select_by_index(self):
        remapper = make_remapper()
        remapper.select_index(2)
        assert remapper.selected_group_size == 1

    def test_unavailable_group_size_rejected(self):
        remapper = make_remapper(options=(16, 1))
        with pytest.raises(ValueError):
            remapper.select_group_size(4)

    def test_out_of_range_index_rejected(self):
        remapper = make_remapper()
        with pytest.raises(ValueError):
            remapper.select_index(5)

    def test_index_for_group_size(self):
        remapper = make_remapper()
        assert remapper.index_for_group_size(16) == 0
        assert remapper.index_for_group_size(4) == 1
        assert remapper.index_for_group_size(1) == 2

    def test_options_deduplicated_and_sorted(self):
        remapper = AddressRemapper(GEOMETRY, [1, 16, 16, 4, 4])
        assert remapper.group_size_options == (16, 4, 1)

    def test_empty_options_defaults_to_fima(self):
        remapper = AddressRemapper(GEOMETRY, [])
        assert remapper.group_size_options == (16,)

    def test_available_modes_report(self):
        remapper = make_remapper()
        modes = remapper.available_modes()
        assert modes[0] is AddressingMode.FULLY_INTERLEAVED
        assert modes[1] is AddressingMode.GROUPED_INTERLEAVED
        assert modes[2] is AddressingMode.NON_INTERLEAVED


class TestDecode:
    def test_decode_follows_selected_mode(self):
        remapper = make_remapper()
        address = 8 * 17  # word 17
        assert remapper.decode(address) == decode_address(address, GEOMETRY, 16)
        remapper.select_group_size(1)
        assert remapper.decode(address) == decode_address(address, GEOMETRY, 1)

    def test_decode_with_explicit_group_size(self):
        remapper = make_remapper()
        address = 8 * 33
        assert remapper.decode_with_group_size(address, 4) == decode_address(
            address, GEOMETRY, 4
        )

    def test_switching_mode_changes_bank_for_same_address(self):
        """The same logical address maps to different banks per mode."""
        remapper = make_remapper()
        address = 8 * 5  # word 5
        fima_bank = remapper.decode(address).bank
        remapper.select_group_size(1)
        nima_bank = remapper.decode(address).bank
        assert fima_bank == 5
        assert nima_bank == 0
