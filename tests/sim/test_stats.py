"""Tests for the statistics counter containers."""

from repro.sim import StatCounters, StreamerStats, merge_counter_dicts


class TestStatCounters:
    def test_add_creates_counter(self):
        counters = StatCounters()
        counters.add("reads")
        counters.add("reads", 4)
        assert counters.get("reads") == 5

    def test_get_default(self):
        counters = StatCounters()
        assert counters.get("missing") == 0
        assert counters.get("missing", 7) == 7

    def test_set_overwrites(self):
        counters = StatCounters()
        counters.add("x", 3)
        counters.set("x", 10)
        assert counters.get("x") == 10

    def test_merge_adds_counterwise(self):
        a = StatCounters()
        b = StatCounters()
        a.add("reads", 2)
        b.add("reads", 3)
        b.add("writes", 1)
        a.merge(b)
        assert a.get("reads") == 5
        assert a.get("writes") == 1

    def test_contains_and_reset(self):
        counters = StatCounters()
        counters.add("hits")
        assert "hits" in counters
        counters.reset()
        assert "hits" not in counters
        assert counters.as_dict() == {}


class TestStreamerStats:
    def test_as_dict_includes_extension_counts(self):
        stats = StreamerStats(name="dm_a", words_streamed=12)
        stats.extension_words["transposer_0_processed"] = 12
        data = stats.as_dict()
        assert data["words_streamed"] == 12
        assert data["extension_transposer_0_processed"] == 12


def test_merge_counter_dicts():
    merged = merge_counter_dicts([{"a": 1, "b": 2}, {"a": 3}, {"c": 5}])
    assert merged == {"a": 4, "b": 2, "c": 5}
