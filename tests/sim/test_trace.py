"""Tests for the cycle-trace recorder."""

import pytest

from repro.compiler import compile_workload
from repro.sim.trace import CycleTracer, trace_streamer_occupancy
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import GemmWorkload


class TestCycleTracer:
    def test_sampling_and_columns(self):
        tracer = CycleTracer()
        counter = {"value": 0}
        tracer.add_probe("value", lambda: counter["value"])
        for _ in range(5):
            counter["value"] += 2
            tracer.sample()
        assert len(tracer) == 5
        assert tracer.column("value") == [2, 4, 6, 8, 10]
        assert tracer.column("cycle") == [0, 1, 2, 3, 4]
        assert set(tracer.as_columns()) == {"cycle", "value"}

    def test_explicit_cycle_tag(self):
        tracer = CycleTracer()
        tracer.add_probe("x", lambda: 1)
        tracer.sample(cycle=42)
        assert tracer.rows[0]["cycle"] == 42

    def test_duplicate_probe_rejected(self):
        tracer = CycleTracer()
        tracer.add_probe("x", lambda: 1)
        with pytest.raises(ValueError):
            tracer.add_probe("x", lambda: 2)

    def test_unknown_column_raises(self):
        tracer = CycleTracer()
        with pytest.raises(KeyError):
            tracer.column("missing")

    def test_max_rows_cap(self):
        tracer = CycleTracer(max_rows=3)
        tracer.add_probe("x", lambda: 0)
        for _ in range(10):
            tracer.sample()
        assert len(tracer) == 3

    def test_csv_rendering(self):
        tracer = CycleTracer()
        tracer.add_probe("a", lambda: 1)
        tracer.add_probe("b", lambda: "hi")
        tracer.sample()
        csv = tracer.to_csv()
        assert csv.splitlines()[0] == "cycle,a,b"
        assert csv.splitlines()[1] == "0,1,hi"

    def test_summary_skips_non_numeric(self):
        tracer = CycleTracer()
        tracer.add_probe("num", lambda: 3)
        tracer.add_probe("text", lambda: "x")
        tracer.sample()
        tracer.sample()
        summary = tracer.summary()
        assert summary["num"]["mean"] == 3.0
        assert "text" not in summary

    def test_clear(self):
        tracer = CycleTracer()
        tracer.add_probe("x", lambda: 1)
        tracer.sample()
        tracer.clear()
        assert len(tracer) == 0


class TestSystemTracing:
    def test_trace_full_kernel(self):
        design = datamaestro_evaluation_system()
        system = AcceleratorSystem(design)
        program = compile_workload(
            GemmWorkload(name="trace_gemm", m=16, n=16, k=32), design
        )
        system.load_program(program)
        tracer = trace_streamer_occupancy(system, ports=("A", "B"))
        while not system.finished:
            system.step()
            tracer.sample()
        assert len(tracer) > 0
        summary = tracer.summary()
        # The A stream keeps requests in flight while streaming.
        assert summary["A_ch0_outstanding"]["max"] >= 1
        # Every A wide word was streamed and progress ends at 1.0.
        assert tracer.column("A_words_streamed")[-1] == program.ideal_compute_cycles
        assert tracer.column("gemm_progress")[-1] == pytest.approx(1.0)
        # The CSV export includes one line per sampled cycle plus the header.
        assert len(tracer.to_csv().splitlines()) == len(tracer) + 1
