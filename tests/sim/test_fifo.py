"""Unit and property tests for the bounded FIFO primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Fifo, FifoError


class TestFifoBasics:
    def test_new_fifo_is_empty(self):
        fifo = Fifo(depth=4)
        assert fifo.is_empty
        assert not fifo.is_full
        assert fifo.occupancy == 0
        assert fifo.free_slots == 4

    def test_push_pop_order(self):
        fifo = Fifo(depth=3)
        fifo.push("a")
        fifo.push("b")
        fifo.push("c")
        assert fifo.pop() == "a"
        assert fifo.pop() == "b"
        assert fifo.pop() == "c"

    def test_peek_does_not_consume(self):
        fifo = Fifo(depth=2)
        fifo.push(10)
        assert fifo.peek() == 10
        assert fifo.occupancy == 1
        assert fifo.pop() == 10

    def test_peek_optional_empty(self):
        fifo = Fifo(depth=2)
        assert fifo.peek_optional() is None
        fifo.push(1)
        assert fifo.peek_optional() == 1

    def test_push_full_raises(self):
        fifo = Fifo(depth=1)
        fifo.push(1)
        assert fifo.is_full
        with pytest.raises(FifoError):
            fifo.push(2)

    def test_pop_empty_raises(self):
        fifo = Fifo(depth=1)
        with pytest.raises(FifoError):
            fifo.pop()
        with pytest.raises(FifoError):
            fifo.peek()

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            Fifo(depth=0)
        with pytest.raises(ValueError):
            Fifo(depth=-3)

    def test_can_push_and_can_pop_counts(self):
        fifo = Fifo(depth=3)
        assert fifo.can_push(3)
        assert not fifo.can_push(4)
        fifo.push_many([1, 2])
        assert fifo.can_pop(2)
        assert not fifo.can_pop(3)

    def test_clear_resets_contents_but_not_counters(self):
        fifo = Fifo(depth=2)
        fifo.push(1)
        fifo.clear()
        assert fifo.is_empty
        assert fifo.total_pushes == 1

    def test_snapshot_and_iteration(self):
        fifo = Fifo(depth=4)
        fifo.push_many([1, 2, 3])
        assert fifo.snapshot() == [1, 2, 3]
        assert list(fifo) == [1, 2, 3]
        assert len(fifo) == 3

    def test_max_occupancy_tracking(self):
        fifo = Fifo(depth=4)
        fifo.push_many([1, 2, 3])
        fifo.pop()
        fifo.push(4)
        assert fifo.max_occupancy == 3


class TestFifoProperties:
    @given(
        depth=st.integers(min_value=1, max_value=16),
        operations=st.lists(
            st.one_of(st.just("pop"), st.integers(min_value=0, max_value=1000)),
            max_size=200,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_order_matches_reference_model(self, depth, operations):
        """The FIFO must behave exactly like a bounded python list queue."""
        fifo = Fifo(depth=depth)
        reference = []
        for op in operations:
            if op == "pop":
                if reference:
                    assert fifo.pop() == reference.pop(0)
                else:
                    assert fifo.is_empty
            else:
                if len(reference) < depth:
                    fifo.push(op)
                    reference.append(op)
                else:
                    assert fifo.is_full
        assert fifo.snapshot() == reference
        assert fifo.occupancy == len(reference)

    @given(items=st.lists(st.integers(), min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_plus_free_slots_is_depth(self, items):
        fifo = Fifo(depth=len(items))
        for item in items:
            fifo.push(item)
            assert fifo.occupancy + fifo.free_slots == fifo.depth
