"""Tests for the cycle-loop runner."""

import pytest

from repro.sim import CycleRunner, SimulationLimitError, run_to_completion


class CountdownTarget:
    """Steppable test double that finishes after a fixed number of cycles."""

    def __init__(self, cycles):
        self.remaining = cycles
        self.stepped = 0

    def step(self):
        self.stepped += 1
        self.remaining -= 1
        return self.remaining > 0


class NeverFinishes:
    def step(self):
        return True


class TestCycleRunner:
    def test_runs_to_completion_and_counts_cycles(self):
        target = CountdownTarget(17)
        cycles = CycleRunner(max_cycles=100).run(target)
        assert cycles == 17
        assert target.stepped == 17

    def test_single_cycle_target(self):
        assert run_to_completion(CountdownTarget(1)) == 1

    def test_exceeding_budget_raises(self):
        with pytest.raises(SimulationLimitError):
            CycleRunner(max_cycles=10).run(NeverFinishes())

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            CycleRunner(max_cycles=0)

    def test_progress_callback_invoked(self):
        seen = []
        runner = CycleRunner(
            max_cycles=100,
            progress_callback=seen.append,
            progress_interval=10,
        )
        runner.run(CountdownTarget(35))
        assert seen == [10, 20, 30]

    def test_budget_error_includes_explicit_name(self):
        with pytest.raises(SimulationLimitError) as excinfo:
            CycleRunner(max_cycles=5).run(NeverFinishes(), name="stuck_kernel")
        assert "stuck_kernel" in str(excinfo.value)
        assert excinfo.value.cycles == 5

    def test_budget_error_picks_up_target_name_attribute(self):
        target = NeverFinishes()
        target.name = "named_target"
        with pytest.raises(SimulationLimitError) as excinfo:
            CycleRunner(max_cycles=5).run(target)
        assert "named_target" in str(excinfo.value)


class TestRunMany:
    def test_returns_cycles_per_target_in_order(self):
        targets = [CountdownTarget(3), CountdownTarget(7), CountdownTarget(1)]
        cycles = CycleRunner(max_cycles=100).run_many(targets)
        assert cycles == [3, 7, 1]
        assert all(t.remaining == 0 for t in targets)

    def test_each_target_gets_full_budget(self):
        targets = [CountdownTarget(9), CountdownTarget(9)]
        assert CycleRunner(max_cycles=10).run_many(targets) == [9, 9]

    def test_budget_exhaustion_names_the_offender(self):
        targets = [CountdownTarget(2), NeverFinishes()]
        with pytest.raises(SimulationLimitError) as excinfo:
            CycleRunner(max_cycles=10).run_many(targets, names=["ok", "deadlocked"])
        assert "deadlocked" in str(excinfo.value)

    def test_names_must_parallel_targets(self):
        with pytest.raises(ValueError):
            CycleRunner(max_cycles=10).run_many([CountdownTarget(1)], names=["a", "b"])

    def test_progress_callback_cadence_is_per_target(self):
        seen = []
        runner = CycleRunner(
            max_cycles=100,
            progress_callback=seen.append,
            progress_interval=10,
        )
        runner.run_many([CountdownTarget(25), CountdownTarget(15)])
        # Cadence restarts for each target: 10, 20 then 10 again.
        assert seen == [10, 20, 10]
