"""Tests for the cycle-loop runner."""

import pytest

from repro.sim import CycleRunner, SimulationLimitError, run_to_completion


class CountdownTarget:
    """Steppable test double that finishes after a fixed number of cycles."""

    def __init__(self, cycles):
        self.remaining = cycles
        self.stepped = 0

    def step(self):
        self.stepped += 1
        self.remaining -= 1
        return self.remaining > 0


class NeverFinishes:
    def step(self):
        return True


class TestCycleRunner:
    def test_runs_to_completion_and_counts_cycles(self):
        target = CountdownTarget(17)
        cycles = CycleRunner(max_cycles=100).run(target)
        assert cycles == 17
        assert target.stepped == 17

    def test_single_cycle_target(self):
        assert run_to_completion(CountdownTarget(1)) == 1

    def test_exceeding_budget_raises(self):
        with pytest.raises(SimulationLimitError):
            CycleRunner(max_cycles=10).run(NeverFinishes())

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            CycleRunner(max_cycles=0)

    def test_progress_callback_invoked(self):
        seen = []
        runner = CycleRunner(
            max_cycles=100,
            progress_callback=seen.append,
            progress_interval=10,
        )
        runner.run(CountdownTarget(35))
        assert seen == [10, 20, 30]
