"""Tests for the simulation result containers and derived metrics."""

import pytest

from repro.sim import RunSummary, SimulationResult, weighted_utilization


def make_result(name="w", ideal=100, streaming=125, prepass=0, reads=10, writes=5):
    return SimulationResult(
        workload_name=name,
        ideal_compute_cycles=ideal,
        streaming_cycles=streaming,
        prepass_cycles=prepass,
        memory_reads=reads,
        memory_writes=writes,
    )


class TestSimulationResult:
    def test_utilization_definition(self):
        result = make_result(ideal=100, streaming=125)
        assert result.utilization == pytest.approx(0.8)

    def test_prepass_cycles_lower_utilization(self):
        without = make_result(ideal=100, streaming=100, prepass=0)
        with_prepass = make_result(ideal=100, streaming=100, prepass=100)
        assert without.utilization == pytest.approx(1.0)
        assert with_prepass.utilization == pytest.approx(0.5)
        assert with_prepass.kernel_cycles == 200

    def test_memory_access_total(self):
        result = make_result(reads=7, writes=3)
        assert result.memory_accesses == 10

    def test_throughput_normalization(self):
        result = make_result(ideal=100, streaming=100)
        # 512 PEs at 1 GHz with 100% utilization -> 1024 GOPS.
        assert result.throughput_gops(num_pes=512) == pytest.approx(1024.0)
        assert result.throughput_gops(num_pes=512, frequency_ghz=0.5) == pytest.approx(512.0)

    def test_zero_cycles_yields_zero_utilization(self):
        result = SimulationResult(
            workload_name="empty", ideal_compute_cycles=0, streaming_cycles=0
        )
        assert result.utilization == 0.0

    def test_as_dict_contains_core_fields(self):
        result = make_result()
        data = result.as_dict()
        assert data["workload"] == "w"
        assert data["kernel_cycles"] == result.kernel_cycles
        assert "utilization" in data


class TestRunSummary:
    def test_weighted_aggregate(self):
        summary = RunSummary(name="net")
        summary.add("l1", make_result(ideal=100, streaming=100))
        summary.add("l2", make_result(ideal=300, streaming=400))
        assert summary.total_ideal_cycles == 400
        assert summary.total_kernel_cycles == 500
        assert summary.utilization == pytest.approx(0.8)

    def test_weighted_utilization_helper(self):
        parts = {
            "a": make_result(ideal=50, streaming=100),
            "b": make_result(ideal=150, streaming=150),
        }
        assert weighted_utilization(parts) == pytest.approx(200 / 250)

    def test_empty_summary(self):
        summary = RunSummary(name="empty")
        assert summary.utilization == 0.0
        assert summary.total_memory_accesses == 0
