"""Truncated-tail journal repair must be atomic (temp file + rename).

A crash while *repairing* a journal previously rewrote the file in place
(header first, records appended one by one), so a second crash could leave
a journal with fewer evaluations than the run had completed — silently
re-simulating them on the next resume.  The repair now stages the repaired
journal in a temporary file and atomically renames it over the original:
at every instant the path holds either the damaged-but-parseable original
or the fully repaired journal.
"""

import json
import os

import pytest

from repro.explore import Candidate, Evaluation
from repro.explore.journal import JournalError, RunJournal

HEADER = {"seed": 0, "strategy": "random", "space_digest": "abc", "budget": 4}


def evaluation(index: int) -> Evaluation:
    return Evaluation(
        candidate=Candidate.from_dict({"axis0": index}),
        metrics={"cycles": float(index)},
        job_hashes=[f"hash{index}"],
    )


def truncated_journal(path) -> RunJournal:
    """A journal whose final append was cut mid-line by a crash."""
    journal = RunJournal(path)
    journal.start(HEADER)
    for index in range(3):
        journal.append(evaluation(index))
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"type": "evaluation", "candidate": {"axi')
    return journal


class TestAtomicRepair:
    def test_resume_repairs_and_keeps_all_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = truncated_journal(path)
        contents = journal.resume(HEADER)
        assert len(contents.evaluations) == 3
        assert contents.dropped_lines == 0
        # The file itself was rewritten without the partial line.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 4
        assert all(json.loads(line) for line in lines)
        # No stray temp files left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["run.jsonl"]

    def test_crash_during_repair_leaves_original_intact(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.jsonl"
        journal = truncated_journal(path)
        before = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            journal.resume(HEADER)
        # Original file untouched, temp file cleaned up.
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["run.jsonl"]

    def test_resume_after_failed_repair_still_replays_everything(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.jsonl"
        journal = truncated_journal(path)
        monkeypatch.setattr(
            os, "replace", lambda *a: (_ for _ in ()).throw(OSError("boom"))
        )
        with pytest.raises(OSError):
            journal.resume(HEADER)
        monkeypatch.undo()
        contents = RunJournal(path).resume(HEADER)
        assert len(contents.evaluations) == 3
        assert [e.candidate.key() for e in contents.evaluations] == [
            evaluation(i).candidate.key() for i in range(3)
        ]

    def test_repaired_journal_accepts_clean_appends(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = truncated_journal(path)
        journal.resume(HEADER)
        journal.append(evaluation(3))
        contents = journal.load()
        assert len(contents.evaluations) == 4
        assert contents.dropped_lines == 0

    def test_intact_journal_is_not_rewritten(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.start(HEADER)
        journal.append(evaluation(0))
        stamp = path.read_bytes()
        journal.resume(HEADER)
        assert path.read_bytes() == stamp

    def test_mismatched_header_still_rejected_after_repair(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = truncated_journal(path)
        with pytest.raises(JournalError):
            journal.resume({**HEADER, "seed": 99})
