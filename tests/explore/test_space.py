"""Tests for the declarative search space (axes, constraints, builder)."""

import random

import pytest

from repro.core import FeatureSet
from repro.explore import (
    Candidate,
    GROUP_DIVIDES_BANKS,
    ParameterAxis,
    SearchSpace,
    datamaestro_builder,
    default_search_space,
    feature_space,
    named_search_spaces,
    search_space_by_name,
)
from repro.system import datamaestro_evaluation_system


def small_space() -> SearchSpace:
    return SearchSpace(
        axes=(
            ParameterAxis.make("data_fifo_depth", (2, 8)),
            ParameterAxis.make("num_banks", (32, 64)),
            ParameterAxis.make("gima_group_size", (16, 64)),
        ),
        constraints=(GROUP_DIVIDES_BANKS,),
        name="small",
    )


class TestAxesAndCandidates:
    def test_axis_validation(self):
        with pytest.raises(ValueError):
            ParameterAxis.make("x", ())
        with pytest.raises(ValueError):
            ParameterAxis.make("x", (1, 1))
        with pytest.raises(TypeError):
            ParameterAxis.make("x", ((1, 2),))

    def test_candidate_key_is_order_independent(self):
        a = Candidate.from_dict({"b": 2, "a": 1})
        b = Candidate.from_dict({"a": 1, "b": 2})
        assert a == b and a.key() == b.key()

    def test_candidate_lookup(self):
        candidate = Candidate.from_dict({"num_banks": 64})
        assert candidate["num_banks"] == 64
        with pytest.raises(KeyError):
            candidate["missing"]


class TestEnumeration:
    def test_constraint_filters_invalid_combinations(self):
        space = small_space()
        candidates = list(space.enumerate())
        # 2*2*2 = 8 raw points; group 64 with 32 banks is filtered out.
        assert len(candidates) == 6
        for candidate in candidates:
            assert int(candidate["num_banks"]) % int(candidate["gima_group_size"]) == 0

    def test_enumeration_is_deterministic(self):
        keys_a = [c.key() for c in small_space().enumerate()]
        keys_b = [c.key() for c in small_space().enumerate()]
        assert keys_a == keys_b
        assert len(set(keys_a)) == len(keys_a)

    def test_illegal_design_reads_as_invalid(self):
        space = SearchSpace(
            axes=(ParameterAxis.make("data_fifo_depth", (0, 8)),), name="bad"
        )
        # Depth 0 violates StreamerDesign validation → filtered, not raised.
        assert [c["data_fifo_depth"] for c in space.enumerate()] == [8]

    def test_size_is_cartesian(self):
        assert small_space().size() == 8


class TestSamplingAndMutation:
    def test_sample_is_seed_deterministic(self):
        space = small_space()
        first = [space.sample(random.Random(3)).key() for _ in range(1)]
        second = [space.sample(random.Random(3)).key() for _ in range(1)]
        assert first == second

    def test_sample_respects_constraints(self):
        space = small_space()
        rng = random.Random(0)
        for _ in range(20):
            candidate = space.sample(rng)
            assert space.is_valid(candidate)

    def test_mutate_changes_exactly_one_axis(self):
        space = small_space()
        rng = random.Random(1)
        candidate = space.sample(rng)
        mutated = space.mutate(candidate, rng)
        differences = [
            name
            for name, _ in candidate.assignment
            if candidate[name] != mutated[name]
        ]
        assert len(differences) == 1
        assert space.is_valid(mutated)

    def test_mutate_single_value_space_returns_none(self):
        space = SearchSpace(axes=(ParameterAxis.make("num_banks", (64,)),))
        candidate = next(space.enumerate())
        assert space.mutate(candidate, random.Random(0)) is None


class TestBuilder:
    def test_design_axes_applied(self):
        space = small_space()
        candidate = Candidate.from_dict(
            {"data_fifo_depth": 2, "num_banks": 32, "gima_group_size": 16}
        )
        design, features = space.build(candidate)
        assert design.memory.num_banks == 32
        assert 16 in design.memory.group_size_options
        assert design.streamer("A").data_buffer_depth == 2
        assert design.streamer("B").data_buffer_depth == 2
        # Non-FIFO ports keep their original depths.
        assert design.streamer("C").data_buffer_depth == 1
        assert features == FeatureSet.all_enabled()

    def test_feature_axes_applied(self):
        space = feature_space()
        candidate = Candidate.from_dict(
            {name: False for name in FeatureSet.all_enabled().as_dict()}
        )
        _, features = space.build(candidate)
        assert features == FeatureSet.all_disabled()

    def test_unknown_axis_rejected(self):
        builder = datamaestro_builder()
        with pytest.raises(KeyError):
            builder({"warp_drive": 1})

    def test_unknown_axis_propagates_from_enumeration(self):
        # A typo'd axis is a space-declaration error, not an invalid
        # candidate: it must surface, not silently empty the space.
        space = SearchSpace(axes=(ParameterAxis.make("warp_drive", (1, 2)),))
        with pytest.raises(KeyError, match="warp_drive"):
            list(space.enumerate())

    def test_base_design_used_for_pure_fifo_sweep(self):
        base = datamaestro_evaluation_system(num_banks=32, gima_group_size=8)
        builder = datamaestro_builder(base_design=base)
        design, _ = builder({"data_fifo_depth": 4})
        assert design.memory.num_banks == 32  # base preserved
        assert design.streamer("A").data_buffer_depth == 4

    def test_digest_tracks_declaration(self):
        assert small_space().digest() == small_space().digest()
        other = SearchSpace(
            axes=(ParameterAxis.make("data_fifo_depth", (2, 4)),), name="small"
        )
        assert other.digest() != small_space().digest()


class TestNamedSpaces:
    def test_registry_builds_every_space(self):
        for name in named_search_spaces():
            space = search_space_by_name(name)
            assert space.size() >= 1

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            search_space_by_name("hyperspace")

    def test_default_space_is_joint(self):
        space = default_search_space()
        assert len(space.axes) == 3
        assert all(space.is_valid(c) for c in space.enumerate())
