"""Tests for objective parsing, scoring and Pareto-frontier extraction."""

import pytest

from repro.explore import (
    Candidate,
    Evaluation,
    ObjectiveSpec,
    best_by_scalar,
    dominates,
    pareto_frontier,
    parse_objectives,
)


def make_eval(tag: str, **metrics: float) -> Evaluation:
    return Evaluation(candidate=Candidate.from_dict({"tag": tag}), metrics=metrics)


CYCLES = ObjectiveSpec("cycles", "min")
UTIL = ObjectiveSpec("utilization", "max")
ENERGY = ObjectiveSpec("energy_pj", "min")


class TestObjectiveParsing:
    def test_intrinsic_directions(self):
        specs = parse_objectives("cycles,utilization,energy_pj")
        assert [(s.name, s.goal) for s in specs] == [
            ("cycles", "min"),
            ("utilization", "max"),
            ("energy_pj", "min"),
        ]

    def test_explicit_direction_override(self):
        spec = ObjectiveSpec.parse("max:cycles")
        assert spec.goal == "max"

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            parse_objectives("cycles,happiness")

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            parse_objectives("cycles,cycles")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_objectives(" , ")

    def test_bad_goal_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveSpec("cycles", "sideways")


class TestDominance:
    def test_min_direction(self):
        fast = make_eval("fast", cycles=10.0, energy_pj=5.0)
        slow = make_eval("slow", cycles=20.0, energy_pj=5.0)
        assert dominates(fast, slow, (CYCLES, ENERGY))
        assert not dominates(slow, fast, (CYCLES, ENERGY))

    def test_max_direction(self):
        high = make_eval("high", utilization=0.9, cycles=10.0)
        low = make_eval("low", utilization=0.5, cycles=10.0)
        assert dominates(high, low, (UTIL, CYCLES))

    def test_trade_off_does_not_dominate(self):
        a = make_eval("a", cycles=10.0, energy_pj=9.0)
        b = make_eval("b", cycles=12.0, energy_pj=4.0)
        assert not dominates(a, b, (CYCLES, ENERGY))
        assert not dominates(b, a, (CYCLES, ENERGY))

    def test_equal_vectors_do_not_dominate(self):
        a = make_eval("a", cycles=10.0)
        b = make_eval("b", cycles=10.0)
        assert not dominates(a, b, (CYCLES,))


class TestParetoFrontier:
    def test_synthetic_frontier_is_recovered(self):
        # Three non-dominated trade-off points plus two dominated ones.
        evaluations = [
            make_eval("p1", cycles=10.0, energy_pj=30.0),
            make_eval("p2", cycles=20.0, energy_pj=20.0),
            make_eval("p3", cycles=30.0, energy_pj=10.0),
            make_eval("d1", cycles=25.0, energy_pj=25.0),  # dominated by p2
            make_eval("d2", cycles=40.0, energy_pj=40.0),  # dominated by all
        ]
        frontier = pareto_frontier(evaluations, (CYCLES, ENERGY))
        assert [e.candidate["tag"] for e in frontier] == ["p1", "p2", "p3"]

    def test_frontier_order_is_input_order_independent(self):
        evaluations = [
            make_eval("p1", cycles=10.0, energy_pj=30.0),
            make_eval("p2", cycles=20.0, energy_pj=20.0),
            make_eval("d1", cycles=25.0, energy_pj=25.0),
        ]
        forward = pareto_frontier(evaluations, (CYCLES, ENERGY))
        backward = pareto_frontier(list(reversed(evaluations)), (CYCLES, ENERGY))
        assert [e.candidate.key() for e in forward] == [
            e.candidate.key() for e in backward
        ]

    def test_single_objective_frontier_is_the_optimum(self):
        evaluations = [
            make_eval("a", cycles=12.0),
            make_eval("b", cycles=10.0),
            make_eval("c", cycles=11.0),
        ]
        frontier = pareto_frontier(evaluations, (CYCLES,))
        assert [e.candidate["tag"] for e in frontier] == ["b"]

    def test_identical_vectors_all_kept(self):
        evaluations = [
            make_eval("a", cycles=10.0),
            make_eval("b", cycles=10.0),
        ]
        frontier = pareto_frontier(evaluations, (CYCLES,))
        assert len(frontier) == 2

    def test_duplicate_candidates_counted_once(self):
        twin = make_eval("a", cycles=10.0)
        frontier = pareto_frontier([twin, twin], (CYCLES,))
        assert len(frontier) == 1


class TestBestByScalar:
    def test_min_and_max(self):
        evaluations = [
            make_eval("a", cycles=12.0, utilization=0.7),
            make_eval("b", cycles=10.0, utilization=0.9),
        ]
        assert best_by_scalar(evaluations, CYCLES).candidate["tag"] == "b"
        assert best_by_scalar(evaluations, UTIL).candidate["tag"] == "b"

    def test_tie_breaks_on_candidate_key(self):
        evaluations = [
            make_eval("zz", cycles=10.0),
            make_eval("aa", cycles=10.0),
        ]
        assert best_by_scalar(evaluations, CYCLES).candidate["tag"] == "aa"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_by_scalar([], CYCLES)
