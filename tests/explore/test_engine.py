"""End-to-end tests of the exploration engine: reproducibility, caching,
journal checkpoint/resume, and report output."""

import json

import pytest

from repro.explore import (
    ExplorationEngine,
    GROUP_DIVIDES_BANKS,
    JournalError,
    JournalMismatchError,
    ParameterAxis,
    RunJournal,
    SearchSpace,
    make_strategy,
    parse_objectives,
)
from repro.runtime import Simulator
from repro.workloads import GemmWorkload

WORKLOADS = [GemmWorkload(name="engine_gemm", m=16, n=16, k=16)]
OBJECTIVES = parse_objectives("cycles,energy_pj,area")


def small_space() -> SearchSpace:
    return SearchSpace(
        axes=(
            ParameterAxis.make("data_fifo_depth", (2, 8)),
            ParameterAxis.make("gima_group_size", (16, 64)),
        ),
        constraints=(GROUP_DIVIDES_BANKS,),
        name="engine_small",
    )


def make_engine(strategy="grid", simulator=None, seed=0, **kwargs):
    return ExplorationEngine(
        space=small_space(),
        strategy=make_strategy(strategy, objectives=OBJECTIVES, **kwargs),
        objectives=OBJECTIVES,
        workloads=WORKLOADS,
        simulator=simulator,
        seed=seed,
    )


def frontier_fingerprint(report):
    return [(e.candidate.key(), e.metrics) for e in report.frontier]


class TestDeterminism:
    def test_fixed_seed_reproducible_frontier(self):
        first = make_engine("random", seed=4).run(budget=3)
        second = make_engine("random", seed=4).run(budget=3)
        assert frontier_fingerprint(first) == frontier_fingerprint(second)
        assert [e.candidate.key() for e in first.evaluations] == [
            e.candidate.key() for e in second.evaluations
        ]

    def test_grid_explores_whole_space(self):
        report = make_engine("grid").run(budget=10)
        assert len(report.evaluations) == 4  # full small space
        assert 1 <= len(report.frontier) <= 4
        assert report.simulated == 4

    def test_budget_caps_evaluations(self):
        report = make_engine("grid").run(budget=2)
        assert len(report.evaluations) == 2

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            make_engine("grid").run(budget=0)

    def test_objectives_required(self):
        with pytest.raises(ValueError):
            ExplorationEngine(
                space=small_space(),
                strategy=make_strategy("grid"),
                objectives=(),
                workloads=WORKLOADS,
            )


class TestCaching:
    def test_warm_cache_rerun_simulates_nothing(self, tmp_path):
        cold = make_engine("grid", simulator=Simulator(cache_dir=tmp_path))
        cold_report = cold.run(budget=10)
        assert cold_report.simulated == 4

        warm = make_engine("grid", simulator=Simulator(cache_dir=tmp_path))
        warm_report = warm.run(budget=10)
        assert warm_report.simulated == 0
        assert warm_report.cache_hits == 4
        assert frontier_fingerprint(warm_report) == frontier_fingerprint(cold_report)


class TestJournal:
    def test_journal_records_every_evaluation(self, tmp_path):
        path = tmp_path / "run.jsonl"
        report = make_engine("grid").run(budget=10, journal=path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["strategy"] == "grid"
        assert len(lines) - 1 == len(report.evaluations)

    def test_resume_after_interruption_matches_fresh_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        fresh = make_engine("random", seed=7).run(budget=4, journal=path)
        assert fresh.simulated == 4

        # Interrupt: drop the last full record and truncate the one before.
        lines = path.read_text().splitlines(True)
        path.write_text("".join(lines[:3]) + lines[3][:20])

        resumed = make_engine("random", seed=7).run(
            budget=4, journal=path, resume=True
        )
        assert frontier_fingerprint(resumed) == frontier_fingerprint(fresh)
        assert [e.candidate.key() for e in resumed.evaluations] == [
            e.candidate.key() for e in fresh.evaluations
        ]
        assert resumed.replayed_from_journal == 2
        assert resumed.simulated == 2

    def test_complete_journal_resumes_without_simulation(self, tmp_path):
        path = tmp_path / "run.jsonl"
        make_engine("grid").run(budget=10, journal=path)
        resumed = make_engine("grid").run(budget=10, journal=path, resume=True)
        assert resumed.simulated == 0
        assert resumed.replayed_from_journal == len(resumed.evaluations) == 4

    def test_resume_with_different_seed_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        make_engine("random", seed=1).run(budget=2, journal=path)
        with pytest.raises(JournalMismatchError):
            make_engine("random", seed=2).run(budget=2, journal=path, resume=True)

    def test_resume_with_different_space_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        make_engine("grid").run(budget=2, journal=path)
        other = ExplorationEngine(
            space=SearchSpace(
                axes=(ParameterAxis.make("num_banks", (32, 64)),), name="other"
            ),
            strategy=make_strategy("grid"),
            objectives=OBJECTIVES,
            workloads=WORKLOADS,
        )
        with pytest.raises(JournalMismatchError):
            other.run(budget=2, journal=path, resume=True)

    def test_missing_journal_load_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            RunJournal(tmp_path / "absent.jsonl").load()

    def test_fresh_run_refuses_to_overwrite_existing_journal(self, tmp_path):
        # Forgetting --resume must not wipe a checkpoint.
        path = tmp_path / "run.jsonl"
        make_engine("grid").run(budget=2, journal=path)
        before = path.read_text()
        with pytest.raises(JournalError, match="already exists"):
            make_engine("grid").run(budget=2, journal=path)
        assert path.read_text() == before  # checkpoint untouched

    def test_resume_with_different_population_rejected(self, tmp_path):
        # Population changes parent selection; the header must pin it.
        path = tmp_path / "run.jsonl"
        make_engine("evolutionary", population=4, seed=1).run(budget=3, journal=path)
        with pytest.raises(JournalMismatchError):
            make_engine("evolutionary", population=2, seed=1).run(
                budget=3, journal=path, resume=True
            )

    def test_resume_with_missing_journal_rejected(self, tmp_path):
        # A mistyped --journal path must not silently restart a long run.
        path = tmp_path / "absent.jsonl"
        with pytest.raises(JournalError, match="nothing to resume"):
            make_engine("grid").run(budget=3, journal=path, resume=True)
        assert not path.exists()

    def test_header_pins_package_version(self, tmp_path):
        path = tmp_path / "run.jsonl"
        make_engine("grid").run(budget=2, journal=path)
        header = json.loads(path.read_text().splitlines()[0])
        from repro import __version__

        assert header["package_version"] == __version__
        # A journal written by a different package version must not replay:
        # the cycle model may have changed underneath the recorded metrics.
        doctored = header | {"package_version": "0.0.1"}
        lines = path.read_text().splitlines(True)
        path.write_text(json.dumps(doctored, sort_keys=True) + "\n" + "".join(lines[1:]))
        with pytest.raises(JournalMismatchError):
            make_engine("grid").run(budget=2, journal=path, resume=True)

    def test_mid_file_corruption_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        make_engine("grid").run(budget=10, journal=path)
        lines = path.read_text().splitlines(True)
        lines[1] = "garbage that is not json\n"
        path.write_text("".join(lines))
        with pytest.raises(JournalError):
            RunJournal(path).load()


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return make_engine("grid").run(budget=10)

    def test_frontier_members_are_non_dominated(self, report):
        from repro.explore import dominates

        for member in report.frontier:
            assert not any(
                dominates(other, member, report.objectives)
                for other in report.evaluations
            )

    def test_best_is_on_first_objective(self, report):
        best = report.best()
        assert best.metrics["cycles"] == min(
            e.metrics["cycles"] for e in report.evaluations
        )

    def test_json_roundtrip(self, report, tmp_path):
        path = tmp_path / "report.json"
        report.to_json(path)
        data = json.loads(path.read_text())
        assert data["strategy"] == "grid"
        assert data["num_evaluations"] == 4
        assert len(data["frontier"]) == len(report.frontier)

    def test_csv_output(self, report, tmp_path):
        path = tmp_path / "report.csv"
        report.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(report.evaluations)
        header = lines[0].split(",")
        assert "data_fifo_depth" in header
        assert "cycles" in header and "on_frontier" in header

    def test_metrics_cover_all_objectives(self, report):
        for evaluation in report.evaluations:
            for spec in report.objectives:
                assert spec.name in evaluation.metrics
            assert evaluation.metrics["energy_pj"] > 0
            assert evaluation.metrics["area"] > 0


class TestProposalShortfall:
    def test_under_spent_budget_reported_exactly(self):
        """Small space + large budget: shortfall == budget - evaluations."""
        with pytest.warns(RuntimeWarning, match="under-spend"):
            report = make_engine("random").run(budget=10)
        # The space holds 4 valid candidates (2 axes x 2 values).
        assert len(report.evaluations) == 4
        assert report.proposal_shortfall == 10 - 4
        assert report.as_dict()["proposal_shortfall"] == 6

    def test_fully_spent_budget_reports_zero(self):
        report = make_engine("grid").run(budget=4)
        assert report.proposal_shortfall == 0
