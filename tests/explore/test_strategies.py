"""Tests for the search strategies (determinism, coverage, budget)."""

import pytest

from repro.explore import (
    Candidate,
    Evaluation,
    EvolutionaryStrategy,
    GridStrategy,
    ObjectiveSpec,
    ParameterAxis,
    RandomStrategy,
    SearchSpace,
    available_strategies,
    make_strategy,
)

CYCLES = ObjectiveSpec("cycles", "min")


def space_of(*sizes: int) -> SearchSpace:
    axes = tuple(
        ParameterAxis.make(f"axis{i}", tuple(range(2, 2 + size)))
        for i, size in enumerate(sizes)
    )
    # Synthetic space: bypass the DataMaestro builder entirely.
    return SearchSpace(axes=axes, builder=lambda values: (None, None), name="synthetic")


def fake_eval(candidate: Candidate) -> Evaluation:
    # Deterministic synthetic score: prefer small axis values.
    cycles = float(sum(int(v) for _, v in candidate.assignment))
    return Evaluation(candidate=candidate, metrics={"cycles": cycles})


def drive(strategy, space, budget, seed=0):
    """Run the engine's propose/tell loop with a synthetic evaluator."""
    strategy.reset(space, seed)
    evaluated = {}
    order = []
    while len(order) < budget:
        batch = strategy.propose(evaluated, budget - len(order))
        if not batch:
            break
        for candidate in batch[: budget - len(order)]:
            evaluation = fake_eval(candidate)
            evaluated[candidate.key()] = evaluation
            order.append(candidate.key())
    return order


class TestRegistry:
    def test_available(self):
        assert available_strategies() == ["grid", "random", "evolutionary"]

    def test_make_by_name(self):
        assert isinstance(make_strategy("grid"), GridStrategy)
        assert isinstance(make_strategy("random"), RandomStrategy)
        assert isinstance(make_strategy("evolutionary"), EvolutionaryStrategy)
        with pytest.raises(KeyError):
            make_strategy("simulated-annealing")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RandomStrategy(batch_size=0)
        with pytest.raises(ValueError):
            EvolutionaryStrategy(population=0)


class TestGridStrategy:
    def test_covers_the_whole_space(self):
        space = space_of(2, 3)
        order = drive(GridStrategy(), space, budget=100)
        assert len(order) == 6
        assert sorted(order) == sorted(c.key() for c in space.enumerate())

    def test_budget_truncates(self):
        order = drive(GridStrategy(), space_of(2, 3), budget=4)
        assert len(order) == 4

    def test_reset_restarts(self):
        space = space_of(2, 2)
        strategy = GridStrategy()
        first = drive(strategy, space, budget=10)
        second = drive(strategy, space, budget=10)
        assert first == second


class TestRandomStrategy:
    def test_seed_determinism(self):
        space = space_of(3, 3, 3)
        a = drive(RandomStrategy(batch_size=4), space, budget=9, seed=11)
        b = drive(RandomStrategy(batch_size=4), space, budget=9, seed=11)
        assert a == b

    def test_different_seeds_differ(self):
        space = space_of(3, 3, 3)
        a = drive(RandomStrategy(batch_size=4), space, budget=9, seed=1)
        b = drive(RandomStrategy(batch_size=4), space, budget=9, seed=2)
        assert a != b

    def test_no_duplicate_proposals(self):
        order = drive(RandomStrategy(batch_size=4), space_of(2, 2, 2), budget=8, seed=0)
        assert len(order) == len(set(order))

    def test_terminates_when_space_exhausted(self):
        # Exhaustion now also raises the draw-shortfall warning (see
        # TestDrawShortfall); termination is what this test pins down.
        with pytest.warns(RuntimeWarning):
            order = drive(
                RandomStrategy(batch_size=8), space_of(2), budget=50, seed=0
            )
        assert len(set(order)) <= 2


class TestEvolutionaryStrategy:
    def make(self, population=4):
        return EvolutionaryStrategy(population=population, objectives=(CYCLES,))

    def test_seed_determinism(self):
        space = space_of(4, 4)
        a = drive(self.make(), space, budget=12, seed=5)
        b = drive(self.make(), space, budget=12, seed=5)
        assert a == b

    def test_no_duplicate_proposals(self):
        order = drive(self.make(), space_of(4, 4), budget=12, seed=5)
        assert len(order) == len(set(order))

    def test_respects_budget(self):
        order = drive(self.make(population=5), space_of(4, 4, 4), budget=7, seed=0)
        assert len(order) == 7

    def test_later_generations_descend_from_parents(self):
        # With mutation as the only move after warm-up, every generation-1
        # candidate differs from some warm-up candidate in exactly one axis
        # (unless the neighbourhood was exhausted and a random fallback fired;
        # a 6x6 space with population 3 leaves plenty of neighbours).
        space = space_of(6, 6)
        strategy = self.make(population=3)
        strategy.reset(space, seed=9)
        evaluated = {}
        warmup = strategy.propose(evaluated, 3)
        for candidate in warmup:
            evaluated[candidate.key()] = fake_eval(candidate)
        children = strategy.propose(evaluated, 3)
        assert children
        warm_dicts = [c.as_dict() for c in warmup]
        for child in children:
            child_dict = child.as_dict()
            distances = [
                sum(1 for k in child_dict if child_dict[k] != parent[k])
                for parent in warm_dicts
            ]
            assert min(distances) == 1


class TestDrawShortfall:
    """Exhausted draw attempts must be reported, not silently swallowed."""

    def test_random_reports_shortfall_on_tiny_space(self):
        space = space_of(2)  # two candidates, batches of eight wanted
        strategy = RandomStrategy(batch_size=8, max_attempts_per_draw=16)
        with pytest.warns(RuntimeWarning, match="under-spend"):
            order = drive(strategy, space, budget=10)
        assert len(order) == 2
        assert strategy.draw_shortfall > 0
        assert strategy.describe()["draw_shortfall"] == strategy.draw_shortfall

    def test_evolutionary_reports_shortfall_on_tiny_space(self):
        space = space_of(2)
        strategy = EvolutionaryStrategy(
            population=8, objectives=(CYCLES,), max_attempts_per_draw=16
        )
        with pytest.warns(RuntimeWarning, match="short"):
            order = drive(strategy, space, budget=10)
        assert len(order) == 2
        assert strategy.draw_shortfall > 0
        assert strategy.describe()["draw_shortfall"] == strategy.draw_shortfall

    def test_warning_emitted_once_per_run(self):
        import warnings as warnings_module

        space = space_of(2)
        strategy = RandomStrategy(batch_size=8, max_attempts_per_draw=16)
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            drive(strategy, space, budget=20)
        assert (
            sum(issubclass(w.category, RuntimeWarning) for w in caught) == 1
        )

    def test_reset_clears_shortfall(self):
        space = space_of(2)
        strategy = RandomStrategy(batch_size=8, max_attempts_per_draw=16)
        with pytest.warns(RuntimeWarning):
            drive(strategy, space, budget=10)
        strategy.reset(space, 0)
        assert strategy.draw_shortfall == 0
        assert strategy.describe()["draw_shortfall"] == 0

    def test_full_batches_report_no_shortfall(self):
        space = space_of(4, 4)  # sixteen candidates
        strategy = RandomStrategy(batch_size=4, max_attempts_per_draw=64)
        order = drive(strategy, space, budget=8)
        assert len(order) == 8
        assert strategy.draw_shortfall == 0
