"""Smoke and shape tests for the per-figure experiment modules.

The heavyweight sweeps run in ``benchmarks/``; here every experiment is
exercised at reduced scale to check structure, report formatting and the
registry plumbing.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig4_agu,
    fig7_ablation,
    fig8_fpga,
    fig9_breakdown,
    run_experiment,
    report_experiment,
    table1_features,
    table3_networks,
)
from repro.workloads import GemmWorkload, NetworkLayer, NetworkModel


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "fig4",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "table3",
        }

    def test_run_and_report_by_name(self):
        results = run_experiment("fig4")
        text = report_experiment("fig4", results)
        assert "Figure 4" in text

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_every_module_has_run_report_main(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.report)
            assert callable(module.main)


class TestTable1:
    def test_matrix_and_report(self):
        matrix = table1_features.run()
        assert len(matrix) == 9
        text = table1_features.report(matrix)
        assert "DataMaestro" in text and "Buffet" in text

    def test_paper_reference_rows_match(self):
        matrix = table1_features.run()
        for solution, expected in table1_features.PAPER_TABLE1.items():
            assert matrix[solution] == expected


class TestFig4:
    def test_exact_paper_match(self):
        results = fig4_agu.run()
        assert results["matches_paper"]
        assert len(results["rows"]) == 8
        text = fig4_agu.report(results)
        assert "matches the paper's Figure 4(c): True" in text


class TestFig7SmallScale:
    @pytest.fixture(scope="class")
    def results(self):
        return fig7_ablation.run(workloads_per_group=1, full=False)

    def test_structure(self, results):
        assert results["num_simulations"] == 18
        assert set(results["mean_utilization"]) == {
            "gemm",
            "transposed_gemm",
            "convolution",
        }
        for by_step in results["mean_utilization"].values():
            assert set(by_step) == {
                "1_baseline",
                "2_prefetch",
                "3_transposer",
                "4_broadcaster",
                "5_im2col",
                "6_full",
            }

    def test_report_contains_both_panels(self, results):
        text = fig7_ablation.report(results)
        assert "Figure 7(a)" in text
        assert "Figure 7(b)" in text
        assert "max speedup" in text

    def test_full_suite_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SUITE", "1")
        assert fig7_ablation.full_suite_requested(None)
        monkeypatch.setenv("REPRO_FULL_SUITE", "0")
        assert not fig7_ablation.full_suite_requested(None)
        assert fig7_ablation.full_suite_requested(True)


class TestFig8AndFig9:
    def test_fig8_report(self):
        results = fig8_fpga.run()
        text = fig8_fpga.report(results)
        assert "VPK180" in text
        assert results["model"]["luts_total"] > 0

    def test_fig9_report(self):
        results = fig9_breakdown.run()
        text = fig9_breakdown.report(results)
        assert "Figure 9(a)" in text
        assert "Figure 9(b)" in text
        assert "Figure 9(c)" in text
        assert "TOPS/W" in text or "energy efficiency" in text


class TestTable3SmallScale:
    def test_custom_network_dictionary(self):
        tiny = NetworkModel(
            name="TinyFormer",
            kind="Transformer",
            layers=(
                NetworkLayer(GemmWorkload(name="tf_proj", m=64, n=64, k=64), count=2),
            ),
        )
        results = table3_networks.run(networks={"TinyFormer": tiny})
        assert "TinyFormer" in results["summary"]
        assert results["summary"]["TinyFormer"]["utilization_percent"] > 90
        text = table3_networks.report(results)
        assert "TinyFormer" in text
