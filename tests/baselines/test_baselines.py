"""Tests for the SotA comparator models (Table I profiles, Fig. 10 models)."""

import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    BitWaveModel,
    BuffetModel,
    DataMaestroSolution,
    FeatherModel,
    GemminiModel,
    SoftbrainModel,
    TABLE1_FEATURES,
    create_baseline,
    describe_baselines,
    overhead_comparison,
    table1_solutions,
    throughput_baselines,
    workload_as_gemm,
)
from repro.workloads import ConvWorkload, GemmWorkload

GEMM64 = GemmWorkload(name="b_gemm64", m=64, n=64, k=64)
GEMM128 = GemmWorkload(name="b_gemm128", m=128, n=128, k=128)
CONV3 = ConvWorkload(
    name="b_conv3",
    in_height=16,
    in_width=16,
    in_channels=32,
    out_channels=32,
    kernel_h=3,
    kernel_w=3,
    padding=1,
)
CONV7 = ConvWorkload(
    name="b_conv7",
    in_height=16,
    in_width=16,
    in_channels=16,
    out_channels=32,
    kernel_h=7,
    kernel_w=7,
    stride=2,
    padding=3,
)


class TestRegistries:
    def test_table1_contains_nine_solutions(self):
        solutions = table1_solutions()
        names = [s.name for s in solutions]
        assert len(solutions) == 9
        assert "DataMaestro" in names
        assert "Buffet" in names and "Softbrain" in names

    def test_feature_profiles_cover_all_table1_rows(self):
        for solution in table1_solutions():
            profile = solution.feature_profile().as_dict()
            assert set(TABLE1_FEATURES) <= set(profile)

    def test_only_datamaestro_has_every_feature(self):
        complete = []
        for solution in table1_solutions():
            profile = solution.feature_profile().as_dict()
            if all(profile[f] not in (False, None) for f in TABLE1_FEATURES):
                complete.append(solution.name)
        assert complete == ["DataMaestro"]

    def test_throughput_baselines(self):
        names = [b.name for b in throughput_baselines()]
        assert names == ["Gemmini (OS)", "Gemmini (WS)", "BitWave", "FEATHER"]
        assert all(b.has_performance_model for b in throughput_baselines())

    def test_overhead_comparison_matches_paper_table(self):
        overhead = overhead_comparison()
        assert overhead["Buffet"].area_percent == pytest.approx(2.0)
        assert overhead["Softbrain"].power_percent == pytest.approx(15.3)
        assert overhead["BitWave"].area_percent == pytest.approx(11.9)
        assert overhead["FEATHER"].power_percent is None

    def test_describe_includes_overheads(self):
        info = BuffetModel().describe()
        assert info["data_movement_area_percent"] == 2.0

    def test_registry_slugs_round_trip(self):
        """describe() must advertise slugs create_baseline() accepts."""
        for slug, info in describe_baselines().items():
            assert info["slug"] == slug
            assert create_baseline(info["slug"]).name == info["name"]

    def test_create_unknown_baseline(self):
        with pytest.raises(KeyError):
            create_baseline("warp-drive")

    def test_registry_covers_table1(self):
        assert len(BASELINE_REGISTRY) == 10  # 9 Table I columns + Gemmini WS


class TestWorkloadAsGemm:
    def test_gemm_passthrough(self):
        assert workload_as_gemm(GEMM64) == (64, 64, 64)

    def test_conv_implicit_gemm_view(self):
        m, n, k = workload_as_gemm(CONV3)
        assert m == CONV3.output_pixels
        assert n == 32
        assert k == 9 * 32

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            workload_as_gemm(42)


class TestGemminiModel:
    def test_low_utilization_due_to_unmanaged_data_movement(self):
        model = GemminiModel("OS")
        assert model.utilization(GEMM64) < 0.25

    def test_weight_stationary_beats_output_stationary(self):
        os_model = GemminiModel("OS")
        ws_model = GemminiModel("WS")
        assert ws_model.utilization(GEMM64) > os_model.utilization(GEMM64)

    def test_utilization_bounded(self):
        model = GemminiModel("OS")
        for workload in (GEMM64, GEMM128, CONV3, CONV7):
            assert 0.0 < model.utilization(workload) < 1.0

    def test_invalid_dataflow(self):
        with pytest.raises(ValueError):
            GemminiModel("XS")

    def test_no_decoupling_in_feature_profile(self):
        profile = GemminiModel("OS").feature_profile()
        assert not profile.decoupled_access_execute
        assert not profile.fine_grained_prefetch


class TestBitWaveAndFeather:
    def test_bitwave_conv_specialisation(self):
        model = BitWaveModel()
        assert model.utilization(CONV3) > model.utilization(GEMM64)

    def test_bitwave_large_kernel_penalty(self):
        model = BitWaveModel()
        assert model.utilization(CONV3) > model.utilization(CONV7)

    def test_feather_is_the_strongest_baseline(self):
        feather = FeatherModel()
        others = [GemminiModel("OS"), GemminiModel("WS"), BitWaveModel()]
        for workload in (GEMM64, GEMM128):
            assert feather.utilization(workload) > max(
                other.utilization(workload) for other in others
            )

    def test_feather_reports_on_the_fly_manipulation(self):
        assert FeatherModel().feature_profile().on_the_fly_data_manipulation

    def test_throughput_normalisation(self):
        gops = FeatherModel().normalized_throughput_gops(GEMM64)
        assert 0 < gops < 1024

    def test_softbrain_has_no_performance_model(self):
        model = SoftbrainModel()
        assert not model.has_performance_model
        with pytest.raises(NotImplementedError):
            model.utilization(GEMM64)


class TestDataMaestroSolution:
    def test_measured_utilization_beats_every_baseline(self):
        ours = DataMaestroSolution()
        our_util = ours.utilization(GEMM64)
        assert our_util > 0.95
        for baseline in throughput_baselines():
            assert our_util > baseline.utilization(GEMM64)

    def test_utilization_cache(self):
        ours = DataMaestroSolution()
        first = ours.utilization(GEMM64)
        second = ours.utilization(GEMM64)
        assert first == second

    def test_overhead_profile_from_area_model(self):
        profile = DataMaestroSolution().overhead_profile()
        assert 2.0 < profile.area_percent < 15.0
