"""Doc-drift gates: links, anchors, CLI/docs agreement, knob coverage.

These tests make documentation rot a build failure:

* every relative link and ``#anchor`` in ``docs/`` and the repo-level
  markdown files must resolve (``tools/check_doc_links.py``);
* every CLI subcommand must be documented — in the ``repro.cli`` module
  docstring and in the ``docs/ARCHITECTURE.md`` CLI table — and carry
  parser help text;
* the runtime knobs (env vars, cycle budget) must appear in the single
  knob table ``docs/ARCHITECTURE.md`` maintains;
* every page under ``docs/`` must be reachable from the architecture map.
"""

import argparse
import subprocess
import sys
from pathlib import Path

import pytest

import repro.cli as cli

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
CHECKER = REPO_ROOT / "tools" / "check_doc_links.py"


def subcommands():
    """Name → subparser for every CLI subcommand."""
    parser = cli.build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise AssertionError("CLI has no subparsers")


class TestLinkChecker:
    def test_repo_docs_have_no_broken_links(self):
        result = subprocess.run(
            [sys.executable, str(CHECKER)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr or result.stdout

    def test_checker_catches_broken_link_and_anchor(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "a.md").write_text(
            "# Title\n\nsee [missing](nope.md) and [bad](b.md#no-such-heading)\n",
            encoding="utf-8",
        )
        (tmp_path / "docs" / "b.md").write_text("# Real Heading\n", encoding="utf-8")
        result = subprocess.run(
            [sys.executable, str(CHECKER), "--root", str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "nope.md" in result.stderr
        assert "no-such-heading" in result.stderr

    def test_checker_accepts_valid_anchor_and_ignores_code(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "a.md").write_text(
            "# One\n\n[ok](#two-words)\n\n```\n[not a link](ghost.md)\n```\n\n"
            "## Two words\n",
            encoding="utf-8",
        )
        result = subprocess.run(
            [sys.executable, str(CHECKER), "--root", str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr


class TestCliDocDrift:
    def test_every_subcommand_in_cli_docstring(self):
        for name in subcommands():
            assert name in cli.__doc__, (
                f"subcommand {name!r} missing from the repro.cli module "
                f"docstring — update the command list"
            )

    def test_every_subcommand_in_architecture_table(self):
        text = (DOCS / "ARCHITECTURE.md").read_text(encoding="utf-8")
        for name in subcommands():
            assert f"`{name}`" in text, (
                f"subcommand {name!r} missing from the CLI table in "
                f"docs/ARCHITECTURE.md"
            )

    def test_every_subcommand_has_help_text(self):
        parser = cli.build_parser()
        for action in parser._actions:
            if not isinstance(action, argparse._SubParsersAction):
                continue
            helps = {
                choice.dest: choice.help for choice in action._choices_actions
            }
            for name in action.choices:
                assert helps.get(name), f"subcommand {name!r} has no help text"

    def test_engine_choices_match_docs_claim(self):
        """RUNTIME.md/ENGINE.md promise --engine {event,lockstep} everywhere
        a simulation is launched; keep the parser honest."""
        from repro.engine import available_engines

        assert set(available_engines()) == {"event", "lockstep"}
        for name in (
            "simulate-gemm",
            "batch",
            "sweep",
            "explore",
            "serve",
            "replay",
            "selftest",
        ):
            sub = subcommands()[name]
            engine_actions = [a for a in sub._actions if a.dest == "engine"]
            assert engine_actions, f"{name} lost its --engine flag"
            assert set(engine_actions[0].choices) == set(available_engines())


class TestKnobTable:
    def test_env_vars_documented_in_one_place(self):
        text = (DOCS / "ARCHITECTURE.md").read_text(encoding="utf-8")
        for knob in (
            "REPRO_CACHE_DIR",
            "REPRO_JOURNAL_DIR",
            "REPRO_SERVE_SHARDS",
            "REPRO_FULL_SUITE",
            "REPRO_STRICT_BENCH",
            "REPRO_BENCH_OUT",
            "DEFAULT_CYCLE_BUDGET",
        ):
            assert knob in text, f"{knob} missing from the ARCHITECTURE.md knob table"

    def test_every_config_env_var_is_documented(self):
        """The typed config is the code-side source of truth; every ENV_*
        constant it exports must appear in the knob table."""
        import repro.config as config

        text = (DOCS / "ARCHITECTURE.md").read_text(encoding="utf-8")
        env_names = [
            getattr(config, name)
            for name in config.__all__
            if name.startswith("ENV_")
        ]
        assert env_names, "repro.config exports no ENV_* constants?"
        for env_name in env_names:
            assert env_name in text, (
                f"{env_name} (repro.config) missing from the "
                f"ARCHITECTURE.md knob table"
            )

    def test_documented_knobs_exist_in_code(self):
        from repro.runtime.cache import CACHE_DIR_ENV
        from repro.sim import DEFAULT_CYCLE_BUDGET

        assert CACHE_DIR_ENV == "REPRO_CACHE_DIR"
        assert DEFAULT_CYCLE_BUDGET == 10_000_000

    def test_strict_bench_knob_used_by_benchmark(self):
        text = (REPO_ROOT / "benchmarks" / "test_engine_speedup.py").read_text(
            encoding="utf-8"
        )
        assert "REPRO_STRICT_BENCH" in text


class TestCoverageOfDocsTree:
    def test_every_doc_page_linked_from_architecture(self):
        text = (DOCS / "ARCHITECTURE.md").read_text(encoding="utf-8")
        for page in sorted(DOCS.glob("*.md")):
            if page.name == "ARCHITECTURE.md":
                continue
            assert f"({page.name}" in text, (
                f"docs/{page.name} is not linked from the architecture map"
            )

    def test_serve_doc_covers_the_promised_sections(self):
        text = (DOCS / "SERVE.md").read_text(encoding="utf-8")
        for needle in (
            "coalesce",
            "backpressure",
            "QueueFullError",
            "drain",
            "bare `Simulator`",
            "cache prune",
        ):
            assert needle in text, f"SERVE.md lost its {needle!r} coverage"

    def test_observability_doc_covers_the_promised_surface(self):
        """OBSERVABILITY.md documents every metric family the exporter
        emits, the trace span glossary and the dashboard walkthrough."""
        text = (DOCS / "OBSERVABILITY.md").read_text(encoding="utf-8")
        for needle in (
            "--metrics-port",
            "--trace",
            "--stats-format",
            "/metrics",
            "/snapshot",
            "/config",
            "repro_latency_seconds",
            "repro_journal_recovered_total",
            "repro_shard_executed_total",
            "repro_build_info",
            "shard_routed",
            "write_back",
            "Perfetto",
            "Dashboard walkthrough",
        ):
            assert needle in text, f"OBSERVABILITY.md lost its {needle!r} coverage"

    def test_observability_doc_metric_names_match_the_exporter(self):
        """Every snapshot-derived family name must appear in the doc's
        metric table — renaming a family without documenting it fails."""
        from repro.obs import exposition

        text = (DOCS / "OBSERVABILITY.md").read_text(encoding="utf-8")
        names = [
            name
            for _, name, _ in (
                exposition._COMMON_COUNTERS
                + exposition._THREAD_ONLY_COUNTERS
                + exposition._CLUSTER_ONLY_COUNTERS
            )
        ]
        for name in names:
            assert name in text, f"{name} missing from the OBSERVABILITY.md table"

    def test_scenarios_doc_covers_the_promised_surface(self):
        """SCENARIOS.md documents the generator grammar, the shrinker and
        the replay CLI walkthrough."""
        text = (DOCS / "SCENARIOS.md").read_text(encoding="utf-8")
        for needle in (
            "WorkloadGenerator",
            "shrink",
            "regression_snippet",
            "REPRO_FUZZ_SEED",
            "Replay CLI walkthrough",
            "--trace-file",
            "--record",
            "avoided fraction",
            "BENCH_serve.json",
        ):
            assert needle in text, f"SCENARIOS.md lost its {needle!r} coverage"

    def test_every_arrival_regime_documented(self):
        """Adding a regime to REGIMES without a SCENARIOS.md row fails."""
        from repro.serve.replay import REGIMES

        text = (DOCS / "SCENARIOS.md").read_text(encoding="utf-8")
        assert len(REGIMES) >= 4
        for name in REGIMES:
            assert f"`{name}`" in text, (
                f"arrival regime {name!r} missing from the SCENARIOS.md "
                f"regime table"
            )

    def test_every_generator_family_documented(self):
        """Every scenario family the generator samples has a grammar row."""
        from repro.workloads import FAMILIES

        text = (DOCS / "SCENARIOS.md").read_text(encoding="utf-8")
        for family in FAMILIES:
            assert f"`{family}`" in text, (
                f"generator family {family!r} missing from the SCENARIOS.md "
                f"family table"
            )

    def test_replay_regimes_match_the_cli_choices(self):
        """The `repro replay --regime` choices are exactly the registry."""
        from repro.serve.replay import REGIMES

        sub = subcommands()["replay"]
        regime_actions = [a for a in sub._actions if a.dest == "regime"]
        assert regime_actions, "replay lost its --regime flag"
        assert set(regime_actions[0].choices) == set(REGIMES)

    def test_serve_doc_covers_the_cluster(self):
        """The sharding section documents every cluster guarantee the
        tests in ``tests/cluster/`` enforce."""
        text = (DOCS / "SERVE.md").read_text(encoding="utf-8")
        for needle in (
            "Sharding across processes",
            "ShardRouter",
            "ShardFailedError",
            "requeue",
            "journal",
            "--shards",
            "--stats-interval",
            "shard_scaling",
        ):
            assert needle in text, f"SERVE.md lost its cluster {needle!r} coverage"
