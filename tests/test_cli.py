"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, parse_workload_spec
from repro.workloads import ConvWorkload, GemmWorkload


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_gemm_arguments(self):
        args = build_parser().parse_args(["simulate-gemm", "16", "16", "16", "--quantize"])
        assert (args.m, args.n, args.k) == (16, 16, 16)
        assert args.quantize and not args.transposed


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_suite_info(self, capsys):
        assert main(["suite-info"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "convolution" in out

    def test_experiment_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_simulate_gemm(self, capsys):
        assert main(["simulate-gemm", "16", "16", "16"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "kernel cycles" in out

    def test_simulate_gemm_baseline_slower(self, capsys):
        main(["simulate-gemm", "16", "16", "32"])
        full_out = capsys.readouterr().out
        main(["simulate-gemm", "16", "16", "32", "--baseline"])
        base_out = capsys.readouterr().out

        def cycles(text):
            for line in text.splitlines():
                if "kernel cycles" in line:
                    return int(line.split("|")[1].strip())
            raise AssertionError("cycles not found")

        assert cycles(base_out) > cycles(full_out)

    def test_simulate_conv(self, capsys):
        assert main(
            ["simulate-conv", "8", "8", "8", "8", "--kernel", "3", "--padding", "1"]
        ) == 0
        assert "utilization" in capsys.readouterr().out

    def test_simulate_quantized_conv(self, capsys):
        assert main(["simulate-conv", "8", "8", "8", "8", "--quantize"]) == 0
        assert "utilization" in capsys.readouterr().out


class TestWorkloadSpecs:
    def test_gemm_spec(self):
        workload = parse_workload_spec("gemm:64x32x16:t:q")
        assert isinstance(workload, GemmWorkload)
        assert (workload.m, workload.n, workload.k) == (64, 32, 16)
        assert workload.transposed_a and workload.quantize

    def test_conv_spec_with_flags(self):
        workload = parse_workload_spec("conv:16x16x8x32:k5:s2:p2:q")
        assert isinstance(workload, ConvWorkload)
        assert workload.kernel_h == 5 and workload.stride == 2
        assert workload.padding == 2 and workload.quantize

    def test_invalid_specs_rejected(self):
        for bad in ("gemm:64x64", "conv:8x8x8", "fft:64", "gemm:8x8x8:z", "gemm"):
            with pytest.raises(ValueError):
                parse_workload_spec(bad)


class TestBatchAndSweep:
    def test_batch_cold_then_warm(self, tmp_path, capsys):
        argv = [
            "batch",
            "gemm:16x16x16",
            "conv:8x8x8x8:k3:p1",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "miss" in cold and "2 simulated" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "hit" in warm and "0 simulated" in warm and "2 cache hits" in warm

    def test_batch_unknown_backend(self, capsys):
        assert main(["batch", "gemm:8x8x8", "--backend", "bogus", "--no-cache"]) == 2

    def test_batch_baseline_backend(self, capsys):
        assert (
            main(["batch", "gemm:16x16x16", "--backend", "baseline:feather", "--no-cache"])
            == 0
        )
        assert "baseline:feather" in capsys.readouterr().out

    def test_sweep_two_steps(self, capsys):
        argv = [
            "sweep",
            "gemm:16x16x32",
            "--steps",
            "1_baseline,6_full",
            "--no-cache",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1_baseline" in out and "6_full" in out

    def test_sweep_unknown_step(self, capsys):
        assert main(["sweep", "gemm:8x8x8", "--steps", "7_magic", "--no-cache"]) == 2

    def test_sweep_unknown_backend(self, capsys):
        assert main(["sweep", "gemm:8x8x8", "--backend", "bogus", "--no-cache"]) == 2
        assert "unknown backend" in capsys.readouterr().err


class TestExplore:
    def _argv(self, tmp_path, *extra):
        return [
            "explore",
            "--space",
            "gima_group",
            "--axis",
            "gima_group_size=16,64",
            "--workload",
            "gemm:16x16x16",
            "--budget",
            "4",
            "--cache-dir",
            str(tmp_path / "cache"),
            *extra,
        ]

    def test_explore_grid_prints_frontier(self, tmp_path, capsys):
        assert main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "gima_group_size=16" in out
        assert "best on cycles" in out

    def test_explore_warm_cache_simulates_nothing(self, tmp_path, capsys):
        assert main(self._argv(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out and "2 cache hits" in out

    def test_explore_journal_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "run.jsonl")
        argv = self._argv(tmp_path, "--journal", journal, "--strategy", "random")
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 simulated" in first
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "0 simulated" in resumed and "2 replayed from journal" in resumed

    def test_explore_resume_requires_journal(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--resume")) == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_explore_writes_json_and_csv(self, tmp_path, capsys):
        import json as jsonlib

        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "report.csv"
        argv = self._argv(
            tmp_path, "--json", str(json_path), "--csv", str(csv_path)
        )
        assert main(argv) == 0
        data = jsonlib.loads(json_path.read_text())
        assert data["num_evaluations"] == 2
        assert csv_path.read_text().startswith("gima_group_size")

    def test_explore_unknown_space(self, capsys):
        assert main(["explore", "--space", "hyperspace", "--no-cache"]) == 2
        assert "unknown search space" in capsys.readouterr().err

    def test_explore_unknown_strategy(self, capsys):
        assert main(["explore", "--strategy", "magic", "--no-cache"]) == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_explore_unknown_objective(self, capsys):
        assert main(["explore", "--objectives", "happiness", "--no-cache"]) == 2
        assert "unknown objective" in capsys.readouterr().err

    def test_explore_empty_space_is_an_error_not_a_traceback(self, capsys):
        # 48 divides neither 32 nor 64: every candidate is filtered out.
        argv = [
            "explore",
            "--space",
            "default",
            "--axis",
            "gima_group_size=48",
            "--no-cache",
        ]
        assert main(argv) == 2
        assert "no valid candidates" in capsys.readouterr().err

    def test_explore_non_positive_budget_rejected(self, capsys):
        assert main(["explore", "--budget", "0", "--no-cache"]) == 2
        assert "--budget must be positive" in capsys.readouterr().err

    def test_explore_typoed_axis_name_names_the_axis(self, capsys):
        argv = ["explore", "--axis", "data_fifo=2,4", "--no-cache"]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "unknown axes" in err and "data_fifo" in err

    def test_explore_resume_with_missing_journal_rejected(self, tmp_path, capsys):
        argv = self._argv(
            tmp_path, "--journal", str(tmp_path / "absent.jsonl"), "--resume"
        )
        assert main(argv) == 2
        assert "nothing to resume" in capsys.readouterr().err


class TestSelftest:
    def test_selftest_passes(self, tmp_path, capsys):
        assert main(["selftest", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "selftest ok" in out
        assert "[ok] second run served from cache" in out


class TestServe:
    def test_serve_coalesces_duplicate_stream(self, tmp_path, capsys):
        argv = [
            "serve",
            "gemm:16x16x16",
            "--repeat",
            "6",
            "--clients",
            "2",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "6 submitted" in out
        assert "1 simulated" in out
        assert "coalescing hit-rate" in out

    def test_serve_events_stream(self, capsys):
        argv = ["serve", "gemm:8x8x8", "--repeat", "2", "--no-cache", "--events"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "submitted" in out and "finished" in out

    def test_serve_warm_cache_second_run(self, tmp_path, capsys):
        argv = ["serve", "gemm:16x16x16", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out and "1 cache hits" in out

    def test_serve_rejects_bad_spec_and_bad_backend(self, capsys):
        assert main(["serve", "gemm:banana", "--no-cache"]) == 2
        capsys.readouterr()
        assert main(["serve", "gemm:8x8x8", "--backend", "nope", "--no-cache"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_serve_rejects_non_positive_repeat(self, capsys):
        assert main(["serve", "gemm:8x8x8", "--repeat", "0", "--no-cache"]) == 2
        assert "--repeat" in capsys.readouterr().err

    def test_serve_rejects_non_positive_workers_and_backlog(self, capsys):
        assert main(["serve", "gemm:8x8x8", "--workers", "0", "--no-cache"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["serve", "gemm:8x8x8", "--backlog", "0", "--no-cache"]) == 2
        capsys.readouterr()


class TestReplay:
    def test_replay_hotkey_regime_summary(self, tmp_path, capsys):
        argv = [
            "replay",
            "--regime",
            "hotkey",
            "--requests",
            "12",
            "--rate",
            "2000",
            "--pool",
            "4",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "regime hotkey:" in out
        assert "replay: regime=hotkey requests=12" in out
        assert "avoided=" in out

    def test_replay_json_report_closes_accounting(self, tmp_path, capsys):
        argv = [
            "replay",
            "--regime",
            "poisson",
            "--requests",
            "8",
            "--rate",
            "2000",
            "--pool",
            "4",
            "--cache-dir",
            str(tmp_path),
            "--json",
        ]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["regime"] == "poisson"
        assert report["submitted"] == 8
        assert report["failed"] == 0
        assert (
            report["coalesced"] + report["cache_hits"] + report["executed"]
            == report["submitted"]
        )

    def test_replay_explicit_specs_replace_the_pool(self, tmp_path, capsys):
        argv = [
            "replay",
            "gemm:8x8x8",
            "gemm:8x8x16",
            "--regime",
            "bursty",
            "--requests",
            "6",
            "--rate",
            "2000",
            "--cache-dir",
            str(tmp_path),
            "--json",
        ]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["pool_size"] == 2
        assert report["executed"] <= 2

    def test_replay_record_then_trace_file_round_trip(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        record = [
            "replay",
            "--regime",
            "poisson",
            "--requests",
            "5",
            "--rate",
            "2000",
            "--pool",
            "3",
            "--record",
            str(trace_path),
            "--no-cache",
        ]
        assert main(record) == 0
        out = capsys.readouterr().out
        assert f"recorded 5 events -> {trace_path}" in out
        replay = [
            "replay",
            "--trace-file",
            str(trace_path),
            "--no-cache",
            "--json",
        ]
        assert main(replay) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["regime"] == "trace"
        assert report["submitted"] == 5

    def test_replay_missing_trace_file_rejected(self, tmp_path, capsys):
        argv = ["replay", "--trace-file", str(tmp_path / "none.jsonl"), "--no-cache"]
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_rejects_bad_arguments(self, capsys):
        assert main(["replay", "--requests", "0", "--no-cache"]) == 2
        assert "--requests" in capsys.readouterr().err
        assert main(["replay", "--rate", "-1", "--no-cache"]) == 2
        assert "--rate" in capsys.readouterr().err
        assert main(["replay", "--backend", "nope", "--no-cache"]) == 2
        assert "unknown backend" in capsys.readouterr().err
        assert main(["replay", "gemm:banana", "--no-cache"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_seed_defaults_to_fuzz_seed_knob(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_SEED", "7")
        argv = [
            "replay",
            "--regime",
            "poisson",
            "--requests",
            "4",
            "--rate",
            "2000",
            "--pool",
            "3",
            "--no-cache",
            "--json",
        ]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["requests"] == 4


class TestCacheCommand:
    def _warm(self, tmp_path):
        assert main(["batch", "gemm:8x8x8", "gemm:8x8x16", "--cache-dir", str(tmp_path)]) == 0

    def test_cache_info(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "size_bytes" in out

    def test_cache_prune_by_entries(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        argv = ["cache", "prune", "--cache-dir", str(tmp_path), "--max-entries", "1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "pruned 1 entries" in out and "1 entries" in out

    def test_cache_prune_requires_a_bound(self, tmp_path, capsys):
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        assert "--max-entries and/or --max-bytes" in capsys.readouterr().err

    def test_cache_clear(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 2 entries" in capsys.readouterr().out


class TestServeObservability:
    def test_stats_format_json_emits_parseable_lines(self, capsys):
        import json

        argv = [
            "serve",
            "gemm:8x8x8",
            "--repeat",
            "2",
            "--no-cache",
            "--stats-interval",
            "60",  # only the guaranteed end-of-stream record fires
            "--stats-format",
            "json",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        records = [
            json.loads(line) for line in out.splitlines() if line.startswith("{")
        ]
        assert len(records) >= 1
        final = records[-1]
        assert final["submitted"] == 2
        # Whether the duplicate coalesces depends on whether the first job
        # is still in-flight at the second submit — don't race on it; the
        # accounting must close either way.
        assert final["executed"] + final["coalesced"] == 2
        assert final["executed"] >= 1
        assert final["latency"]["count"] == final["executed"]

    def test_stats_format_text_stays_human(self, capsys):
        argv = [
            "serve",
            "gemm:8x8x8",
            "--no-cache",
            "--stats-interval",
            "60",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "submitted=1" in out
        assert "{" not in out.splitlines()[0]

    def test_serve_metrics_port_scrapeable_while_serving(self, capsys):
        import re
        import urllib.request

        argv = [
            "serve",
            "gemm:8x8x8",
            "--repeat",
            "3",
            "--no-cache",
            "--metrics-port",
            "0",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        match = re.search(r"metrics: (http://127\.0\.0\.1:\d+)/metrics", out)
        assert match, f"no metrics URL announced in: {out!r}"
        # The server is closed with the stream; the port must be released.
        with pytest.raises(Exception):
            urllib.request.urlopen(f"{match.group(1)}/healthz", timeout=1)

    def test_serve_rejects_out_of_range_metrics_port(self, capsys):
        argv = ["serve", "gemm:8x8x8", "--no-cache", "--metrics-port", "99999"]
        assert main(argv) == 2
        assert "--metrics-port" in capsys.readouterr().err

    def test_serve_trace_exports_chrome_json(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        argv = [
            "serve",
            "gemm:8x8x8",
            "--repeat",
            "3",
            "--no-cache",
            "--trace",
            str(trace_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and str(trace_path) in out
        document = json.loads(trace_path.read_text())
        events = document["traceEvents"]
        names = {event["name"] for event in events}
        # submit -> settle of the executed job, plus the coalesced riders.
        assert {"job", "queued", "executing", "coalesced"} <= names
        # Every opened job span settled (a late duplicate may open a
        # second span on the same track after the first one finished).
        job_edges = [e["ph"] for e in events if e["name"] == "job"]
        assert job_edges.count("b") >= 1
        assert job_edges.count("b") == job_edges.count("e")
        # Tracing is torn down with the run: nothing global leaks.
        from repro.obs.trace import get_tracer

        assert get_tracer() is None

    def test_trace_env_knob_enables_tracing(self, tmp_path, capsys, monkeypatch):
        from repro import config

        trace_path = tmp_path / "env-trace.json"
        monkeypatch.setenv("REPRO_TRACE", str(trace_path))
        monkeypatch.setattr(config, "_PINNED", None)
        assert main(["serve", "gemm:8x8x8", "--no-cache"]) == 0
        assert trace_path.exists()


class TestMetricsCommand:
    def test_metrics_once_prints_build_info(self, tmp_path, capsys):
        argv = ["metrics", "--once", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_build_info gauge" in out
        assert "repro_build_info{version=" in out
        assert "repro_result_cache_entries 0" in out

    def test_metrics_once_reflects_cache_contents(self, tmp_path, capsys):
        assert main(["batch", "gemm:8x8x8", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["metrics", "--once", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro_result_cache_entries 1" in out

    def test_metrics_serves_for_duration(self, tmp_path, capsys):
        import re
        import threading
        import urllib.request

        scraped = {}

        def run():
            scraped["code"] = main(
                [
                    "metrics",
                    "--port",
                    "0",
                    "--duration",
                    "3",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        import time

        deadline = time.monotonic() + 5
        url = None
        while time.monotonic() < deadline and url is None:
            out = capsys.readouterr().out
            match = re.search(r"metrics: (http://127\.0\.0\.1:\d+)/metrics", out)
            if match:
                url = match.group(1)
            else:
                time.sleep(0.05)
        assert url, "metrics URL never announced"
        with urllib.request.urlopen(f"{url}/metrics", timeout=5) as response:
            body = response.read().decode("utf-8")
        assert "repro_build_info" in body
        thread.join(timeout=10)
        assert scraped["code"] == 0

    def test_metrics_rejects_bad_port_and_duration(self, capsys):
        assert main(["metrics", "--port", "-1", "--once"]) == 2
        assert "--port" in capsys.readouterr().err
        assert main(["metrics", "--duration", "0"]) == 2
        assert "--duration" in capsys.readouterr().err
