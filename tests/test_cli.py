"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_workload_spec
from repro.workloads import ConvWorkload, GemmWorkload


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_gemm_arguments(self):
        args = build_parser().parse_args(["simulate-gemm", "16", "16", "16", "--quantize"])
        assert (args.m, args.n, args.k) == (16, 16, 16)
        assert args.quantize and not args.transposed


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_suite_info(self, capsys):
        assert main(["suite-info"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "convolution" in out

    def test_experiment_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_simulate_gemm(self, capsys):
        assert main(["simulate-gemm", "16", "16", "16"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "kernel cycles" in out

    def test_simulate_gemm_baseline_slower(self, capsys):
        main(["simulate-gemm", "16", "16", "32"])
        full_out = capsys.readouterr().out
        main(["simulate-gemm", "16", "16", "32", "--baseline"])
        base_out = capsys.readouterr().out

        def cycles(text):
            for line in text.splitlines():
                if "kernel cycles" in line:
                    return int(line.split("|")[1].strip())
            raise AssertionError("cycles not found")

        assert cycles(base_out) > cycles(full_out)

    def test_simulate_conv(self, capsys):
        assert main(
            ["simulate-conv", "8", "8", "8", "8", "--kernel", "3", "--padding", "1"]
        ) == 0
        assert "utilization" in capsys.readouterr().out

    def test_simulate_quantized_conv(self, capsys):
        assert main(["simulate-conv", "8", "8", "8", "8", "--quantize"]) == 0
        assert "utilization" in capsys.readouterr().out


class TestWorkloadSpecs:
    def test_gemm_spec(self):
        workload = parse_workload_spec("gemm:64x32x16:t:q")
        assert isinstance(workload, GemmWorkload)
        assert (workload.m, workload.n, workload.k) == (64, 32, 16)
        assert workload.transposed_a and workload.quantize

    def test_conv_spec_with_flags(self):
        workload = parse_workload_spec("conv:16x16x8x32:k5:s2:p2:q")
        assert isinstance(workload, ConvWorkload)
        assert workload.kernel_h == 5 and workload.stride == 2
        assert workload.padding == 2 and workload.quantize

    def test_invalid_specs_rejected(self):
        for bad in ("gemm:64x64", "conv:8x8x8", "fft:64", "gemm:8x8x8:z", "gemm"):
            with pytest.raises(ValueError):
                parse_workload_spec(bad)


class TestBatchAndSweep:
    def test_batch_cold_then_warm(self, tmp_path, capsys):
        argv = [
            "batch",
            "gemm:16x16x16",
            "conv:8x8x8x8:k3:p1",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "miss" in cold and "2 simulated" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "hit" in warm and "0 simulated" in warm and "2 cache hits" in warm

    def test_batch_unknown_backend(self, capsys):
        assert main(["batch", "gemm:8x8x8", "--backend", "bogus", "--no-cache"]) == 2

    def test_batch_baseline_backend(self, capsys):
        assert (
            main(["batch", "gemm:16x16x16", "--backend", "baseline:feather", "--no-cache"])
            == 0
        )
        assert "baseline:feather" in capsys.readouterr().out

    def test_sweep_two_steps(self, capsys):
        argv = [
            "sweep",
            "gemm:16x16x32",
            "--steps",
            "1_baseline,6_full",
            "--no-cache",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1_baseline" in out and "6_full" in out

    def test_sweep_unknown_step(self, capsys):
        assert main(["sweep", "gemm:8x8x8", "--steps", "7_magic", "--no-cache"]) == 2

    def test_sweep_unknown_backend(self, capsys):
        assert main(["sweep", "gemm:8x8x8", "--backend", "bogus", "--no-cache"]) == 2
        assert "unknown backend" in capsys.readouterr().err


class TestSelftest:
    def test_selftest_passes(self, tmp_path, capsys):
        assert main(["selftest", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "selftest ok" in out
        assert "[ok] second run served from cache" in out
