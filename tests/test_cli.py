"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_gemm_arguments(self):
        args = build_parser().parse_args(["simulate-gemm", "16", "16", "16", "--quantize"])
        assert (args.m, args.n, args.k) == (16, 16, 16)
        assert args.quantize and not args.transposed


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_suite_info(self, capsys):
        assert main(["suite-info"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "convolution" in out

    def test_experiment_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_simulate_gemm(self, capsys):
        assert main(["simulate-gemm", "16", "16", "16"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "kernel cycles" in out

    def test_simulate_gemm_baseline_slower(self, capsys):
        main(["simulate-gemm", "16", "16", "32"])
        full_out = capsys.readouterr().out
        main(["simulate-gemm", "16", "16", "32", "--baseline"])
        base_out = capsys.readouterr().out

        def cycles(text):
            for line in text.splitlines():
                if "kernel cycles" in line:
                    return int(line.split("|")[1].strip())
            raise AssertionError("cycles not found")

        assert cycles(base_out) > cycles(full_out)

    def test_simulate_conv(self, capsys):
        assert main(
            ["simulate-conv", "8", "8", "8", "8", "--kernel", "3", "--padding", "1"]
        ) == 0
        assert "utilization" in capsys.readouterr().out

    def test_simulate_quantized_conv(self, capsys):
        assert main(["simulate-conv", "8", "8", "8", "8", "--quantize"]) == 0
        assert "utilization" in capsys.readouterr().out
