"""Tests for workload specifications (GeMM, transposed GeMM, convolution)."""

import pytest

from repro.workloads import (
    ConvWorkload,
    GemmWorkload,
    WorkloadGroup,
    is_convolution,
    is_gemm,
    workload_group,
)


class TestGemmWorkload:
    def test_basic_properties(self):
        workload = GemmWorkload(name="g", m=32, n=48, k=64)
        assert workload.group is WorkloadGroup.GEMM
        assert workload.macs == 32 * 48 * 64
        assert workload.tile_counts(8, 8, 8) == (4, 6, 8)
        assert workload.ideal_compute_cycles(8, 8, 8) == 4 * 6 * 8
        assert workload.padded_shape(8, 8, 8) == (32, 48, 64)

    def test_padding_of_odd_dimensions(self):
        workload = GemmWorkload(name="g", m=13, n=9, k=17)
        assert workload.tile_counts(8, 8, 8) == (2, 2, 3)
        assert workload.padded_shape(8, 8, 8) == (16, 16, 24)

    def test_transposed_group(self):
        workload = GemmWorkload(name="t", m=8, n=8, k=8, transposed_a=True)
        assert workload.group is WorkloadGroup.TRANSPOSED_GEMM
        assert workload_group(workload) is WorkloadGroup.TRANSPOSED_GEMM

    def test_scaled_copy(self):
        workload = GemmWorkload(name="g", m=128, n=128, k=128)
        crop = workload.scaled("g_crop", m=32)
        assert crop.m == 32 and crop.n == 128
        assert workload.m == 128  # original unchanged

    @pytest.mark.parametrize("field", ["m", "n", "k"])
    def test_invalid_dimensions(self, field):
        kwargs = {"name": "bad", "m": 8, "n": 8, "k": 8, field: 0}
        with pytest.raises(ValueError):
            GemmWorkload(**kwargs)

    def test_type_predicates(self):
        gemm = GemmWorkload(name="g", m=8, n=8, k=8)
        assert is_gemm(gemm)
        assert not is_convolution(gemm)


class TestConvWorkload:
    def make(self, **overrides):
        params = dict(
            name="c",
            in_height=16,
            in_width=16,
            in_channels=16,
            out_channels=32,
            kernel_h=3,
            kernel_w=3,
            stride=1,
            padding=1,
        )
        params.update(overrides)
        return ConvWorkload(**params)

    def test_output_shape_same_padding(self):
        conv = self.make()
        assert conv.out_height == 16
        assert conv.out_width == 16
        assert conv.output_pixels == 256

    def test_output_shape_valid_padding(self):
        conv = self.make(padding=0)
        assert conv.out_height == 14
        assert conv.out_width == 14

    def test_output_shape_strided(self):
        conv = self.make(stride=2, padding=1)
        assert conv.out_height == 8
        assert conv.is_strided

    def test_macs(self):
        conv = self.make(padding=0)
        assert conv.macs == 14 * 14 * 32 * 16 * 9

    def test_pointwise_detection(self):
        assert self.make(kernel_h=1, kernel_w=1, padding=0).is_pointwise
        assert not self.make().is_pointwise

    def test_implicit_gemm_view(self):
        conv = self.make(padding=0)
        tiles_m, tiles_n, tiles_k = conv.as_gemm_dims(8, 8, 8)
        assert tiles_m == -(-196 // 8)
        assert tiles_n == 4
        assert tiles_k == 9 * 2
        assert conv.ideal_compute_cycles(8, 8, 8) == tiles_m * tiles_n * tiles_k

    def test_im2col_matrix_shape(self):
        conv = self.make(padding=0)
        assert conv.im2col_matrix_shape() == (196, 9 * 16)

    def test_group(self):
        assert self.make().group is WorkloadGroup.CONVOLUTION
        assert is_convolution(self.make())

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError):
            self.make(in_height=2, in_width=2, kernel_h=3, kernel_w=3, padding=0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"in_channels": 0},
            {"out_channels": -1},
            {"kernel_h": 0},
            {"stride": 0},
            {"padding": -1},
        ],
    )
    def test_invalid_parameters(self, overrides):
        with pytest.raises(ValueError):
            self.make(**overrides)
