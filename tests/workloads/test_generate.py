"""Properties of the seeded workload generator and its shrinker."""

import pytest

from repro.workloads import (
    BUNDLE_FAMILIES,
    FAMILIES,
    ConvWorkload,
    GemmWorkload,
    WorkloadGenerator,
    regression_snippet,
    shrink,
    workload_fits,
    zipf_weights,
)
from repro.workloads.generate import GeneratedCase


class TestGeneratorLegality:
    def test_every_draw_is_legal_and_fits(self, fuzz_seed):
        generator = WorkloadGenerator(seed=fuzz_seed)
        for case in generator.draw_many(60):
            assert case.family in FAMILIES
            for workload in case.workloads:
                # The spec validators ran in the constructor; re-check the
                # scratchpad model the sampler promised to respect.
                assert workload_fits(workload), workload

    def test_same_seed_replays_the_identical_sequence(self, fuzz_seed):
        first = WorkloadGenerator(seed=fuzz_seed).draw_many(25)
        again = WorkloadGenerator(seed=fuzz_seed).draw_many(25)
        assert [c.workloads for c in first] == [c.workloads for c in again]

    def test_different_seeds_diverge(self, fuzz_seed):
        first = WorkloadGenerator(seed=fuzz_seed).draw_many(25)
        other = WorkloadGenerator(seed=fuzz_seed + 1).draw_many(25)
        assert [c.workloads for c in first] != [c.workloads for c in other]

    def test_family_restriction_is_respected(self, fuzz_seed):
        generator = WorkloadGenerator(seed=fuzz_seed, families=("conv",))
        for case in generator.draw_many(10):
            assert case.family == "conv"
            assert all(isinstance(w, ConvWorkload) for w in case.workloads)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown families"):
            WorkloadGenerator(families=("gemm", "nope"))
        with pytest.raises(ValueError, match="unknown family"):
            WorkloadGenerator().draw_case("nope")

    def test_infeasible_limits_fail_loudly(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(max_gemm_m=1)


class TestFamilyShapes:
    def test_decode_is_skinny(self, fuzz_seed):
        generator = WorkloadGenerator(seed=fuzz_seed, families=("decode",))
        for case in generator.draw_many(20):
            (workload,) = case.workloads
            assert 1 <= workload.m <= 4

    def test_prefill_is_token_heavy(self, fuzz_seed):
        generator = WorkloadGenerator(seed=fuzz_seed, families=("prefill",))
        for case in generator.draw_many(20):
            (workload,) = case.workloads
            assert workload.m >= workload.n

    def test_transposed_family_sets_the_flag(self, fuzz_seed):
        generator = WorkloadGenerator(seed=fuzz_seed, families=("transposed_gemm",))
        for case in generator.draw_many(10):
            assert all(w.transposed_a for w in case.workloads)

    def test_ragged_bundle_shares_n_and_k(self, fuzz_seed):
        generator = WorkloadGenerator(seed=fuzz_seed, families=("ragged_gemm",))
        for case in generator.draw_many(10):
            assert len(case.workloads) >= 2
            shapes = {(w.n, w.k) for w in case.workloads}
            assert len(shapes) == 1
            # Ragged means the per-group M values are free to differ.
            assert all(isinstance(w, GemmWorkload) for w in case.workloads)

    def test_moe_bundle_skews_tokens_to_the_hot_expert(self, fuzz_seed):
        generator = WorkloadGenerator(seed=fuzz_seed, families=("moe",))
        for case in generator.draw_many(10):
            tokens = [w.m for w in case.workloads]
            assert len(tokens) >= 2
            assert tokens[0] == max(tokens)  # expert 0 carries the hot load
            assert min(tokens) >= 1  # empty experts are never dispatched

    def test_bundle_families_are_the_multi_workload_ones(self, fuzz_seed):
        generator = WorkloadGenerator(seed=fuzz_seed)
        for family in FAMILIES:
            case = generator.draw_case(family)
            if family in BUNDLE_FAMILIES:
                assert len(case.workloads) >= 2
            else:
                assert len(case.workloads) == 1

    def test_workload_pool_is_distinct(self, fuzz_seed):
        pool = WorkloadGenerator(seed=fuzz_seed).workload_pool(16)
        shapes = {w.scaled("pool") for w in pool}
        assert len(pool) == len(shapes) == 16


class TestGeneratedCase:
    def test_rejects_unknown_family_and_empty_bundles(self):
        workload = GemmWorkload(name="x", m=4, n=4, k=4)
        with pytest.raises(ValueError):
            GeneratedCase(family="nope", seed=0, workloads=(workload,))
        with pytest.raises(ValueError):
            GeneratedCase(family="gemm", seed=0, workloads=())


class TestZipfWeights:
    def test_normalised_and_decreasing(self):
        weights = zipf_weights(8)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert weights == sorted(weights, reverse=True)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestShrinker:
    def test_injected_failure_shrinks_to_the_minimal_case(self):
        """The acceptance-criteria demonstration: inject a known failure
        condition and watch the shrinker walk a large random case down to
        the smallest workload that still satisfies it."""
        predicate = lambda w: isinstance(w, GemmWorkload) and w.k >= 7 and w.m >= 3
        start = GemmWorkload(
            name="injected", m=28, n=19, k=45, transposed_a=True, quantize=True
        )
        minimal = shrink(start, predicate)
        assert (minimal.m, minimal.n, minimal.k) == (3, 1, 7)
        assert not minimal.transposed_a and not minimal.quantize
        # 1-minimality: no single further reduction still reproduces.
        from repro.workloads.generate import _shrink_moves

        assert not any(predicate(move) for move in _shrink_moves(minimal))

    def test_shrinks_convolutions_too(self):
        predicate = lambda w: isinstance(w, ConvWorkload) and w.stride == 2
        start = ConvWorkload(
            name="conv_inj",
            in_height=12,
            in_width=10,
            in_channels=16,
            out_channels=8,
            kernel_h=3,
            kernel_w=3,
            stride=2,
        )
        minimal = shrink(start, predicate)
        assert minimal.stride == 2  # the failure condition survives
        assert minimal.in_height < start.in_height
        assert minimal.in_channels == minimal.out_channels == 1

    def test_rejects_a_passing_starting_point(self):
        workload = GemmWorkload(name="fine", m=8, n=8, k=8)
        with pytest.raises(ValueError, match="failing workload"):
            shrink(workload, lambda w: False)

    def test_every_intermediate_is_legal(self):
        seen = []

        def predicate(w):
            seen.append(w)
            return w.k >= 3

        shrink(GemmWorkload(name="legal", m=16, n=16, k=33), predicate)
        # Constructing each candidate already ran the validators; assert the
        # shrinker never probed a nonsense shape anyway.
        assert all(w.m >= 1 and w.n >= 1 and w.k >= 1 for w in seen)


class TestRegressionSnippet:
    def test_gemm_snippet_is_pasteable_python(self):
        workload = GemmWorkload(
            name="fuzz_case", m=3, n=1, k=7, with_bias=False, quantize=True
        )
        snippet = regression_snippet(workload, seed=99)
        assert "def test_regression_fuzz_case()" in snippet
        assert "REPRO_FUZZ_SEED=99" in snippet
        assert "assert_parity(workload, seed=99)" in snippet
        compile(snippet, "<snippet>", "exec")  # syntactically valid as-is

    def test_conv_snippet_round_trips_the_shape(self):
        workload = ConvWorkload(
            name="fuzz_conv",
            in_height=5,
            in_width=4,
            in_channels=2,
            out_channels=3,
            kernel_h=3,
            kernel_w=3,
            stride=2,
        )
        snippet = regression_snippet(workload)
        namespace = {
            "ConvWorkload": ConvWorkload,
            "assert_parity": lambda w, seed=0: namespace.setdefault("built", w),
        }
        exec(compile(snippet, "<snippet>", "exec"), namespace)
        namespace["test_regression_fuzz_conv"]()
        assert namespace["built"] == workload
