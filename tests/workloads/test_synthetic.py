"""Tests for the synthetic ablation workload suite (paper §IV-B)."""

import pytest

from repro.workloads import (
    FULL_SUITE_COUNTS,
    WorkloadGroup,
    full_suite_total,
    generate_conv_workloads,
    generate_gemm_workloads,
    stratified_subset,
    suite_size,
    synthetic_suite,
)
from repro.workloads.synthetic import _SCRATCHPAD_BUDGET_BYTES


class TestSuiteGeneration:
    def test_full_suite_has_260_workloads(self):
        suite = synthetic_suite()
        assert suite_size(suite) == 260
        assert full_suite_total() == 260
        assert len(suite[WorkloadGroup.GEMM]) == FULL_SUITE_COUNTS[WorkloadGroup.GEMM]
        assert (
            len(suite[WorkloadGroup.TRANSPOSED_GEMM])
            == FULL_SUITE_COUNTS[WorkloadGroup.TRANSPOSED_GEMM]
        )
        assert (
            len(suite[WorkloadGroup.CONVOLUTION])
            == FULL_SUITE_COUNTS[WorkloadGroup.CONVOLUTION]
        )

    def test_generation_is_deterministic(self):
        first = synthetic_suite()
        second = synthetic_suite()
        for group in WorkloadGroup:
            assert [w.name for w in first[group]] == [w.name for w in second[group]]

    def test_workload_names_are_unique(self):
        suite = synthetic_suite()
        names = [w.name for group in suite.values() for w in group]
        assert len(names) == len(set(names))

    def test_groups_are_correctly_tagged(self):
        suite = synthetic_suite()
        for group, workloads in suite.items():
            assert all(w.group is group for w in workloads)

    def test_transposed_workloads_are_transposed(self):
        workloads = generate_gemm_workloads(10, transposed=True)
        assert all(w.transposed_a for w in workloads)

    def test_conv_suite_contains_strided_and_pointwise_layers(self):
        convs = generate_conv_workloads(80)
        assert any(w.is_strided for w in convs)
        assert any(w.is_pointwise for w in convs)
        assert any(w.kernel_h >= 5 for w in convs)

    def test_requesting_more_than_grid_raises(self):
        with pytest.raises(ValueError):
            generate_gemm_workloads(10_000)
        with pytest.raises(ValueError):
            generate_conv_workloads(10_000)

    def test_custom_counts(self):
        suite = synthetic_suite(
            {
                WorkloadGroup.GEMM: 5,
                WorkloadGroup.TRANSPOSED_GEMM: 3,
                WorkloadGroup.CONVOLUTION: 2,
            }
        )
        assert suite_size(suite) == 10


class TestMemoryFootprint:
    def test_gemm_workloads_fit_the_scratchpad_budget(self):
        """Every synthetic GeMM must fit even with the Broadcaster disabled."""
        for workload in generate_gemm_workloads(100):
            footprint = (
                workload.m * workload.k
                + workload.k * workload.n
                + 8 * workload.m * workload.n
                + 4 * workload.n
            )
            assert footprint <= _SCRATCHPAD_BUDGET_BYTES, workload.name

    def test_conv_workloads_fit_the_scratchpad_budget(self):
        for workload in generate_conv_workloads(80):
            weights = (
                workload.kernel_h
                * workload.kernel_w
                * max(workload.in_channels, 8)
                * max(workload.out_channels, 8)
            )
            tiles_m = workload.out_height * -(-workload.out_width // 8)
            tiles_n = -(-workload.out_channels // 8)
            footprint = (
                workload.in_height * (workload.in_width + 8) * max(workload.in_channels, 8)
                + weights
                + 2 * tiles_m * tiles_n * 256
            )
            assert footprint <= _SCRATCHPAD_BUDGET_BYTES, workload.name


class TestStratifiedSubset:
    def test_subset_size(self):
        workloads = generate_gemm_workloads(50)
        subset = stratified_subset(workloads, 10)
        assert len(subset) == 10

    def test_subset_spreads_over_the_grid(self):
        workloads = generate_gemm_workloads(50)
        subset = stratified_subset(workloads, 5)
        indices = [workloads.index(w) for w in subset]
        assert indices == sorted(indices)
        assert indices[0] < 10 and indices[-1] >= 40

    def test_subset_larger_than_population(self):
        workloads = generate_gemm_workloads(5)
        assert stratified_subset(workloads, 50) == workloads

    def test_zero_or_negative_count(self):
        workloads = generate_gemm_workloads(5)
        assert stratified_subset(workloads, 0) == []
        assert stratified_subset(workloads, -3) == []
