"""Tests for the real-world DNN layer tables (Table III networks)."""

import pytest

from repro.workloads import (
    ConvWorkload,
    GemmWorkload,
    benchmark_networks,
    bert_base,
    compute_distribution,
    mobilenet_v2,
    network_by_name,
    resnet18,
    total_layer_instances,
    vgg16,
    vit_base_16,
)


class TestNetworkTables:
    def test_benchmark_networks_cover_table3_plus_mobilenet(self):
        networks = benchmark_networks()
        # Table III's four networks plus the depthwise-heavy DSE scenario.
        assert set(networks) == {
            "ResNet-18",
            "VGG-16",
            "ViT-B-16",
            "BERT-Base",
            "MobileNet-V2",
        }
        assert networks["ResNet-18"].kind == "CNN"
        assert networks["BERT-Base"].kind == "Transformer"
        assert networks["MobileNet-V2"].kind == "CNN"

    def test_network_by_name(self):
        assert network_by_name("VGG-16").name == "VGG-16"
        with pytest.raises(KeyError):
            network_by_name("AlexNet")

    def test_resnet18_structure(self):
        model = resnet18()
        convs = [l for l in model.layers if isinstance(l.workload, ConvWorkload)]
        gemms = [l for l in model.layers if isinstance(l.workload, GemmWorkload)]
        assert len(gemms) == 1  # the classifier
        # 7x7 stem with stride 2 present.
        stem = model.layers[0].workload
        assert stem.kernel_h == 7 and stem.stride == 2
        # ResNet-18 has 20 convolutions (16 block convs + stem + 3 downsample skips).
        assert sum(l.count for l in convs) == 20
        # ~1.8 GMACs for 224x224 inference.
        assert 1.6e9 < model.total_macs < 2.1e9

    def test_vgg16_structure(self):
        model = vgg16()
        assert sum(l.count for l in model.layers) == 16
        # ~15.5 GMACs for 224x224 inference.
        assert 1.4e10 < model.total_macs < 1.6e10

    def test_vit_structure(self):
        model = vit_base_16()
        names = [layer.workload.name for layer in model.layers]
        assert "vit_qkv_proj" in names
        assert "vit_attn_scores" in names
        scores = next(l for l in model.layers if l.workload.name == "vit_attn_scores")
        assert scores.workload.transposed_a
        assert scores.count == 12 * 12
        # ~17 GMACs with 197 tokens.
        assert 1.5e10 < model.total_macs < 2.0e10

    def test_bert_structure(self):
        model = bert_base()
        assert model.name == "BERT-Base"
        ffn = next(l for l in model.layers if l.workload.name == "bert_ffn_fc1")
        assert ffn.workload.n == 3072 and ffn.workload.k == 768
        # ~11 GMACs at sequence length 128.
        assert 0.9e10 < model.total_macs < 1.3e10

    def test_mobilenet_v2_structure(self):
        model = mobilenet_v2()
        assert model.name == "MobileNet-V2"
        # ~300 MMACs at 224x224 — an order of magnitude below ResNet-18.
        assert 2.5e8 < model.total_macs < 3.5e8
        assert model.total_macs < resnet18().total_macs / 5

    def test_mobilenet_v2_is_depthwise_heavy(self):
        model = mobilenet_v2()
        depthwise = [l for l in model.layers if l.workload.name.endswith("_dw3x3")]
        pointwise = [
            l
            for l in model.layers
            if isinstance(l.workload, ConvWorkload) and l.workload.is_pointwise
        ]
        assert len(depthwise) == 17  # one per inverted-residual block
        assert len(pointwise) >= 30  # expand + project pairs + head
        for layer in depthwise:
            # Depthwise = per-channel convolution: no cross-channel reduction.
            assert layer.workload.in_channels == 1
            assert layer.workload.out_channels == 1
            assert layer.count > 1  # repeated once per channel
        # Depthwise layers carry many instances but little of the compute:
        # the reduction-poor, bandwidth-bound regime exploration should cover.
        dw_macs = sum(l.total_macs for l in depthwise)
        assert sum(l.count for l in depthwise) > 5000
        assert dw_macs / model.total_macs < 0.15

    def test_mobilenet_v2_spatial_pyramid(self):
        model = mobilenet_v2()
        stem = model.layers[0].workload
        assert stem.in_height == 224 and stem.stride == 2
        strided = [
            l.workload
            for l in model.layers
            if isinstance(l.workload, ConvWorkload) and l.workload.is_strided
        ]
        assert len(strided) == 5  # stem + four downsampling depthwise stages

    def test_bert_sequence_length_parameter(self):
        short = bert_base(sequence_length=64)
        long = bert_base(sequence_length=256)
        assert long.total_macs > short.total_macs

    def test_total_layer_instances(self):
        model = resnet18()
        assert total_layer_instances(model) == sum(l.count for l in model.layers)

    def test_compute_distribution_sums_to_one(self):
        for model in benchmark_networks().values():
            shares = compute_distribution(model)
            assert sum(share for _, share in shares) == pytest.approx(1.0)

    def test_layer_counts_positive(self):
        with pytest.raises(ValueError):
            from repro.workloads.networks import NetworkLayer

            NetworkLayer(GemmWorkload(name="x", m=8, n=8, k=8), count=0)

    def test_unique_workloads_deduplicates_repeats(self):
        from repro.workloads.networks import NetworkLayer, NetworkModel

        shared = GemmWorkload(name="block_proj", m=16, n=16, k=16)
        other = GemmWorkload(name="head", m=4, n=8, k=16)
        model = NetworkModel(
            name="toy",
            kind="Transformer",
            layers=(
                NetworkLayer(shared, count=2),
                NetworkLayer(other),
                NetworkLayer(shared),  # same spec listed again
            ),
        )
        unique = model.unique_workloads()
        assert unique == [shared, other]  # first-occurrence order, no repeats

    def test_unique_workloads_keeps_distinct_layers_intact(self):
        for model in benchmark_networks().values():
            unique = model.unique_workloads()
            assert len(unique) == len(set(unique))
            # Every layer's workload is still represented.
            assert set(unique) == {layer.workload for layer in model.layers}

    def test_total_macs_sanity_table(self):
        """One table pinning every model's total MACs to its published
        ballpark — a drifted layer table moves the total and fails here."""
        expectations = {
            "ResNet-18": (1.6e9, 2.1e9),
            "VGG-16": (1.4e10, 1.6e10),
            "ViT-B-16": (1.5e10, 2.0e10),
            "BERT-Base": (0.9e10, 1.3e10),
            "MobileNet-V2": (2.5e8, 3.5e8),
        }
        networks = benchmark_networks()
        assert set(expectations) == set(networks)
        for name, (low, high) in expectations.items():
            model = networks[name]
            assert low < model.total_macs < high, (
                f"{name}: total_macs={model.total_macs:.3e} outside "
                f"({low:.1e}, {high:.1e})"
            )
            # The total is exactly the count-weighted layer sum.
            assert model.total_macs == sum(
                layer.workload.macs * layer.count for layer in model.layers
            )
