"""Edge-case tests of the asyncio service core.

Each test drives :class:`SimulationService` inside ``asyncio.run`` (no
pytest-asyncio dependency).  The determinism lever used throughout: calls
to ``submit`` within one coroutine turn are atomic with respect to the
workers, so duplicate bursts coalesce reproducibly, and a
``threading.Event`` gate in the stub backend holds jobs "in flight" for
exactly as long as a test needs.
"""

import asyncio
import threading

import pytest

from repro.runtime import ResultCache, SimJob
from repro.serve import (
    QueueFullError,
    ServiceClosedError,
    ServiceConfig,
    SimulationService,
)
from repro.workloads import GemmWorkload


async def until(predicate, timeout=10.0):
    """Poll ``predicate`` on the loop until true (or fail the test)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never held"
        await asyncio.sleep(0.005)


class TestCoalescing:
    def test_duplicate_burst_single_execution(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)

        async def scenario():
            async with SimulationService(config=ServiceConfig(max_workers=4)) as service:
                # One loop turn, 50 submissions: the burst the acceptance
                # criterion describes.
                tickets = [service.submit(job, client=f"c{i}") for i in range(50)]
                outcomes = [await ticket.outcome() for ticket in tickets]
                return tickets, outcomes, service.stats

        tickets, outcomes, stats = asyncio.run(scenario())
        assert backend.calls == 1
        assert stats.executed == 1
        assert stats.submitted == 50
        assert stats.coalesced == 49
        assert stats.coalescing_hit_rate == pytest.approx(49 / 50)
        # Every caller receives the *identical* outcome object.
        assert all(outcome is outcomes[0] for outcome in outcomes)
        assert tickets[0].coalesced is False
        assert all(ticket.coalesced for ticket in tickets[1:])

    def test_distinct_jobs_do_not_coalesce(self, stub_backend, make_job):
        backend = stub_backend()
        jobs = [make_job(backend.name, tag=i) for i in range(3)]

        async def scenario():
            async with SimulationService() as service:
                return await service.run(jobs)

        outcomes = asyncio.run(scenario())
        assert backend.calls == 3
        assert [o.job_hash for o in outcomes] == [j.job_hash() for j in jobs]

    def test_coalesced_events_emitted(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)

        async def scenario():
            async with SimulationService() as service:
                events = []
                service.add_listener(events.append)
                tickets = [service.submit(job) for _ in range(3)]
                await tickets[-1].outcome()
                return events

        events = asyncio.run(scenario())
        kinds = [event.kind for event in events]
        assert kinds.count("submitted") == 3
        assert kinds.count("coalesced") == 2
        assert kinds.count("started") == 1
        finished = [e for e in events if e.kind == "finished"]
        assert len(finished) == 1 and finished[0].waiters == 3
        # Sequence numbers are the total order.
        assert [e.seq for e in events] == sorted(e.seq for e in events)


class TestBackpressure:
    def test_queue_full_rejection(self, stub_backend, make_job):
        backend = stub_backend()
        jobs = [make_job(backend.name, tag=i) for i in range(3)]
        events = []

        async def scenario():
            config = ServiceConfig(max_workers=1, max_backlog=2)
            async with SimulationService(config=config) as service:
                service.add_listener(events.append)
                # Single turn: no worker has popped yet, so the backlog
                # holds the first two and the third must bounce.
                service.submit(jobs[0])
                service.submit(jobs[1])
                with pytest.raises(QueueFullError) as excinfo:
                    service.submit(jobs[2])
                assert excinfo.value.limit == 2
                assert service.stats.rejected == 1

        asyncio.run(scenario())
        assert "rejected" in [e.kind for e in events]

    def test_duplicates_bypass_the_queue(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)

        async def scenario():
            config = ServiceConfig(max_workers=1, max_backlog=1)
            async with SimulationService(config=config) as service:
                service.submit(job)
                # Backlog is now full, but identical submissions coalesce
                # without needing a queue slot.
                for _ in range(5):
                    service.submit(job)
                assert service.stats.rejected == 0

        asyncio.run(scenario())

    def test_submit_wait_flows_through_small_backlog(self, stub_backend, make_job):
        backend = stub_backend()
        jobs = [make_job(backend.name, tag=i) for i in range(6)]

        async def scenario():
            config = ServiceConfig(max_workers=1, max_backlog=1)
            async with SimulationService(config=config) as service:
                outcomes = await service.run(jobs)
                return outcomes, service.stats.rejected

        outcomes, rejected = asyncio.run(scenario())
        assert len(outcomes) == 6
        assert rejected == 0
        assert backend.calls == 6


class TestFailure:
    def test_crash_surfaces_original_exception_to_all_waiters(
        self, stub_backend, make_job
    ):
        boom = RuntimeError("backend exploded")
        backend = stub_backend(error=boom)
        job = make_job(backend.name)

        async def scenario():
            async with SimulationService() as service:
                events = []
                service.add_listener(events.append)
                tickets = [service.submit(job, client=f"c{i}") for i in range(5)]
                errors = []
                for ticket in tickets:
                    with pytest.raises(RuntimeError) as excinfo:
                        await ticket.outcome()
                    errors.append(excinfo.value)
                return errors, events, service.stats.failed

        errors, events, failed = asyncio.run(scenario())
        assert backend.calls == 1
        assert failed == 1
        # Every coalesced waiter sees the *original* exception object.
        assert all(error is boom for error in errors)
        failed_events = [e for e in events if e.kind == "failed"]
        assert len(failed_events) == 1
        assert failed_events[0].waiters == 5
        assert "backend exploded" in failed_events[0].error

    def test_failure_is_not_cached(self, stub_backend, make_job, tmp_path):
        boom = ValueError("nope")
        backend = stub_backend(error=boom)
        job = make_job(backend.name)
        cache = ResultCache(tmp_path)

        async def scenario():
            async with SimulationService(cache=cache) as service:
                with pytest.raises(ValueError):
                    await (service.submit(job)).outcome()

        asyncio.run(scenario())
        assert len(cache) == 0


class TestCache:
    def test_probe_before_scheduling(self, stub_backend, make_job, tmp_path):
        backend = stub_backend()
        job = make_job(backend.name)
        cache = ResultCache(tmp_path)

        async def warm():
            async with SimulationService(cache=cache) as service:
                await (service.submit(job)).outcome()

        asyncio.run(warm())
        assert backend.calls == 1

        async def served_from_cache():
            async with SimulationService(cache=cache) as service:
                events = []
                service.add_listener(events.append)
                ticket = service.submit(job)
                assert ticket.cache_hit is True
                outcome = await ticket.outcome()
                return outcome, events, service.stats

        outcome, events, stats = asyncio.run(served_from_cache())
        assert backend.calls == 1  # nothing re-simulated
        assert outcome.cache_hit is True
        assert stats.cache_hits == 1 and stats.executed == 0
        kinds = [e.kind for e in events]
        assert kinds == ["submitted", "cache_hit", "finished"]

    def test_fresh_results_written_back(self, stub_backend, make_job, tmp_path):
        backend = stub_backend()
        job = make_job(backend.name)
        cache = ResultCache(tmp_path)

        async def scenario():
            async with SimulationService(cache=cache) as service:
                await (service.submit(job)).outcome()

        asyncio.run(scenario())
        assert job.job_hash() in cache


class TestShutdown:
    def test_drain_completes_inflight_and_queued(self, stub_backend, make_job):
        gate = threading.Event()
        backend = stub_backend(gate=gate)
        jobs = [make_job(backend.name, tag=i) for i in range(3)]

        async def scenario():
            config = ServiceConfig(max_workers=1)
            service = await SimulationService(config=config).start()
            tickets = [service.submit(job) for job in jobs]
            await until(lambda: backend.calls >= 1)  # first job on the worker
            closer = asyncio.ensure_future(service.close(drain=True))
            await asyncio.sleep(0.02)
            assert not closer.done()  # close waits for the gated backend
            gate.set()
            await closer
            outcomes = [await ticket.outcome() for ticket in tickets]
            return outcomes, service.stats

        outcomes, stats = asyncio.run(scenario())
        assert backend.calls == 3  # queued jobs ran to completion too
        assert stats.cancelled == 0
        assert len(outcomes) == 3

    def test_non_draining_close_cancels_queued_but_finishes_running(
        self, stub_backend, make_job
    ):
        gate = threading.Event()
        backend = stub_backend(gate=gate)
        jobs = [make_job(backend.name, tag=i) for i in range(3)]

        async def scenario():
            config = ServiceConfig(max_workers=1)
            service = await SimulationService(config=config).start()
            events = []
            service.add_listener(events.append)
            tickets = [service.submit(job) for job in jobs]
            await until(lambda: backend.calls >= 1)  # job 0 is executing
            closer = asyncio.ensure_future(service.close(drain=False))
            await asyncio.sleep(0.02)
            gate.set()
            await closer
            first = await tickets[0].outcome()  # running job resolved
            cancelled_errors = []
            for ticket in tickets[1:]:
                with pytest.raises(ServiceClosedError):
                    await ticket.outcome()
                cancelled_errors.append(True)
            return first, cancelled_errors, events, service.stats

        first, cancelled, events, stats = asyncio.run(scenario())
        assert backend.calls == 1  # queued jobs never ran
        assert first is not None
        assert len(cancelled) == 2
        assert stats.cancelled == 2
        assert [e.kind for e in events].count("cancelled") == 2

    def test_submit_after_close_raises(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)

        async def scenario():
            service = await SimulationService().start()
            await service.close()
            with pytest.raises(ServiceClosedError):
                service.submit(job)

        asyncio.run(scenario())

    def test_close_idempotent(self):
        async def scenario():
            service = await SimulationService().start()
            await service.close()
            await service.close()
            assert service.closed

        asyncio.run(scenario())


class TestProgress:
    def test_progress_events_stream_from_engine_yield_points(self):
        # A real cycle-level job with a tiny progress cadence: the lockstep
        # loop fires the callback every `progress_interval` cycles.
        job = SimJob(
            workload=GemmWorkload(name="serve_progress", m=16, n=16, k=16),
            engine="lockstep",
        )

        async def scenario():
            config = ServiceConfig(max_workers=1, progress_interval=4)
            async with SimulationService(config=config) as service:
                events = []
                service.add_listener(events.append)
                outcome = await (service.submit(job)).outcome()
                # Let any progress callbacks queued via call_soon_threadsafe
                # land before asserting.
                await asyncio.sleep(0.05)
                return outcome, events

        outcome, events = asyncio.run(scenario())
        progress = [e for e in events if e.kind == "progress"]
        assert progress, "no progress events at a 4-cycle cadence"
        cycles = [e.cycles for e in progress]
        assert cycles == sorted(cycles)
        assert all(c >= 1 for c in cycles)
        assert outcome.functional_match is True


class TestSubscription:
    def test_async_subscription_sees_lifecycle(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)

        async def scenario():
            async with SimulationService() as service:
                subscription = service.subscribe()
                await (service.submit(job)).outcome()
                await service.close()  # ends the stream
                return [event.kind async for event in subscription]

        kinds = asyncio.run(scenario())
        assert kinds[:2] == ["submitted", "queued"]
        assert "started" in kinds and "finished" in kinds


class TestRobustness:
    """Regressions: observers and cache failures must never strand waiters."""

    def test_raising_listener_does_not_break_the_service(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)

        async def scenario():
            async with SimulationService() as service:
                service.add_listener(lambda event: (_ for _ in ()).throw(
                    BrokenPipeError("consumer went away")
                ))
                received = []
                service.add_listener(received.append)
                outcome = await (service.submit(job)).outcome()
                return outcome, received

        outcome, received = asyncio.run(scenario())
        assert outcome is not None
        # The healthy listener behind the raising one still saw everything.
        assert "finished" in [e.kind for e in received]

    def test_cache_write_back_failure_still_resolves_waiters(
        self, stub_backend, make_job, tmp_path
    ):
        backend = stub_backend()
        job = make_job(backend.name)

        class ExplodingCache(ResultCache):
            def put(self, key, outcome):
                raise OSError("disk full")

        cache = ExplodingCache(tmp_path)

        async def scenario():
            async with SimulationService(cache=cache) as service:
                import warnings

                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always")
                    tickets = [service.submit(job) for _ in range(3)]
                    outcomes = [await t.outcome() for t in tickets]
                return outcomes, [str(w.message) for w in caught]

        outcomes, messages = asyncio.run(scenario())
        assert backend.calls == 1
        assert all(o is outcomes[0] for o in outcomes)  # waiters all served
        assert any("write-back failed" in message for message in messages)
