"""Unit tests of the fair bounded admission queue."""

import pytest

from repro.serve import FairQueue, QueueFullError


def drain_order(queue):
    return [item for item, _client, _priority in queue.drain()]


class TestOrdering:
    def test_fifo_within_one_client(self):
        queue = FairQueue(max_backlog=8)
        for item in ("a1", "a2", "a3"):
            queue.push(item, client="a")
        assert drain_order(queue) == ["a1", "a2", "a3"]

    def test_round_robin_across_clients(self):
        queue = FairQueue(max_backlog=8)
        queue.push("a1", client="a")
        queue.push("a2", client="a")
        queue.push("a3", client="a")
        queue.push("b1", client="b")
        # One flooding client cannot starve the other: pops alternate.
        assert drain_order(queue) == ["a1", "b1", "a2", "a3"]

    def test_round_robin_three_ways(self):
        queue = FairQueue(max_backlog=16)
        for index in range(2):
            for client in ("a", "b", "c"):
                queue.push(f"{client}{index}", client=client)
        assert drain_order(queue) == ["a0", "b0", "c0", "a1", "b1", "c1"]

    def test_priority_beats_fairness(self):
        queue = FairQueue(max_backlog=8)
        queue.push("slow", client="a", priority=5)
        queue.push("fast", client="a", priority=0)
        queue.push("mid", client="b", priority=3)
        assert drain_order(queue) == ["fast", "mid", "slow"]

    def test_pop_reports_client_and_priority(self):
        queue = FairQueue(max_backlog=4)
        queue.push("x", client="alice", priority=2)
        assert queue.pop() == ("x", "alice", 2)
        assert queue.pop() is None


class TestBounds:
    def test_service_wide_bound(self):
        queue = FairQueue(max_backlog=2)
        queue.push("a", client="a")
        queue.push("b", client="b")
        with pytest.raises(QueueFullError) as excinfo:
            queue.push("c", client="c")
        error = excinfo.value
        assert error.scope == "service"
        assert (error.backlog, error.limit) == (2, 2)
        assert error.client == "c"

    def test_per_client_bound(self):
        queue = FairQueue(max_backlog=10, max_per_client=1)
        queue.push("a1", client="a")
        queue.push("b1", client="b")  # other clients unaffected
        with pytest.raises(QueueFullError) as excinfo:
            queue.push("a2", client="a")
        assert excinfo.value.scope == "client"
        assert excinfo.value.client == "a"

    def test_pop_frees_capacity(self):
        queue = FairQueue(max_backlog=1)
        queue.push("a", client="a")
        queue.pop()
        queue.push("b", client="a")  # no raise
        assert len(queue) == 1

    def test_client_backlog_accounting(self):
        queue = FairQueue(max_backlog=8)
        queue.push("a1", client="a")
        queue.push("a2", client="a")
        queue.push("b1", client="b")
        assert queue.client_backlog("a") == 2
        assert queue.client_backlog("b") == 1
        assert queue.client_backlog("ghost") == 0
        queue.drain()
        assert queue.client_backlog("a") == 0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            FairQueue(max_backlog=0)
        with pytest.raises(ValueError):
            FairQueue(max_backlog=4, max_per_client=0)
