"""Shared fixtures of the service test suite.

The service tests need backends whose behaviour they control exactly —
counting executions, blocking until released, raising on demand — so the
suite registers throwaway :class:`SimulationBackend` stubs (unique name
per test) instead of monkeypatching the real cycle simulator.
"""

import itertools
import threading

import pytest

from repro.runtime import SimJob, SimOutcome, register_backend
from repro.runtime.backends import SimulationBackend
from repro.workloads import GemmWorkload

_COUNTER = itertools.count()


class StubBackend(SimulationBackend):
    """Controllable backend: counts calls, optionally blocks or raises.

    ``gate`` (a ``threading.Event``) makes every execution wait until the
    test releases it — the deterministic way to hold jobs "in flight".
    ``error`` makes executions raise that exception instance.
    """

    def __init__(self, name, gate=None, error=None):
        self.name = name
        self.gate = gate
        self.error = error
        self.calls = 0
        self._lock = threading.Lock()

    def execute(self, job):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(timeout=10), "test gate never released"
        if self.error is not None:
            raise self.error
        ideal = job.workload.ideal_compute_cycles(
            job.design.gemm_mu, job.design.gemm_nu, job.design.gemm_ku
        )
        return SimOutcome.analytic(job, utilization=0.5, ideal_compute_cycles=ideal)


@pytest.fixture
def stub_backend():
    """Factory registering a uniquely named :class:`StubBackend`."""

    def make(gate=None, error=None):
        backend = StubBackend(f"serve-stub-{next(_COUNTER)}", gate=gate, error=error)
        register_backend(backend)
        return backend

    return make


@pytest.fixture
def make_job():
    """Factory for small distinct jobs against a given backend."""

    def make(backend_name, tag=0, m=8):
        return SimJob(
            workload=GemmWorkload(name=f"serve_{tag}", m=m, n=8, k=8),
            backend=backend_name,
            seed=tag,
        )

    return make
