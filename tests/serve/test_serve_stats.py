"""Structured service stats: the latency histogram and ``snapshot()``."""

import asyncio

import pytest

from repro.serve import (
    LatencyHistogram,
    ServiceConfig,
    ServiceClient,
    SimulationService,
)
from repro.serve.service import LATENCY_BUCKETS


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_observations_land_in_cumulative_buckets(self):
        histogram = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        histogram.observe(0.005)  # <= 0.01
        histogram.observe(0.05)  # <= 0.1
        histogram.observe(0.5)  # <= 1.0
        histogram.observe(5.0)  # overflow
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.mean == pytest.approx((0.005 + 0.05 + 0.5 + 5.0) / 4)

    def test_quantile_interpolates_within_bucket(self):
        histogram = LatencyHistogram(bounds=(1.0, 2.0))
        for _ in range(10):
            histogram.observe(1.5)  # all in the (1.0, 2.0] bucket
        p50 = histogram.quantile(0.5)
        assert 1.0 <= p50 <= 2.0

    def test_quantile_overflow_clamps_to_last_bound(self):
        histogram = LatencyHistogram(bounds=(0.5, 1.0))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 1.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_value_equality(self):
        first, second = LatencyHistogram(), LatencyHistogram()
        assert first == second
        first.observe(0.2)
        assert first != second
        second.observe(0.2)
        assert first == second

    def test_as_dict_shape(self):
        histogram = LatencyHistogram()
        histogram.observe(0.02)
        summary = histogram.as_dict()
        assert summary["count"] == 1
        assert summary["mean_seconds"] == pytest.approx(0.02)
        assert set(summary) >= {"p50_seconds", "p90_seconds", "p99_seconds"}
        # One bucket row per bound plus the open-ended overflow row.
        assert len(summary["buckets"]) == len(LATENCY_BUCKETS) + 1
        assert summary["buckets"][-1]["le"] is None


class TestServiceSnapshot:
    def test_snapshot_counts_and_latency(self, stub_backend, make_job):
        backend = stub_backend()
        jobs = [make_job(backend.name, tag=i) for i in range(4)]

        async def scenario():
            async with SimulationService(
                config=ServiceConfig(max_workers=2)
            ) as service:
                tickets = [service.submit(job) for job in jobs]
                duplicate = service.submit(jobs[0])
                for ticket in tickets + [duplicate]:
                    await ticket.outcome()
                return service.snapshot()

        snapshot = asyncio.run(scenario())
        assert snapshot["queue_depth"] == 0
        assert snapshot["inflight"] == 0
        assert snapshot["submitted"] == 5
        assert snapshot["executed"] == 4
        assert snapshot["coalesced"] == 1
        # Four completions → four latency observations.
        assert snapshot["latency"]["count"] == 4
        assert snapshot["latency"]["mean_seconds"] > 0
        # Every execution is attributed to a worker slot.
        assert sum(snapshot["per_worker_executed"].values()) == 4
        assert all(index in (0, 1) for index in snapshot["per_worker_executed"])

    def test_client_snapshot_readable_after_close(self, stub_backend, make_job):
        backend = stub_backend()
        client = ServiceClient(config=ServiceConfig(max_workers=1))
        try:
            client.run([make_job(backend.name, tag=i) for i in range(3)])
            live = client.snapshot()
            assert live["executed"] == 3
        finally:
            client.close()
        after = client.snapshot()
        assert after["executed"] == 3
        assert after["latency"]["count"] == 3


class TestStatsRegistryBacking:
    """ServiceStats counters live on an obs registry; the `+=` idiom and
    plain-int reads are unchanged, and every count is scrapeable."""

    def test_counters_visible_through_registry(self, stub_backend, make_job):
        backend = stub_backend()
        client = ServiceClient(config=ServiceConfig(max_workers=1))
        try:
            job = make_job(backend.name)
            client.run([job, job])  # second submission coalesces
        finally:
            client.close()
        stats = client.service.stats
        assert isinstance(stats.executed, int)
        assert stats.executed == 1
        assert stats.coalesced == 1
        families = {f.name: f for f in client.service.metrics.collect()}
        assert families["repro_executed_total"].samples[0].value == 1
        assert families["repro_coalesced_total"].samples[0].value == 1
        assert "repro_latency_seconds" in families
        workers = families["repro_worker_executed_total"].samples
        assert sum(s.value for s in workers) == 1

    def test_parallel_services_do_not_share_counters(self, stub_backend, make_job):
        backend = stub_backend()
        first = ServiceClient(config=ServiceConfig(max_workers=1))
        second = ServiceClient(config=ServiceConfig(max_workers=1))
        try:
            first.run([make_job(backend.name, tag=1)])
        finally:
            first.close()
            second.close()
        assert first.service.stats.executed == 1
        assert second.service.stats.executed == 0

    def test_snapshot_carries_macro_and_cache_sections(
        self, tmp_path, stub_backend, make_job
    ):
        backend = stub_backend()
        client = ServiceClient(
            cache_dir=tmp_path / "cache", config=ServiceConfig(max_workers=1)
        )
        try:
            client.run([make_job(backend.name)])
            snapshot = client.snapshot()
        finally:
            client.close()
        assert snapshot["macro"] == {"jumps": 0, "cycles_skipped": 0}
        cache = snapshot["cache"]
        assert cache["entries"] == 1  # the executed outcome was written back
        assert cache["misses"] == 1  # the admission probe missed

    def test_cacheless_snapshot_has_null_cache(self, stub_backend, make_job):
        backend = stub_backend()
        client = ServiceClient(cache_dir=None, config=ServiceConfig(max_workers=1))
        try:
            client.run([make_job(backend.name)])
            snapshot = client.snapshot()
        finally:
            client.close()
        assert snapshot["cache"] is None
