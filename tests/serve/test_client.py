"""Sync facade and runtime-integration tests.

Covers the :class:`ServiceClient` blocking API and the three rewired
runtime surfaces — ``Simulator(service=...)``, ``BatchRunner(service=...)``
and ``ExplorationEngine(service=...)`` — including the acceptance
criterion: a burst of 50 concurrent submissions of the same job performs
exactly one backend simulation and every caller receives the identical
outcome.
"""

import threading

import pytest

from repro.runtime import BatchRunner, ResultCache, SimJob, Simulator
from repro.serve import QueueFullError, ServiceClient, ServiceConfig
from repro.workloads import GemmWorkload


class TestClientBasics:
    def test_fifty_submission_burst_single_simulation(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)
        with ServiceClient(config=ServiceConfig(max_workers=4)) as client:
            outcomes = client.run([job] * 50)
            stats = client.stats()
        assert backend.calls == 1
        assert stats["executed"] == 1
        assert stats["submitted"] == 50
        assert stats["coalesced"] == 49
        assert len(outcomes) == 50
        assert all(outcome is outcomes[0] for outcome in outcomes)

    def test_submit_ticket_and_result(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)
        with ServiceClient() as client:
            ticket = client.submit(job, client_name="alice")
            outcome = client.result(ticket, timeout=30)
        assert ticket.job_hash == job.job_hash()
        assert ticket.client == "alice"
        assert outcome.job_hash == job.job_hash()
        assert backend.calls == 1

    def test_queue_full_surfaces_through_sync_submit(self, stub_backend, make_job):
        gate = threading.Event()
        backend = stub_backend(gate=gate)
        jobs = [make_job(backend.name, tag=i) for i in range(4)]
        config = ServiceConfig(max_workers=1, max_backlog=1)
        client = ServiceClient(config=config)
        try:
            tickets = [client.submit(jobs[0])]  # picked up by the worker
            # Wait until the worker actually holds job 0 so the backlog
            # state is deterministic.
            deadline = threading.Event()
            for _ in range(200):
                if backend.calls >= 1:
                    break
                deadline.wait(0.01)
            assert backend.calls >= 1
            tickets.append(client.submit(jobs[1]))  # fills the backlog
            with pytest.raises(QueueFullError):
                client.submit(jobs[2])
        finally:
            gate.set()
            client.close()
        assert [t.result(30).job_hash for t in tickets] == [
            jobs[0].job_hash(),
            jobs[1].job_hash(),
        ]

    def test_backend_failure_propagates(self, stub_backend, make_job):
        boom = RuntimeError("kapow")
        backend = stub_backend(error=boom)
        job = make_job(backend.name)
        with ServiceClient() as client:
            ticket = client.submit(job)
            with pytest.raises(RuntimeError, match="kapow"):
                ticket.result(30)

    def test_events_and_stats_readable_after_close(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)
        client = ServiceClient()
        client.run([job, job])
        client.close()
        kinds = [event.kind for event in client.events()]
        assert "finished" in kinds and "coalesced" in kinds
        assert client.stats()["submitted"] == 2
        assert client.describe()["stats"]["executed"] == 1

    def test_on_event_streaming_callback(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)
        streamed = []
        with ServiceClient(on_event=streamed.append) as client:
            client.run([job])
        assert [e.kind for e in streamed[:2]] == ["submitted", "queued"]

    def test_cache_dir_convenience(self, stub_backend, make_job, tmp_path):
        backend = stub_backend()
        job = make_job(backend.name)
        with ServiceClient(cache_dir=tmp_path) as client:
            client.run([job])
        with ServiceClient(cache_dir=tmp_path) as client:
            ticket = client.submit(job)
            assert ticket.cache_hit is True
            ticket.result(30)
        assert backend.calls == 1


class TestRuntimeIntegration:
    def test_simulator_simulate_many_via_service_matches_direct(
        self, stub_backend, make_job
    ):
        backend = stub_backend()
        jobs = [make_job(backend.name, tag=i) for i in range(3)] + [
            make_job(backend.name, tag=1)  # in-batch duplicate
        ]
        direct = Simulator().simulate_many(jobs)
        with ServiceClient() as client:
            routed = Simulator(service=client).simulate_many(jobs)
        assert [o.as_dict() for o in routed] == [o.as_dict() for o in direct]
        # 3 unique jobs executed twice (once per path): dedup still works.
        assert backend.calls == 6

    def test_simulator_single_simulate_via_service(self, stub_backend, make_job):
        backend = stub_backend()
        job = make_job(backend.name)
        with ServiceClient() as client:
            simulator = Simulator(service=client)
            outcome = simulator.simulate(job)
        assert outcome.job_hash == job.job_hash()
        assert simulator.stats.executed == 1
        assert backend.calls == 1

    def test_batch_runner_service_respects_local_cache_screening(
        self, stub_backend, make_job, tmp_path
    ):
        backend = stub_backend()
        jobs = [make_job(backend.name, tag=i) for i in range(2)]
        cache = ResultCache(tmp_path)
        with ServiceClient() as client:
            runner = BatchRunner(cache=cache, service=client)
            first = runner.run(jobs)
            second = runner.run(jobs)  # all hits: the service never sees them
        assert backend.calls == 2
        assert runner.stats.cache_hits == 2
        assert runner.stats.executed == 2
        assert [o.job_hash for o in second] == [o.job_hash for o in first]
        assert client.stats()["submitted"] == 2

    def test_batches_larger_than_backlog_flow_through(self, stub_backend, make_job):
        backend = stub_backend()
        jobs = [make_job(backend.name, tag=i) for i in range(12)]
        config = ServiceConfig(max_workers=2, max_backlog=2)
        with ServiceClient(config=config) as client:
            outcomes = Simulator(service=client).simulate_many(jobs)
            stats = client.stats()
        assert len(outcomes) == 12
        assert stats["rejected"] == 0  # cooperative backpressure, no bounces
        assert backend.calls == 12

    def test_exploration_engine_through_service(self, tmp_path):
        from repro.explore import (
            ExplorationEngine,
            GridStrategy,
            ParameterAxis,
            SearchSpace,
            parse_objectives,
        )

        space = SearchSpace(
            axes=(ParameterAxis.make("data_fifo_depth", (2, 4)),),
            name="serve_test",
        )
        workloads = [GemmWorkload(name="serve_explore", m=8, n=8, k=8)]

        def build(service=None, simulator=None):
            return ExplorationEngine(
                space=space,
                strategy=GridStrategy(),
                objectives=parse_objectives("cycles"),
                workloads=workloads,
                simulator=simulator,
                service=service,
            )

        direct = build(simulator=Simulator()).run(budget=2)
        with ServiceClient() as client:
            routed = build(service=client).run(budget=2)
            stats = client.stats()
        assert stats["executed"] == 2
        assert [e.metrics for e in routed.evaluations] == [
            e.metrics for e in direct.evaluations
        ]

    def test_exploration_engine_rejects_both_simulator_and_service(self):
        from repro.explore import (
            ExplorationEngine,
            GridStrategy,
            ParameterAxis,
            SearchSpace,
        )

        space = SearchSpace(axes=(ParameterAxis.make("num_banks", (32,)),))
        with pytest.raises(ValueError, match="not both"):
            ExplorationEngine(
                space=space,
                strategy=GridStrategy(),
                simulator=Simulator(),
                service=object(),
            )


class TestClientClosedAndAccounting:
    def test_submit_and_run_after_close_raise_typed_error(
        self, stub_backend, make_job
    ):
        from repro.serve import ServiceClosedError

        backend = stub_backend()
        job = make_job(backend.name)
        client = ServiceClient()
        client.close()
        with pytest.raises(ServiceClosedError):
            client.submit(job)
        with pytest.raises(ServiceClosedError):
            client.run([job])

    def test_service_cache_hits_not_counted_as_executed(
        self, stub_backend, make_job, tmp_path
    ):
        backend = stub_backend()
        jobs = [make_job(backend.name, tag=i) for i in range(2)]
        # Warm the *service's* cache through a first client.
        with ServiceClient(cache_dir=tmp_path) as client:
            client.run(jobs)
        assert backend.calls == 2
        # A fresh runner with no local cache: everything resolves from the
        # service cache, so its stats must say "served", not "executed".
        with ServiceClient(cache_dir=tmp_path) as client:
            runner = BatchRunner(service=client)
            outcomes = runner.run(jobs)
        assert backend.calls == 2  # nothing re-simulated
        assert runner.stats.executed == 0
        assert runner.stats.service_cache_hits == 2
        assert all(outcome.cache_hit for outcome in outcomes)

    def test_simulator_counts_service_hits_separately(
        self, stub_backend, make_job, tmp_path
    ):
        backend = stub_backend()
        job = make_job(backend.name)
        with ServiceClient(cache_dir=tmp_path) as client:
            Simulator(service=client).simulate(job)
        with ServiceClient(cache_dir=tmp_path) as client:
            simulator = Simulator(service=client)
            outcome = simulator.simulate(job)
        assert backend.calls == 1
        assert outcome.cache_hit
        assert simulator.stats.executed == 0
        assert simulator.stats.service_cache_hits == 1
