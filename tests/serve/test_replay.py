"""Arrival-trace replay: processes, traces, and the measuring driver."""

import random

import pytest

from repro.runtime import SimJob
from repro.serve import ServiceClient, ServiceConfig
from repro.serve.replay import (
    REGIMES,
    ReplayReport,
    TraceEvent,
    _burst_arrivals,
    _diurnal_arrivals,
    _poisson_arrivals,
    _zipf_keys,
    build_trace,
    default_pool,
    load_trace,
    replay_trace,
    save_trace,
)
from repro.workloads import ConvWorkload, GemmWorkload


class TestArrivalProcesses:
    @pytest.mark.parametrize(
        "process", [_poisson_arrivals, _diurnal_arrivals, _burst_arrivals]
    )
    def test_count_and_monotonicity(self, process, fuzz_seed):
        rng = random.Random(fuzz_seed)
        times = process(rng, 200, rate=500.0)
        assert len(times) == 200
        assert all(t >= 0 for t in times)
        assert times == sorted(times)

    def test_burst_arrivals_clump(self, fuzz_seed):
        """Correlated bursts: many consecutive gaps far below the mean gap."""
        rng = random.Random(fuzz_seed)
        times = _burst_arrivals(rng, 400, rate=100.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        tiny = sum(1 for gap in gaps if gap < mean_gap / 10)
        assert tiny > len(gaps) / 3

    def test_zipf_keys_concentrate_on_the_head(self, fuzz_seed):
        rng = random.Random(fuzz_seed)
        keys = _zipf_keys(rng, 1000, pool_size=32)
        head_share = sum(1 for key in keys if key < 4) / len(keys)
        assert head_share > 0.5  # the top 4 of 32 keys dominate


class TestRegimes:
    def test_at_least_four_documented_regimes(self):
        assert len(REGIMES) >= 4
        assert {"poisson", "diurnal", "bursty", "hotkey"} <= set(REGIMES)
        for regime in REGIMES.values():
            assert regime.description

    def test_build_trace_validates_inputs(self):
        pool = [GemmWorkload(name="p", m=4, n=4, k=4)]
        with pytest.raises(ValueError, match="unknown regime"):
            build_trace("tsunami", 10, 100.0, pool)
        with pytest.raises(ValueError, match="requests"):
            build_trace("poisson", 0, 100.0, pool)
        with pytest.raises(ValueError, match="rate"):
            build_trace("poisson", 10, 0.0, pool)
        with pytest.raises(ValueError, match="pool"):
            build_trace("poisson", 10, 100.0, [])

    def test_build_trace_is_seed_deterministic(self, fuzz_seed):
        pool = default_pool(6, seed=fuzz_seed)
        first = build_trace("hotkey", 50, 300.0, pool, seed=fuzz_seed)
        again = build_trace("hotkey", 50, 300.0, pool, seed=fuzz_seed)
        assert first == again

    def test_default_pool_is_small_and_distinct(self, fuzz_seed):
        pool = default_pool(12, seed=fuzz_seed)
        assert len(pool) == 12
        assert len({w.scaled("key") for w in pool}) == 12


class TestTraceRoundTrip:
    def test_jsonl_round_trip_preserves_everything(self, tmp_path, fuzz_seed):
        pool = [
            GemmWorkload(name="g", m=4, n=5, k=6, transposed_a=True, quantize=True),
            ConvWorkload(
                name="c",
                in_height=6,
                in_width=5,
                in_channels=3,
                out_channels=4,
                stride=2,
                padding=1,
                with_bias=False,
            ),
        ]
        trace = build_trace("bursty", 20, 200.0, pool, seed=fuzz_seed)
        path = tmp_path / "trace.jsonl"
        save_trace(path, trace)
        assert load_trace(path) == trace

    def test_bad_records_name_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"at": 0.0, "workload": {"kind": "gemm", "name": "ok", '
            '"m": 2, "n": 2, "k": 2}}\n'
            '{"at": 0.1, "workload": {"kind": "tensor", "name": "bad"}}\n',
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(path)

    def test_negative_arrival_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TraceEvent(at=-0.5, workload=GemmWorkload(name="x", m=2, n=2, k=2))


class TestReplayDriver:
    def _client(self, stub_backend):
        backend = stub_backend()
        return backend, ServiceClient(config=ServiceConfig(max_workers=2))

    def test_replay_measures_a_trace(self, stub_backend, fuzz_seed):
        backend, client = self._client(stub_backend)
        pool = [GemmWorkload(name=f"w{i}", m=4 + i, n=4, k=4) for i in range(4)]
        trace = build_trace("poisson", 30, 2000.0, pool, seed=fuzz_seed)
        with client:
            report = replay_trace(
                client, trace, regime="poisson", backend=backend.name, timeout=60.0
            )
        assert isinstance(report, ReplayReport)
        assert report.requests == 30
        assert report.submitted == 30
        assert report.failed == 0
        assert report.pool_size == 4
        assert report.latency_p50_ms <= report.latency_p99_ms
        assert report.throughput_rps > 0
        # Counter consistency: every submission was coalesced, cached, or
        # executed (the stub's service has no cache, so no cache hits).
        assert report.coalesced + report.executed == report.submitted
        assert report.avoided_fraction == pytest.approx(
            report.coalesce_rate, abs=1e-9
        )

    def test_hotkey_skew_avoids_most_executions(self, stub_backend, tmp_path, fuzz_seed):
        """Zipf skew + cache + coalescing: most submissions never reach the
        backend — the property the BENCH regimes section enforces."""
        backend = stub_backend()
        pool = [GemmWorkload(name=f"hot{i}", m=4 + i, n=4, k=4) for i in range(16)]
        trace = build_trace("hotkey", 120, 4000.0, pool, seed=fuzz_seed)
        with ServiceClient(
            cache_dir=tmp_path, config=ServiceConfig(max_workers=2)
        ) as client:
            report = replay_trace(
                client, trace, regime="hotkey", backend=backend.name, timeout=60.0
            )
        assert report.executed == backend.calls
        assert report.executed <= len(pool)
        assert report.avoided_fraction >= 0.5
        assert report.coalesce_rate + report.cache_hit_rate > 0

    def test_summary_line_and_dict_agree(self, stub_backend, fuzz_seed):
        backend, client = self._client(stub_backend)
        pool = [GemmWorkload(name="only", m=4, n=4, k=4)]
        trace = build_trace("poisson", 5, 5000.0, pool, seed=fuzz_seed)
        with client:
            report = replay_trace(
                client, trace, regime="poisson", backend=backend.name, timeout=60.0
            )
        payload = report.as_dict()
        assert payload["regime"] == "poisson"
        assert payload["requests"] == 5
        assert "regime=poisson" in report.summary_line()
        assert f"requests={payload['requests']}" in report.summary_line()

    def test_rejects_empty_trace_and_bad_scale(self, stub_backend):
        backend, client = self._client(stub_backend)
        with client:
            with pytest.raises(ValueError, match="empty trace"):
                replay_trace(client, [])
            trace = [
                TraceEvent(at=0.0, workload=GemmWorkload(name="x", m=2, n=2, k=2))
            ]
            with pytest.raises(ValueError, match="time_scale"):
                replay_trace(client, trace, time_scale=0.0)

    def test_failed_jobs_are_counted_not_raised(self, stub_backend, fuzz_seed):
        backend = stub_backend(error=RuntimeError("backend exploded"))
        pool = [GemmWorkload(name=f"f{i}", m=3 + i, n=3, k=3) for i in range(3)]
        trace = build_trace("poisson", 6, 5000.0, pool, seed=fuzz_seed)
        with ServiceClient(config=ServiceConfig(max_workers=2)) as client:
            report = replay_trace(
                client, trace, regime="poisson", backend=backend.name, timeout=60.0
            )
        assert report.failed >= 1
        assert report.requests == 6


class TestTicketCallbacks:
    def test_callback_fires_after_completion(self, stub_backend):
        backend = stub_backend()
        fired = []
        with ServiceClient(config=ServiceConfig(max_workers=1)) as client:
            job = SimJob(
                workload=GemmWorkload(name="cb", m=4, n=4, k=4),
                backend=backend.name,
            )
            ticket = client.submit(job, client_name="cb")
            ticket.add_done_callback(fired.append)
            ticket.result(timeout=30.0)
        assert fired and fired[0] is ticket

    def test_callback_fires_immediately_when_already_done(self, stub_backend):
        backend = stub_backend()
        fired = []
        with ServiceClient(config=ServiceConfig(max_workers=1)) as client:
            job = SimJob(
                workload=GemmWorkload(name="late", m=4, n=4, k=4),
                backend=backend.name,
            )
            ticket = client.submit(job, client_name="cb")
            ticket.result(timeout=30.0)
            ticket.add_done_callback(fired.append)
        assert fired and fired[0] is ticket
