"""Repo-wide test fixtures.

``fuzz_seed`` is the single source of randomness for every randomised test
(the parity fuzz suite, the replay soak, the generator properties).  It
resolves ``$REPRO_FUZZ_SEED`` through the typed config and prints the value,
so a failing CI run shows exactly which seed to export locally:

    REPRO_FUZZ_SEED=1234 python -m pytest tests/engine/test_parity_fuzz.py
"""

import pytest

from repro.config import get_config

ENV_HINT = "REPRO_FUZZ_SEED"


@pytest.fixture
def fuzz_seed(request):
    """The base seed of this test's randomness, reproducible via one env var.

    The value is printed (pytest surfaces captured stdout on failure), so
    every failing randomised test names its exact reproduction command.
    """
    seed = get_config().fuzz_seed
    print(f"\n[fuzz] {request.node.nodeid}: rerun with {ENV_HINT}={seed}")
    return seed
