"""Tests for addressing modes, decode/encode and the bit-permutation remap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    AddressingMode,
    BankGeometry,
    decode_address,
    decode_address_bit_permutation,
    encode_location,
    group_size_for_mode,
    mode_for_group_size,
    normalize_group_size,
    permutation_spec,
    permute_word_index,
)

GEOMETRY = BankGeometry(num_banks=16, bank_width_bytes=8, bank_depth=32)


class TestBankGeometry:
    def test_capacity(self):
        assert GEOMETRY.capacity_bytes == 16 * 8 * 32
        assert GEOMETRY.total_words == 16 * 32

    def test_contains(self):
        assert GEOMETRY.contains(0)
        assert GEOMETRY.contains(GEOMETRY.capacity_bytes - 1)
        assert not GEOMETRY.contains(GEOMETRY.capacity_bytes)
        assert not GEOMETRY.contains(-1)

    @pytest.mark.parametrize("kwargs", [
        {"num_banks": 0, "bank_width_bytes": 8, "bank_depth": 32},
        {"num_banks": 16, "bank_width_bytes": 0, "bank_depth": 32},
        {"num_banks": 16, "bank_width_bytes": 8, "bank_depth": 0},
    ])
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BankGeometry(**kwargs)


class TestModeClassification:
    def test_full_interleave(self):
        assert mode_for_group_size(GEOMETRY, 16) is AddressingMode.FULLY_INTERLEAVED

    def test_non_interleave(self):
        assert mode_for_group_size(GEOMETRY, 1) is AddressingMode.NON_INTERLEAVED

    def test_grouped(self):
        assert mode_for_group_size(GEOMETRY, 4) is AddressingMode.GROUPED_INTERLEAVED

    def test_group_size_for_mode(self):
        assert group_size_for_mode(GEOMETRY, AddressingMode.FULLY_INTERLEAVED) == 16
        assert group_size_for_mode(GEOMETRY, AddressingMode.NON_INTERLEAVED) == 1
        assert group_size_for_mode(
            GEOMETRY, AddressingMode.GROUPED_INTERLEAVED, gima_group_size=8
        ) == 8

    def test_gima_requires_group_size(self):
        with pytest.raises(ValueError):
            group_size_for_mode(GEOMETRY, AddressingMode.GROUPED_INTERLEAVED)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            normalize_group_size(GEOMETRY, 3)
        with pytest.raises(ValueError):
            normalize_group_size(GEOMETRY, 0)


class TestDecode:
    def test_fima_consecutive_words_round_robin(self):
        banks = [
            decode_address(word * 8, GEOMETRY, 16).bank for word in range(20)
        ]
        assert banks[:16] == list(range(16))
        assert banks[16:20] == [0, 1, 2, 3]

    def test_nima_fills_one_bank_first(self):
        locations = [decode_address(word * 8, GEOMETRY, 1) for word in range(40)]
        assert all(loc.bank == 0 for loc in locations[:32])
        assert all(loc.bank == 1 for loc in locations[32:40])
        assert [loc.line for loc in locations[:4]] == [0, 1, 2, 3]

    def test_gima_interleaves_within_group(self):
        # Group of 4 banks: first 4*depth words stay in banks 0-3.
        locations = [decode_address(word * 8, GEOMETRY, 4) for word in range(4 * 32 + 4)]
        first_group = locations[: 4 * 32]
        assert {loc.bank for loc in first_group} == {0, 1, 2, 3}
        assert [loc.bank for loc in locations[:8]] == [0, 1, 2, 3, 0, 1, 2, 3]
        # The next group starts at bank 4.
        assert locations[4 * 32].bank == 4

    def test_byte_offset(self):
        loc = decode_address(13, GEOMETRY, 16)
        assert loc.byte_offset == 5
        assert loc.bank == 1

    def test_out_of_range_address_raises(self):
        with pytest.raises(ValueError):
            decode_address(GEOMETRY.capacity_bytes, GEOMETRY, 16)
        with pytest.raises(ValueError):
            decode_address(-8, GEOMETRY, 16)


group_sizes = st.sampled_from([1, 2, 4, 8, 16])
addresses = st.integers(min_value=0, max_value=GEOMETRY.capacity_bytes - 1)


class TestDecodeProperties:
    @given(address=addresses, group_size=group_sizes)
    @settings(max_examples=200, deadline=None)
    def test_decode_encode_roundtrip(self, address, group_size):
        location = decode_address(address, GEOMETRY, group_size)
        assert encode_location(location, GEOMETRY, group_size) == address

    @given(address=addresses, group_size=group_sizes)
    @settings(max_examples=200, deadline=None)
    def test_decode_stays_in_range(self, address, group_size):
        location = decode_address(address, GEOMETRY, group_size)
        assert 0 <= location.bank < GEOMETRY.num_banks
        assert 0 <= location.line < GEOMETRY.bank_depth
        assert 0 <= location.byte_offset < GEOMETRY.bank_width_bytes

    @given(group_size=group_sizes)
    @settings(max_examples=10, deadline=None)
    def test_decode_is_a_bijection_over_words(self, group_size):
        seen = set()
        for word in range(GEOMETRY.total_words):
            loc = decode_address(word * 8, GEOMETRY, group_size)
            seen.add((loc.bank, loc.line))
        assert len(seen) == GEOMETRY.total_words

    @given(address=addresses, group_size=group_sizes)
    @settings(max_examples=200, deadline=None)
    def test_bit_permutation_matches_arithmetic_decode(self, address, group_size):
        """Hardware remapper (Fig. 5(e)) equals the arithmetic formulation."""
        arithmetic = decode_address(address, GEOMETRY, group_size)
        permuted = decode_address_bit_permutation(address, GEOMETRY, group_size)
        assert arithmetic == permuted


class TestPermutationSpec:
    def test_fima_is_identity(self):
        spec = permutation_spec(GEOMETRY, 16)
        assert spec == list(range(len(spec)))
        assert permute_word_index(0b101101, spec) == 0b101101

    def test_spec_is_a_permutation(self):
        for group_size in (1, 2, 4, 8, 16):
            spec = permutation_spec(GEOMETRY, group_size)
            assert sorted(spec) == list(range(len(spec)))

    def test_non_power_of_two_rejected(self):
        geometry = BankGeometry(num_banks=12, bank_width_bytes=8, bank_depth=32)
        with pytest.raises(ValueError):
            permutation_spec(geometry, 12)


class TestBatchDecode:
    """decode_address_batch must equal decode_address element-wise."""

    def test_matches_scalar_decode_for_every_mode(self):
        import numpy as np

        from repro.memory.addressing import decode_address_batch

        geometry = BankGeometry(num_banks=64, bank_width_bytes=8, bank_depth=256)
        addresses = np.arange(0, geometry.capacity_bytes, 37, dtype=np.int64)
        for group_size in (64, 16, 4, 1):
            banks, lines, offsets = decode_address_batch(
                addresses, geometry, group_size
            )
            for i in (0, 1, 17, len(addresses) // 2, len(addresses) - 1):
                scalar = decode_address(int(addresses[i]), geometry, group_size)
                assert (
                    int(banks[i]),
                    int(lines[i]),
                    int(offsets[i]),
                ) == scalar.as_tuple()

    def test_out_of_range_rejected(self):
        import numpy as np

        from repro.memory.addressing import decode_address_batch

        geometry = BankGeometry(num_banks=4, bank_width_bytes=8, bank_depth=8)
        with pytest.raises(ValueError):
            decode_address_batch(
                np.array([geometry.capacity_bytes]), geometry, 4
            )
        with pytest.raises(ValueError):
            decode_address_batch(np.array([-1]), geometry, 4)
