"""Tests for the single-bank SRAM model."""

import numpy as np
import pytest

from repro.memory import MemoryBank


class TestMemoryBank:
    def test_read_back_written_word(self):
        bank = MemoryBank(index=0, width_bytes=8, depth=4)
        word = np.arange(8, dtype=np.uint8)
        bank.write(2, word)
        assert np.array_equal(bank.read(2), word)

    def test_initial_contents_zero(self):
        bank = MemoryBank(index=0, width_bytes=4, depth=2)
        assert np.array_equal(bank.read(0), np.zeros(4, dtype=np.uint8))

    def test_access_counters(self):
        bank = MemoryBank(index=0, width_bytes=4, depth=2)
        bank.write(0, np.zeros(4, dtype=np.uint8))
        bank.read(0)
        bank.read(1)
        assert bank.write_count == 1
        assert bank.read_count == 2

    def test_byte_strobe_partial_write(self):
        bank = MemoryBank(index=1, width_bytes=4, depth=2)
        bank.write(0, np.array([1, 2, 3, 4], dtype=np.uint8))
        strobe = np.array([True, False, True, False])
        bank.write(0, np.array([9, 9, 9, 9], dtype=np.uint8), strobe=strobe)
        assert list(bank.read(0)) == [9, 2, 9, 4]

    def test_peek_poke_do_not_count(self):
        bank = MemoryBank(index=0, width_bytes=4, depth=2)
        bank.poke(1, np.array([5, 6, 7, 8], dtype=np.uint8))
        assert list(bank.peek(1)) == [5, 6, 7, 8]
        assert bank.read_count == 0
        assert bank.write_count == 0

    def test_out_of_range_line_raises(self):
        bank = MemoryBank(index=0, width_bytes=4, depth=2)
        with pytest.raises(IndexError):
            bank.read(2)
        with pytest.raises(IndexError):
            bank.write(-1, np.zeros(4, dtype=np.uint8))

    def test_wrong_word_size_raises(self):
        bank = MemoryBank(index=0, width_bytes=4, depth=2)
        with pytest.raises(ValueError):
            bank.write(0, np.zeros(5, dtype=np.uint8))
        with pytest.raises(ValueError):
            bank.write(0, np.zeros(4, dtype=np.uint8), strobe=np.ones(3, dtype=bool))

    def test_read_returns_copy(self):
        bank = MemoryBank(index=0, width_bytes=4, depth=1)
        word = bank.read(0)
        word[:] = 0xFF
        assert list(bank.read(0)) == [0, 0, 0, 0]

    def test_clear(self):
        bank = MemoryBank(index=0, width_bytes=4, depth=2)
        bank.write(0, np.ones(4, dtype=np.uint8))
        bank.clear()
        assert list(bank.read(0)) == [0, 0, 0, 0]
        assert bank.write_count == 0
