"""Tests for crossbar arbitration, latency, conflicts and ordering."""

import numpy as np
import pytest

from repro.memory import BankGeometry, MemoryRequest, MemorySubsystem

GEOMETRY = BankGeometry(num_banks=4, bank_width_bytes=8, bank_depth=8)


def make_subsystem(latency=1):
    return MemorySubsystem(GEOMETRY, read_latency=latency)


def read_request(requester, bank, line=0, tag=None):
    return MemoryRequest(requester=requester, is_write=False, bank=bank, line=line, tag=tag)


def write_request(requester, bank, line, value):
    data = np.full(8, value, dtype=np.uint8)
    return MemoryRequest(requester=requester, is_write=True, bank=bank, line=line, data=data)


def run_cycles(memory, cycles):
    for _ in range(cycles):
        memory.deliver()
        memory.step()


class TestBasicTiming:
    def test_read_response_after_latency(self):
        memory = make_subsystem(latency=1)
        memory.scratchpad.backdoor_write(0, np.arange(8, dtype=np.uint8), group_size=4)
        memory.submit(read_request("ch0", bank=0, line=0, tag=42))
        # Cycle 0: arbitrate/grant.
        memory.deliver()
        assert memory.collect_responses("ch0") == []
        memory.step()
        # Cycle 1: response matured.
        memory.deliver()
        responses = memory.collect_responses("ch0")
        assert len(responses) == 1
        assert responses[0].tag == 42
        assert np.array_equal(responses[0].data, np.arange(8, dtype=np.uint8))

    def test_longer_latency(self):
        memory = make_subsystem(latency=3)
        memory.submit(read_request("ch0", bank=1))
        collected = []
        for cycle in range(5):
            memory.deliver()
            collected.extend((cycle, r) for r in memory.collect_responses("ch0"))
            memory.step()
        assert len(collected) == 1
        assert collected[0][0] == 3

    def test_write_commits_and_acknowledges(self):
        memory = make_subsystem()
        memory.submit(write_request("ch0", bank=2, line=3, value=7))
        run_cycles(memory, 2)
        memory.deliver()
        stored = memory.scratchpad.read_word(2, 3)
        assert np.array_equal(stored, np.full(8, 7, dtype=np.uint8))
        assert memory.total_writes == 1

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            MemorySubsystem(GEOMETRY, read_latency=0)

    def test_invalid_bank_rejected(self):
        memory = make_subsystem()
        with pytest.raises(ValueError):
            memory.submit(read_request("ch0", bank=99))


class TestArbitration:
    def test_no_conflict_for_distinct_banks(self):
        memory = make_subsystem()
        memory.submit(read_request("a", bank=0))
        memory.submit(read_request("b", bank=1))
        memory.deliver()
        memory.step()
        assert memory.total_conflicts == 0
        assert memory.total_reads == 2

    def test_same_bank_conflict_serializes(self):
        memory = make_subsystem()
        memory.submit(read_request("a", bank=0))
        memory.submit(read_request("b", bank=0))
        memory.deliver()
        memory.step()
        # Only one of the two was granted this cycle.
        assert memory.total_reads == 1
        assert memory.total_conflicts == 1
        memory.deliver()
        memory.step()
        assert memory.total_reads == 2

    def test_round_robin_fairness(self):
        """Two requesters fighting over one bank get alternating grants."""
        memory = make_subsystem()
        for _ in range(6):
            memory.submit(read_request("a", bank=0))
            memory.submit(read_request("b", bank=0))
        grant_order = []
        for _ in range(12):
            before_a = memory.requester_stats("a")["granted"]
            before_b = memory.requester_stats("b")["granted"]
            memory.deliver()
            memory.step()
            if memory.requester_stats("a")["granted"] > before_a:
                grant_order.append("a")
            if memory.requester_stats("b")["granted"] > before_b:
                grant_order.append("b")
        assert grant_order.count("a") == 6
        assert grant_order.count("b") == 6
        # No requester is granted twice in a row while the other waits.
        assert all(grant_order[i] != grant_order[i + 1] for i in range(10))

    def test_per_requester_ordering_preserved(self):
        """A requester's responses arrive in submission order."""
        memory = make_subsystem()
        for line in range(4):
            memory.scratchpad.backdoor_write(
                line * 4 * 8, np.full(8, line, dtype=np.uint8), group_size=4
            )
        for line in range(4):
            memory.submit(read_request("ch0", bank=0, line=line, tag=line))
        tags = []
        for _ in range(10):
            memory.deliver()
            tags.extend(r.tag for r in memory.collect_responses("ch0"))
            memory.step()
        assert tags == [0, 1, 2, 3]

    def test_outstanding_and_pending_counts(self):
        memory = make_subsystem()
        memory.submit(read_request("a", bank=0))
        memory.submit(read_request("a", bank=0))
        assert memory.pending_count("a") == 2
        assert memory.outstanding_count("a") == 2
        memory.deliver()
        memory.step()
        assert memory.pending_count("a") == 1
        assert memory.outstanding_count("a") == 2
        run_cycles(memory, 3)
        memory.deliver()
        memory.collect_responses("a")
        assert memory.outstanding_count("a") == 0

    def test_idle_detection(self):
        memory = make_subsystem()
        assert memory.idle()
        memory.submit(read_request("a", bank=0))
        assert not memory.idle()
        run_cycles(memory, 3)
        memory.deliver()
        memory.collect_responses("a")
        assert memory.idle()


class TestDmaAccounting:
    def test_uncounted_access_hook(self):
        memory = make_subsystem()
        memory.add_uncounted_accesses(reads=10, writes=5)
        assert memory.total_reads == 10
        assert memory.total_writes == 5
        assert memory.counters.get("dma_word_reads") == 10

    def test_reset_statistics_keeps_contents(self):
        memory = make_subsystem()
        memory.scratchpad.backdoor_write(0, np.arange(8, dtype=np.uint8), group_size=4)
        memory.submit(read_request("a", bank=0))
        run_cycles(memory, 2)
        memory.reset_statistics()
        assert memory.total_reads == 0
        assert np.array_equal(
            memory.scratchpad.backdoor_read(0, 8, group_size=4),
            np.arange(8, dtype=np.uint8),
        )
