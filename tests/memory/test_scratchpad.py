"""Tests for the multi-banked scratchpad backdoor and port views."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import BankGeometry, ScratchpadMemory, decode_address

GEOMETRY = BankGeometry(num_banks=8, bank_width_bytes=8, bank_depth=16)


@pytest.fixture
def scratchpad():
    return ScratchpadMemory(GEOMETRY)


class TestBackdoor:
    def test_roundtrip_word_aligned(self, scratchpad):
        data = np.arange(64, dtype=np.uint8)
        scratchpad.backdoor_write(0, data, group_size=8)
        assert np.array_equal(scratchpad.backdoor_read(0, 64, group_size=8), data)

    def test_roundtrip_unaligned_offset(self, scratchpad):
        data = np.arange(21, dtype=np.uint8) + 100
        scratchpad.backdoor_write(13, data, group_size=8)
        assert np.array_equal(scratchpad.backdoor_read(13, 21, group_size=8), data)

    def test_roundtrip_under_each_mode(self, scratchpad):
        data = np.arange(96, dtype=np.uint8)
        for group_size in (1, 2, 4, 8):
            scratchpad.clear()
            scratchpad.backdoor_write(40, data, group_size=group_size)
            out = scratchpad.backdoor_read(40, data.size, group_size=group_size)
            assert np.array_equal(out, data)

    def test_backdoor_matches_port_view(self, scratchpad):
        """Bytes written via the backdoor are visible to decoded port reads."""
        data = np.arange(16, dtype=np.uint8) + 1
        scratchpad.backdoor_write(24, data, group_size=8)
        loc = decode_address(24, GEOMETRY, 8)
        word = scratchpad.read_word(loc.bank, loc.line)
        assert np.array_equal(word, data[:8])

    def test_backdoor_does_not_count_accesses(self, scratchpad):
        scratchpad.backdoor_write(0, np.zeros(64, dtype=np.uint8), group_size=8)
        scratchpad.backdoor_read(0, 64, group_size=8)
        assert scratchpad.total_reads == 0
        assert scratchpad.total_writes == 0

    def test_port_accesses_count(self, scratchpad):
        scratchpad.write_word(0, 0, np.zeros(8, dtype=np.uint8))
        scratchpad.read_word(0, 0)
        assert scratchpad.total_writes == 1
        assert scratchpad.total_reads == 1

    @given(
        address=st.integers(min_value=0, max_value=GEOMETRY.capacity_bytes - 128),
        size=st.integers(min_value=1, max_value=128),
        group_size=st.sampled_from([1, 2, 4, 8]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, address, size, group_size, seed):
        scratchpad = ScratchpadMemory(GEOMETRY)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=size, dtype=np.uint8)
        scratchpad.backdoor_write(address, data, group_size=group_size)
        out = scratchpad.backdoor_read(address, size, group_size=group_size)
        assert np.array_equal(out, data)

    def test_clear_erases_everything(self, scratchpad):
        scratchpad.backdoor_write(0, np.ones(32, dtype=np.uint8), group_size=8)
        scratchpad.clear()
        assert np.array_equal(
            scratchpad.backdoor_read(0, 32, group_size=8),
            np.zeros(32, dtype=np.uint8),
        )


class TestBulkSpanAccess:
    """stacked_words/scatter_words back the macro-step replayer."""

    def test_stacked_words_matches_read_word(self):
        import numpy as np

        from repro.memory.addressing import BankGeometry
        from repro.memory.scratchpad import ScratchpadMemory

        geometry = BankGeometry(num_banks=4, bank_width_bytes=8, bank_depth=4)
        memory = ScratchpadMemory(geometry)
        rng = np.random.default_rng(0)
        for bank in memory.banks:
            for line in range(geometry.bank_depth):
                bank.poke(line, rng.integers(0, 256, 8, dtype=np.int64).astype(np.uint8))
        stacked = memory.stacked_words()
        banks = np.array([0, 3, 2, 0])
        lines = np.array([1, 0, 3, 1])
        gathered = stacked[banks, lines]
        for row, (bank, line) in zip(gathered, zip(banks, lines)):
            assert np.array_equal(row, memory.banks[int(bank)].peek(int(line)))
        # The stack is a copy: mutating it leaves the banks untouched.
        stacked[0, 1] = 0
        assert not np.array_equal(memory.banks[0].peek(1), stacked[0, 1]) or gathered[0].any() == 0

    def test_scatter_words_matches_write_word(self):
        import numpy as np

        from repro.memory.addressing import BankGeometry
        from repro.memory.scratchpad import ScratchpadMemory

        geometry = BankGeometry(num_banks=4, bank_width_bytes=8, bank_depth=4)
        memory = ScratchpadMemory(geometry)
        banks = np.array([1, 1, 3])
        lines = np.array([0, 2, 1])
        words = np.arange(3 * 8, dtype=np.uint8).reshape(3, 8)
        memory.scatter_words(banks, lines, words)
        for bank, line, word in zip(banks, lines, words):
            assert np.array_equal(memory.banks[int(bank)].peek(int(line)), word)
        # Uncounted: scatter does not move the port counters.
        assert memory.total_writes == 0
