"""Targeted bank-conflict scenarios on the crossbar/scratchpad model.

These tests pin down the arbitration behaviour the ablation results rely on:
N requesters hitting one bank serialise over N cycles, disjoint banks proceed
in parallel, and the addressing mode determines whether a strided access
pattern lands on one bank or spreads across many.
"""

import numpy as np
import pytest

from repro.memory import (
    BankGeometry,
    MemoryRequest,
    MemorySubsystem,
    decode_address,
)

GEOMETRY = BankGeometry(num_banks=8, bank_width_bytes=8, bank_depth=32)


def read(requester, bank, line=0):
    return MemoryRequest(requester=requester, is_write=False, bank=bank, line=line)


def run_until_all_served(memory, requesters, max_cycles=100):
    """Cycle until every requester got all its responses; return cycle count."""
    served = {name: 0 for name in requesters}
    submitted = {name: memory.pending_count(name) for name in requesters}
    for cycle in range(1, max_cycles + 1):
        memory.deliver()
        for name in requesters:
            served[name] += len(memory.collect_responses(name))
        memory.step()
        if all(served[name] >= submitted[name] for name in requesters):
            return cycle
    raise AssertionError("requests were not all served")


class TestSerialisation:
    @pytest.mark.parametrize("contenders", [2, 4, 8])
    def test_same_bank_serialises_linearly(self, contenders):
        memory = MemorySubsystem(GEOMETRY, read_latency=1)
        names = [f"ch{i}" for i in range(contenders)]
        for name in names:
            memory.submit(read(name, bank=3))
        cycles = run_until_all_served(memory, names)
        # One grant per cycle plus one latency cycle for the last grant.
        assert cycles == contenders + 1
        assert memory.total_conflicts == sum(range(contenders))

    @pytest.mark.parametrize("contenders", [2, 4, 8])
    def test_distinct_banks_complete_in_parallel(self, contenders):
        memory = MemorySubsystem(GEOMETRY, read_latency=1)
        names = [f"ch{i}" for i in range(contenders)]
        for index, name in enumerate(names):
            memory.submit(read(name, bank=index))
        cycles = run_until_all_served(memory, names)
        assert cycles == 2  # grant + latency
        assert memory.total_conflicts == 0

    def test_mixed_pattern(self):
        """Two requesters on one bank, one on another: 3 grants in 2 cycles."""
        memory = MemorySubsystem(GEOMETRY, read_latency=1)
        memory.submit(read("a", bank=0))
        memory.submit(read("b", bank=0))
        memory.submit(read("c", bank=5))
        cycles = run_until_all_served(memory, ["a", "b", "c"])
        assert cycles == 3
        assert memory.total_conflicts == 1


class TestAddressingModeConflictExposure:
    """The same logical stride pattern conflicts or not depending on mode."""

    def banks_for_stride(self, stride_words, count, group_size):
        return [
            decode_address(i * stride_words * 8, GEOMETRY, group_size).bank
            for i in range(count)
        ]

    def test_unit_stride_spreads_under_fima(self):
        banks = self.banks_for_stride(1, 8, group_size=8)
        assert len(set(banks)) == 8

    def test_unit_stride_hits_one_bank_under_nima(self):
        banks = self.banks_for_stride(1, 8, group_size=1)
        assert len(set(banks)) == 1

    def test_bank_count_stride_is_pathological_under_fima(self):
        """A stride equal to the bank count maps everything to one bank."""
        banks = self.banks_for_stride(GEOMETRY.num_banks, 8, group_size=8)
        assert len(set(banks)) == 1

    def test_group_interleaving_contains_stride_within_group(self):
        banks = self.banks_for_stride(1, 8, group_size=4)
        assert set(banks) == {0, 1, 2, 3}

    def test_pathological_stride_simulated_cost(self):
        """Eight requests landing on one bank serialise over eight grants."""
        # A bank-count stride under FIMA and a unit stride under NIMA both
        # map all eight channels onto a single bank.
        for group_size, stride_words in ((8, GEOMETRY.num_banks), (1, 1)):
            memory = MemorySubsystem(GEOMETRY, read_latency=1)
            for channel in range(8):
                location = decode_address(
                    channel * stride_words * 8, GEOMETRY, group_size
                )
                memory.submit(read(f"ch{channel}", location.bank, location.line))
            cycles = run_until_all_served(memory, [f"ch{i}" for i in range(8)])
            assert cycles == 9  # 8 serialised grants + 1 latency cycle
            # Deferred requests are re-counted every cycle they lose
            # arbitration: 7 + 6 + ... + 1.
            assert memory.total_conflicts == sum(range(8))


class TestDataIntegrityUnderConflicts:
    def test_serialised_reads_return_correct_data(self):
        memory = MemorySubsystem(GEOMETRY, read_latency=1)
        for line in range(4):
            memory.scratchpad.banks[2].poke(line, np.full(8, 10 + line, dtype=np.uint8))
        for index in range(4):
            memory.submit(read(f"ch{index}", bank=2, line=index))
        received = {}
        for _ in range(10):
            memory.deliver()
            for index in range(4):
                for response in memory.collect_responses(f"ch{index}"):
                    received[index] = response.data[0]
            memory.step()
        assert received == {0: 10, 1: 11, 2: 12, 3: 13}

    def test_write_then_read_same_bank_ordering(self):
        """A later read from the same requester sees its earlier write."""
        memory = MemorySubsystem(GEOMETRY, read_latency=1)
        payload = np.full(8, 0xAB, dtype=np.uint8)
        memory.submit(
            MemoryRequest(requester="ch0", is_write=True, bank=1, line=4, data=payload)
        )
        memory.submit(read("ch0", bank=1, line=4))
        data = None
        for _ in range(6):
            memory.deliver()
            for response in memory.collect_responses("ch0"):
                if not response.is_write:
                    data = response.data
            memory.step()
        assert data is not None
        assert np.array_equal(data, payload)
