"""JobJournal: durability, tail repair, compaction, version safety."""

import json

import pytest

from repro.cluster import JobJournal, JobJournalError
from repro.runtime import SimJob, SimOutcome
from repro.workloads import GemmWorkload


def _job(tag=0):
    return SimJob(
        workload=GemmWorkload(name=f"journal_{tag}", m=8, n=8, k=8), seed=tag
    )


def _outcome(job):
    ideal = job.workload.ideal_compute_cycles(
        job.design.gemm_mu, job.design.gemm_nu, job.design.gemm_ku
    )
    return SimOutcome.analytic(job, utilization=0.5, ideal_compute_cycles=ideal)


class TestJournalBasics:
    def test_start_creates_header(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        assert not journal.exists()
        journal.start({"note": "test"})
        assert journal.exists()
        header = json.loads(journal.path.read_text().splitlines()[0])
        assert header["type"] == "header"
        assert header["note"] == "test"
        assert "package_version" in header

    def test_submission_completion_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.start()
        first, second = _job(1), _job(2)
        journal.record_submission(first.job_hash(), first)
        journal.record_submission(second.job_hash(), second)
        journal.record_completion(first.job_hash())
        contents = journal.load()
        assert set(contents.submitted) == {first.job_hash(), second.job_hash()}
        assert set(contents.completed) == {first.job_hash()}
        unfinished = contents.unfinished()
        assert set(unfinished) == {second.job_hash()}
        # The replayed job is reconstructable and hashes identically.
        assert unfinished[second.job_hash()].job_hash() == second.job_hash()

    def test_completion_carries_outcome_when_given(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.start()
        job = _job(3)
        journal.record_submission(job.job_hash(), job)
        journal.record_completion(job.job_hash(), _outcome(job))
        contents = journal.load()
        replayed = contents.completed[job.job_hash()]
        assert replayed is not None
        assert replayed.job_hash == job.job_hash()

    def test_load_missing_journal_raises(self, tmp_path):
        with pytest.raises(JobJournalError):
            JobJournal(tmp_path / "absent.jsonl").load()

    def test_load_rejects_garbage_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(JobJournalError):
            JobJournal(path).load()

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "header", "format": 999}) + "\n")
        with pytest.raises(JobJournalError):
            JobJournal(path).load()


class TestCrashTolerance:
    def test_truncated_tail_is_dropped(self, tmp_path):
        """A crash mid-append at worst loses the final partial record."""
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.start()
        job = _job(4)
        journal.record_submission(job.job_hash(), job)
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "completed", "key": "abc')  # no newline, cut off
        contents = journal.load()
        assert contents.dropped_lines == 1
        assert set(contents.submitted) == {job.job_hash()}
        assert not contents.completed

    def test_corrupt_middle_record_raises(self, tmp_path):
        """Corruption anywhere but the tail is damage, not a crash artefact."""
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.start()
        job = _job(5)
        lines = journal.path.read_text().splitlines()
        lines.append("garbage{{{")
        lines.append(
            json.dumps({"type": "completed", "key": job.job_hash()})
        )
        journal.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JobJournalError):
            journal.load()

    def test_resume_repairs_and_compacts(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.start()
        done, pending = _job(6), _job(7)
        journal.record_submission(done.job_hash(), done)
        journal.record_submission(pending.job_hash(), pending)
        journal.record_completion(done.job_hash())  # durable in the cache
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "subm')  # crash artefact
        contents = journal.resume()
        assert set(contents.unfinished()) == {pending.job_hash()}
        # The rewritten file: header + the one unfinished submission; the
        # cache-durable completion and the partial tail are compacted away.
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["type"] == "header"
        survivor = json.loads(lines[1])
        assert survivor["type"] == "submitted"
        assert survivor["key"] == pending.job_hash()

    def test_resume_keeps_journaled_outcomes(self, tmp_path):
        """Cache-less completions survive compaction with their outcome."""
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.start()
        job = _job(8)
        journal.record_submission(job.job_hash(), job)
        journal.record_completion(job.job_hash(), _outcome(job))
        contents = journal.resume()
        assert contents.completed[job.job_hash()] is not None
        # And a second resume still serves it.
        again = journal.resume()
        assert again.completed[job.job_hash()].job_hash == job.job_hash()
        assert not again.unfinished()

    def test_foreign_version_resubmits_everything(self, tmp_path):
        """Pickles from another package version are dropped, not trusted."""
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.start()
        job = _job(9)
        journal.record_submission(job.job_hash(), job)
        lines = journal.path.read_text().splitlines()
        header = json.loads(lines[0])
        header["package_version"] = "0.0.0-other"
        lines[0] = json.dumps(header, sort_keys=True)
        journal.path.write_text("\n".join(lines) + "\n")
        contents = journal.load()
        assert contents.undecodable_jobs == 1
        assert contents.submitted[job.job_hash()] is None
        assert not contents.unfinished()  # nothing replayable, nothing lost
