"""ClusterService end-to-end: routing, coalescing, supervision, recovery.

The acceptance tests of the sharded service live here:

* kill a shard mid-burst → the supervisor restarts it, its in-flight jobs
  are requeued onto the replacement, and every coalesced waiter receives
  exactly one consistent outcome — zero lost, zero duplicated;
* crash the whole daemon (``terminate``) → a new cluster on the same
  journal resubmits the unfinished backlog and completes it.
"""

import itertools
import os
import time
from pathlib import Path

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterService,
    ShardFailedError,
)
from repro.runtime import ResultCache, register_backend
from repro.runtime.backends import SimulationBackend
from repro.serve import ServiceClosedError

_LOCAL_COUNTER = itertools.count()


def release(backend):
    """Open a FileGatedBackend's gate."""
    Path(backend.gate_path).touch()


def wait_for(predicate, timeout=15.0, interval=0.02, message="condition"):
    """Poll ``predicate`` until true; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def _fast_config(shards=2, **overrides):
    """Supervision tuned for tests: tight heartbeats, quick backoff."""
    settings = dict(
        shards=shards,
        worker_threads=1,
        heartbeat_interval=0.1,
        heartbeat_timeout=5.0,
        backoff_base=0.05,
        backoff_cap=0.2,
        ready_timeout=15.0,
        shutdown_timeout=30.0,
    )
    settings.update(overrides)
    return ClusterConfig(**settings)


# ----------------------------------------------------------------------
# Plain serving.
# ----------------------------------------------------------------------
class TestClusterServing:
    def test_run_executes_every_job(self, tmp_path, instant_backend, make_job):
        jobs = [make_job(instant_backend.name, tag=i) for i in range(8)]
        with ClusterService(
            cache_dir=tmp_path / "cache", config=_fast_config()
        ) as cluster:
            outcomes = cluster.run(jobs)
            assert [o.job_hash for o in outcomes] == [j.job_hash() for j in jobs]
            assert cluster.stats.executed == len(jobs)
            assert cluster.stats.failed == 0
            assert cluster.restarts == 0

    def test_duplicates_coalesce_at_the_parent(
        self, tmp_path, gated_backend, make_job
    ):
        backend = gated_backend()
        job = make_job(backend.name)
        with ClusterService(
            cache_dir=tmp_path / "cache", config=_fast_config()
        ) as cluster:
            first = cluster.submit(job)
            second = cluster.submit(job)
            assert not first.coalesced
            assert second.coalesced
            assert second.shard == first.shard
            release(backend)
            # One execution, one outcome object, two waiters.
            assert first.result(timeout=30) is second.result(timeout=30)
            assert cluster.stats.coalesced == 1
            assert cluster.stats.executed == 1

    def test_cache_hit_after_completion(self, tmp_path, instant_backend, make_job):
        job = make_job(instant_backend.name)
        with ClusterService(
            cache_dir=tmp_path / "cache", config=_fast_config()
        ) as cluster:
            cluster.run([job])
            again = cluster.submit(job)
            assert again.cache_hit
            assert again.shard == -1  # never dispatched
            assert again.result(timeout=5).cache_hit
            assert cluster.stats.cache_hits == 1

    def test_shards_share_one_cache(self, tmp_path, instant_backend, make_job):
        """Both shard processes write back into the same cache directory."""
        jobs = [make_job(instant_backend.name, tag=i) for i in range(8)]
        cache_root = tmp_path / "cache"
        with ClusterService(cache_dir=cache_root, config=_fast_config()) as cluster:
            cluster.run(jobs)
            shards_used = {
                cluster.router.shard_for(job.job_hash()) for job in jobs
            }
            assert shards_used == {0, 1}  # the mix actually spanned shards
        assert len(ResultCache(cache_root)) == len(jobs)

    def test_backend_error_reaches_every_waiter(
        self, tmp_path, failing_backend, make_job
    ):
        job = make_job(failing_backend.name)
        with ClusterService(
            cache_dir=tmp_path / "cache", config=_fast_config()
        ) as cluster:
            first = cluster.submit(job)
            second = cluster.submit(job)
            with pytest.raises(ValueError, match="injected failure"):
                first.result(timeout=30)
            with pytest.raises(ValueError, match="injected failure"):
                second.result(timeout=30)
            assert cluster.stats.failed == 1  # one unique job failed once

    def test_closed_cluster_rejects_submissions(
        self, tmp_path, instant_backend, make_job
    ):
        cluster = ClusterService(cache_dir=tmp_path / "cache", config=_fast_config())
        cluster.close()
        with pytest.raises(ServiceClosedError):
            cluster.submit(make_job(instant_backend.name))
        cluster.close()  # idempotent

    def test_snapshot_aggregates_shards(self, tmp_path, instant_backend, make_job):
        jobs = [make_job(instant_backend.name, tag=i) for i in range(6)]
        with ClusterService(
            cache_dir=tmp_path / "cache", config=_fast_config()
        ) as cluster:
            cluster.run(jobs)
            snapshot = cluster.snapshot(wait=5.0)
            assert snapshot["shard_count"] == 2
            assert snapshot["inflight"] == 0
            assert snapshot["stats"]["executed"] == len(jobs)
            per_shard = [s["snapshot"] for s in snapshot["shards"]]
            assert all(s is not None for s in per_shard)
            # The shards' own executed counters add up to the cluster's.
            assert sum(s["executed"] for s in per_shard) == len(jobs)
            assert all("latency" in s for s in per_shard)

    def test_simulator_duck_types_onto_the_cluster(
        self, tmp_path, instant_backend, make_job
    ):
        """The ISSUE's surface requirement: ``Simulator(service=...)``
        works with a cluster exactly as with a ``ServiceClient``."""
        from repro.runtime import Simulator

        jobs = [make_job(instant_backend.name, tag=i) for i in range(4)]
        with ClusterService(
            cache_dir=tmp_path / "cache", config=_fast_config()
        ) as cluster:
            simulator = Simulator(cache=None, service=cluster)
            outcome = simulator.simulate(jobs[0])
            assert outcome.job_hash == jobs[0].job_hash()
            outcomes = simulator.simulate_many(jobs)
            assert [o.job_hash for o in outcomes] == [j.job_hash() for j in jobs]
            assert cluster.stats.executed == len(jobs)  # job 0 not re-run

    def test_stats_dict_has_the_serve_cli_keys(self, tmp_path):
        with ClusterService(
            cache_dir=tmp_path / "cache", config=_fast_config()
        ) as cluster:
            stats = cluster.stats_dict()
        for key in (
            "submitted",
            "executed",
            "coalesced",
            "cache_hits",
            "coalescing_hit_rate",
            "cache_hit_rate",
            "restarts",
        ):
            assert key in stats


# ----------------------------------------------------------------------
# Supervision: crashes mid-burst.
# ----------------------------------------------------------------------
class TestSupervision:
    def test_killed_shard_restarts_and_requeues(
        self, tmp_path, gated_backend, make_job
    ):
        """The tentpole acceptance test: kill a shard mid-burst.

        Jobs in flight on the killed shard are redispatched onto the
        restarted incarnation; every ticket (coalesced ones included)
        resolves to exactly one consistent outcome.
        """
        backend = gated_backend(touch=True)
        jobs = [make_job(backend.name, tag=i) for i in range(8)]
        with ClusterService(
            cache_dir=tmp_path / "cache", config=_fast_config()
        ) as cluster:
            tickets = [cluster.submit(job) for job in jobs]
            # Coalesced duplicates of the first two jobs ride along.
            duplicates = [cluster.submit(jobs[0]), cluster.submit(jobs[1])]
            assert all(t.coalesced for t in duplicates)

            victim_index = cluster.router.shard_for(jobs[0].job_hash())
            victim = cluster._handles[victim_index]
            # Wait until the victim shard genuinely *started* simulating
            # (worker_threads=1 → exactly one started marker per shard).
            wait_for(
                lambda: any(tmp_path.glob("started-*")),
                message="a shard to start executing",
            )
            victim.process.kill()
            wait_for(
                lambda: cluster.restarts >= 1,
                message="the supervisor to restart the killed shard",
            )
            release(backend)

            outcomes = [t.result(timeout=60) for t in tickets]
            assert [o.job_hash for o in outcomes] == [j.job_hash() for j in jobs]
            # Coalesced waiters share the original future: same object.
            assert duplicates[0].result(timeout=60) is outcomes[0]
            assert duplicates[1].result(timeout=60) is outcomes[1]
            assert cluster.restarts >= 1
            assert cluster.stats.requeued >= 1
            assert cluster.stats.failed == 0
            # Replacement is a different process, same shard index.
            replacement = cluster._handles[victim_index]
            assert replacement is not victim
            assert replacement.alive()

    def test_crash_looping_shard_fails_its_jobs(self, tmp_path, make_job):
        """A shard that dies on every incarnation is eventually given up on
        and its waiters receive ShardFailedError instead of hanging."""

        class ExitBackend(SimulationBackend):
            def __init__(self, name):
                self.name = name

            def execute(self, job):
                os._exit(3)  # kill the whole shard process, no cleanup

        backend = ExitBackend(f"cluster-exit-{next(_LOCAL_COUNTER)}")
        register_backend(backend)
        job = make_job(backend.name)
        # One shard owns everything; a huge heartbeat interval keeps pongs
        # from marking doomed incarnations "productive" between crashes.
        config = _fast_config(
            shards=1,
            heartbeat_interval=30.0,
            max_restarts=2,
            backoff_base=0.01,
            backoff_cap=0.05,
        )
        with ClusterService(cache_dir=tmp_path / "cache", config=config) as cluster:
            ticket = cluster.submit(job)
            with pytest.raises(ShardFailedError):
                ticket.result(timeout=60)
            # The dead shard now rejects new submissions immediately.
            with pytest.raises(ShardFailedError):
                cluster.submit(make_job(backend.name, tag=99))
            assert cluster.stats.failed >= 1


# ----------------------------------------------------------------------
# Durability: the daemon dies, the journal resumes the backlog.
# ----------------------------------------------------------------------
class TestJournalRecovery:
    def test_daemon_restart_replays_unfinished_backlog(
        self, tmp_path, gated_backend, make_job
    ):
        backend = gated_backend()
        jobs = [make_job(backend.name, tag=i) for i in range(4)]
        journal_path = tmp_path / "serve.jsonl"
        cache_root = tmp_path / "cache"

        first = ClusterService(
            cache_dir=cache_root, config=_fast_config(), journal=journal_path
        )
        tickets = [first.submit(job) for job in jobs]
        # Submissions are journaled before dispatch: all four on disk now.
        assert journal_path.read_text().count('"submitted"') == 4
        first.terminate()  # the daemon crashes; the gate never opened
        for ticket in tickets:
            with pytest.raises(ServiceClosedError):
                ticket.result(timeout=5)

        release(backend)  # the backlog may proceed after the restart
        second = ClusterService(
            cache_dir=cache_root, config=_fast_config(), journal=journal_path
        )
        try:
            assert second.stats.recovered == 4
            assert second.wait_idle(timeout=60), "recovered backlog never drained"
            # Every replayed job completed and is durably cached: new
            # submissions resolve instantly without touching a shard.
            for job in jobs:
                ticket = second.submit(job)
                assert ticket.cache_hit
                assert ticket.result(timeout=5).job_hash == job.job_hash()
        finally:
            second.close()

    def test_completed_jobs_survive_restart_without_reexecution(
        self, tmp_path, instant_backend, make_job
    ):
        """Cache-less cluster: completions ride in the journal itself."""
        job = make_job(instant_backend.name)
        journal_path = tmp_path / "serve.jsonl"

        first = ClusterService(config=_fast_config(), journal=journal_path)
        try:
            outcome = first.run([job])[0]
        finally:
            first.close()

        second = ClusterService(config=_fast_config(), journal=journal_path)
        try:
            assert second.stats.recovered == 0
            ticket = second.submit(job)
            assert ticket.cache_hit  # served from the journal replay
            assert ticket.result(timeout=5).job_hash == outcome.job_hash
            assert second.stats.journal_hits == 1
            assert second.stats.executed == 0
        finally:
            second.close()

    def test_fresh_journal_is_started_when_absent(
        self, tmp_path, instant_backend, make_job
    ):
        journal_path = tmp_path / "fresh.jsonl"
        with ClusterService(
            cache_dir=tmp_path / "cache",
            config=_fast_config(),
            journal=journal_path,
        ) as cluster:
            cluster.run([make_job(instant_backend.name)])
        text = journal_path.read_text()
        assert text.count('"submitted"') == 1
        assert text.count('"completed"') == 1
