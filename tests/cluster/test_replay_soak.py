"""Soak test: shard crash mid-Poisson-burst under sustained replay load.

``test_cluster_service.py`` proves one-shot crash recovery; this suite
extends it to *sustained* load: a seeded Poisson arrival trace streams into
a 2-shard cluster, one shard is killed while its backlog is genuinely in
flight, and after the supervisor restarts it the run must finish with

* **zero lost outcomes** — every submission's ticket resolves;
* **zero duplicated outcomes** — per job hash, exactly one consistent
  result (coalesced waiters share one object, repeats agree bit-for-bit);
* **monotone registry counters** — periodic ``stats_dict()`` samples taken
  throughout the churn never observe any counter decreasing (a restart
  must not reset the cluster-level registry).

The arrival schedule comes from the replay harness (same seed fixture as
the fuzz suite: ``REPRO_FUZZ_SEED`` reproduces a failure exactly).
"""

import threading
import time

from conftest import release, wait_for

from repro.cluster import ClusterConfig, ClusterService
from repro.runtime import SimJob
from repro.serve.replay import build_trace
from repro.workloads import GemmWorkload

REQUESTS = 36
POOL = 12


def _soak_config():
    return ClusterConfig(
        shards=2,
        worker_threads=1,
        heartbeat_interval=0.1,
        heartbeat_timeout=5.0,
        backoff_base=0.05,
        backoff_cap=0.2,
        ready_timeout=15.0,
        shutdown_timeout=30.0,
    )


def _workload_pool(size):
    return [GemmWorkload(name=f"soak_{i}", m=4 + i, n=8, k=8) for i in range(size)]


class TestReplaySoak:
    def test_shard_killed_mid_burst_loses_and_duplicates_nothing(
        self, tmp_path, gated_backend, fuzz_seed
    ):
        backend = gated_backend(touch=True)
        trace = build_trace(
            "poisson", REQUESTS, rate=2000.0, pool=_workload_pool(POOL), seed=fuzz_seed
        )
        samples = []
        stop_sampling = threading.Event()
        with ClusterService(
            cache_dir=tmp_path / "cache", config=_soak_config()
        ) as cluster:

            def _sample():
                while not stop_sampling.wait(0.02):
                    samples.append(cluster.stats_dict())

            sampler = threading.Thread(target=_sample, daemon=True)
            sampler.start()

            # Stream the trace in arrival order (compressed schedule); the
            # gate holds every execution, so the backlog piles up in flight.
            start = time.monotonic()
            tickets = []
            for event in trace:
                delay = start + event.at * 0.5 - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                job = SimJob(workload=event.workload, backend=backend.name)
                tickets.append(cluster.submit(job, client_name="soak"))

            wait_for(
                lambda: any(tmp_path.glob("started-*")),
                message="a shard to start executing",
            )
            victim_index = cluster.router.shard_for(tickets[0].job_hash)
            victim = cluster._handles[victim_index]
            victim.process.kill()
            wait_for(
                lambda: cluster.restarts >= 1,
                message="the supervisor to restart the killed shard",
            )
            release(backend)

            outcomes = [ticket.result(timeout=60) for ticket in tickets]
            stop_sampling.set()
            sampler.join(timeout=5)
            samples.append(cluster.stats_dict())

            # --- zero lost outcomes ---------------------------------------
            assert len(outcomes) == REQUESTS
            for ticket, outcome in zip(tickets, outcomes):
                assert outcome.job_hash == ticket.job_hash

            # --- zero duplicated outcomes ---------------------------------
            by_hash = {}
            for ticket, outcome in zip(tickets, outcomes):
                by_hash.setdefault(ticket.job_hash, []).append(outcome)
            for job_hash, group in by_hash.items():
                cycle_counts = {o.kernel_cycles for o in group}
                assert len(cycle_counts) == 1, (
                    f"{job_hash}: inconsistent duplicate outcomes {cycle_counts}"
                )
            # Every unique job was simulated at most once per incarnation
            # chain: executions ≤ uniques + requeued re-executions.
            stats = cluster.stats_dict()
            uniques = len(by_hash)
            assert stats["executed"] <= uniques + stats["requeued"]

            # --- accounting closes ----------------------------------------
            assert stats["submitted"] == REQUESTS
            assert stats["failed"] == 0
            assert cluster.restarts >= 1
            assert stats["requeued"] >= 1

        # --- monotone registry counters across the whole churn ------------
        assert len(samples) >= 2, "sampler never ran"
        counter_keys = [
            key
            for key, value in samples[-1].items()
            if isinstance(value, int) and not isinstance(value, bool)
        ]
        assert "executed" in counter_keys and "submitted" in counter_keys
        for key in counter_keys:
            series = [s[key] for s in samples if key in s]
            assert all(a <= b for a, b in zip(series, series[1:])), (
                f"counter {key!r} went backwards during the soak: {series}"
            )
