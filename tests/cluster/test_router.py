"""ShardRouter: deterministic, balanced, coalescing-preserving."""

import pytest

from repro.cluster import ShardRouter
from repro.runtime import SimJob
from repro.workloads import GemmWorkload


def _hashes(count):
    return [
        SimJob(
            workload=GemmWorkload(name=f"route_{i}", m=8, n=8, k=8), seed=i
        ).job_hash()
        for i in range(count)
    ]


class TestShardRouter:
    def test_rejects_non_positive_shards(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(-1)

    def test_single_shard_takes_everything(self):
        router = ShardRouter(1)
        assert all(router.shard_for(h) == 0 for h in _hashes(16))

    def test_deterministic(self):
        router = ShardRouter(4)
        for job_hash in _hashes(16):
            assert router.shard_for(job_hash) == router.shard_for(job_hash)

    def test_identical_jobs_share_a_shard(self):
        """The property per-shard coalescing correctness rests on."""
        router = ShardRouter(4)
        job = SimJob(workload=GemmWorkload(name="route_dup", m=8, n=8, k=8))
        duplicate = SimJob(workload=GemmWorkload(name="route_dup", m=8, n=8, k=8))
        assert job.job_hash() == duplicate.job_hash()
        assert router.shard_for(job.job_hash()) == router.shard_for(
            duplicate.job_hash()
        )

    def test_in_range_and_reasonably_balanced(self):
        router = ShardRouter(4)
        hashes = _hashes(200)
        assignments = [router.shard_for(h) for h in hashes]
        assert all(0 <= shard < 4 for shard in assignments)
        # SHA-256-derived keys spread well; every shard gets a fair share.
        for shard in range(4):
            count = assignments.count(shard)
            assert 20 <= count <= 80, f"shard {shard} got {count}/200"

    def test_partition_groups_by_shard(self):
        router = ShardRouter(2)
        hashes = _hashes(10)
        groups = router.partition(hashes)
        assert sum(len(group) for group in groups.values()) == len(hashes)
        for shard, group in groups.items():
            assert all(router.shard_for(h) == shard for h in group)
