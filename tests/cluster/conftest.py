"""Shared fixtures of the cluster test suite.

Cluster tests cross a process boundary: the backend a shard executes runs
in a forked child, so in-memory coordination primitives
(``threading.Event``, plain counters) cannot reach it.  Two stand-ins:

* backends registered *before* the cluster starts are inherited by the
  forked workers (the fork copies the registry), so stub backends work as
  long as they are registered first;
* coordination happens through the *filesystem* — :class:`FileGatedBackend`
  polls for a sentinel file, which both parent and worker processes can
  see, giving tests a cross-process way to hold jobs "in flight" and
  release them on cue.
"""

import itertools
import time
from pathlib import Path

import pytest

from repro.runtime import SimJob, SimOutcome, register_backend
from repro.runtime.backends import SimulationBackend
from repro.workloads import GemmWorkload

_COUNTER = itertools.count()


def _analytic(job):
    ideal = job.workload.ideal_compute_cycles(
        job.design.gemm_mu, job.design.gemm_nu, job.design.gemm_ku
    )
    return SimOutcome.analytic(job, utilization=0.5, ideal_compute_cycles=ideal)


class InstantBackend(SimulationBackend):
    """Analytic outcome immediately; the cluster's fast-path stub."""

    def __init__(self, name):
        self.name = name

    def execute(self, job):
        return _analytic(job)


class FileGatedBackend(SimulationBackend):
    """Backend that blocks every execution until a sentinel file appears.

    ``gate_path`` is created by the test (in the parent process) when the
    held jobs should proceed; the polling loop runs inside the shard
    worker.  ``touch_dir`` records one file per started execution, so the
    test can wait until a job is genuinely *running* on a shard before
    killing that shard.
    """

    def __init__(self, name, gate_path, touch_dir=None, timeout=30.0):
        self.name = name
        self.gate_path = str(gate_path)
        self.touch_dir = str(touch_dir) if touch_dir is not None else None
        self.timeout = timeout

    def execute(self, job):
        if self.touch_dir is not None:
            marker = Path(self.touch_dir) / f"started-{job.job_hash()[:16]}"
            marker.touch()
        deadline = time.monotonic() + self.timeout
        while not Path(self.gate_path).exists():
            if time.monotonic() > deadline:
                raise TimeoutError("test gate never released")
            time.sleep(0.01)
        return _analytic(job)


class FailingBackend(SimulationBackend):
    """Raises a typed error on every execution."""

    def __init__(self, name, message="injected failure"):
        self.name = name
        self.message = message

    def execute(self, job):
        raise ValueError(self.message)


@pytest.fixture
def instant_backend():
    """Register a uniquely named :class:`InstantBackend` (pre-fork)."""
    backend = InstantBackend(f"cluster-instant-{next(_COUNTER)}")
    register_backend(backend)
    return backend


@pytest.fixture
def gated_backend(tmp_path):
    """Factory for :class:`FileGatedBackend` with a tmp-path sentinel."""

    def make(touch=False):
        index = next(_COUNTER)
        backend = FileGatedBackend(
            f"cluster-gated-{index}",
            gate_path=tmp_path / f"gate-{index}",
            touch_dir=tmp_path if touch else None,
        )
        register_backend(backend)
        return backend

    return make


@pytest.fixture
def failing_backend():
    backend = FailingBackend(f"cluster-failing-{next(_COUNTER)}")
    register_backend(backend)
    return backend


@pytest.fixture
def make_job():
    """Factory for small distinct jobs against a given backend."""

    def make(backend_name, tag=0, m=8):
        return SimJob(
            workload=GemmWorkload(name=f"cluster_{tag}", m=m, n=8, k=8),
            backend=backend_name,
            seed=tag,
        )

    return make


def release(backend):
    """Open a :class:`FileGatedBackend`'s gate (module-level helper)."""
    Path(backend.gate_path).touch()


def wait_for(predicate, timeout=15.0, interval=0.02, message="condition"):
    """Poll ``predicate`` until true; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")
