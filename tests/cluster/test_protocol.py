"""MessageChannel framing: round-trips, EOF, corruption, thread-safety."""

import socket
import threading

import pytest

from repro.cluster import MAX_FRAME_BYTES, MessageChannel, ProtocolError, channel_pair
from repro.cluster.protocol import _HEADER, pack_frame


class TestPackFrame:
    def test_prefixes_length(self):
        frame = pack_frame(b"hello")
        (length,) = _HEADER.unpack(frame[: _HEADER.size])
        assert length == 5
        assert frame[_HEADER.size :] == b"hello"

    def test_rejects_oversized_payload(self):
        class HugeBytes(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(ProtocolError):
            pack_frame(HugeBytes())


class TestMessageChannel:
    def test_round_trip(self):
        a, b = channel_pair()
        try:
            a.send({"kind": "ping", "seq": 7})
            assert b.recv() == {"kind": "ping", "seq": 7}
            b.send({"kind": "pong", "seq": 7, "snapshot": {"queue_depth": 0}})
            assert a.recv()["snapshot"] == {"queue_depth": 0}
        finally:
            a.close()
            b.close()

    def test_many_messages_in_order(self):
        a, b = channel_pair()
        try:
            for seq in range(100):
                a.send({"kind": "job", "seq": seq})
            received = [b.recv()["seq"] for _ in range(100)]
            assert received == list(range(100))
        finally:
            a.close()
            b.close()

    def test_large_payload(self):
        a, b = channel_pair()
        try:
            blob = b"x" * (2 * 1024 * 1024)
            writer = threading.Thread(
                target=a.send, args=({"kind": "result", "blob": blob},)
            )
            writer.start()
            message = b.recv()
            writer.join(5)
            assert message["blob"] == blob
        finally:
            a.close()
            b.close()

    def test_eof_on_closed_peer(self):
        a, b = channel_pair()
        a.close()
        with pytest.raises(EOFError):
            b.recv()
        b.close()

    def test_eof_mid_frame(self):
        """A peer dying between header and payload is EOF, not garbage."""
        parent_sock, child_sock = socket.socketpair()
        channel = MessageChannel(parent_sock)
        try:
            child_sock.sendall(_HEADER.pack(1000) + b"partial")
            child_sock.close()
            with pytest.raises(EOFError):
                channel.recv()
        finally:
            channel.close()

    def test_corrupt_length_prefix_rejected(self):
        """A 4 GiB length claim must raise, not attempt the allocation."""
        parent_sock, child_sock = socket.socketpair()
        channel = MessageChannel(parent_sock)
        try:
            child_sock.sendall(_HEADER.pack(MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                channel.recv()
        finally:
            channel.close()
            child_sock.close()

    def test_non_dict_message_rejected(self):
        parent_sock, child_sock = socket.socketpair()
        channel = MessageChannel(parent_sock)
        try:
            child_sock.sendall(pack_frame(__import__("pickle").dumps(["not a dict"])))
            with pytest.raises(ProtocolError):
                channel.recv()
        finally:
            channel.close()
            child_sock.close()

    def test_concurrent_senders_never_interleave(self):
        """Frames from many threads arrive whole (the send lock works)."""
        a, b = channel_pair()
        per_thread = 50
        threads = [
            threading.Thread(
                target=lambda t=t: [
                    a.send({"kind": "job", "sender": t, "seq": i})
                    for i in range(per_thread)
                ]
            )
            for t in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            received = [b.recv() for _ in range(4 * per_thread)]
            for thread in threads:
                thread.join(5)
            # Every message intact, per-sender order preserved.
            for t in range(4):
                sequence = [m["seq"] for m in received if m["sender"] == t]
                assert sequence == list(range(per_thread))
        finally:
            a.close()
            b.close()

    def test_close_is_idempotent(self):
        a, b = channel_pair()
        a.close()
        a.close()
        b.close(shutdown=False)
        b.close()
        assert a.closed and b.closed
