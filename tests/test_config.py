"""RuntimeConfig: env parsing, the bool convention, pinning and overrides."""

from pathlib import Path

import pytest

from repro.config import (
    ENV_BENCH_OUT,
    ENV_CACHE_DIR,
    ENV_FULL_SUITE,
    ENV_FUZZ_SEED,
    ENV_JOURNAL_DIR,
    ENV_SERVE_SHARDS,
    ENV_STRICT_BENCH,
    RuntimeConfig,
    get_config,
    override,
    reset_config,
    set_config,
)
from repro.config import _parse_bool


@pytest.fixture(autouse=True)
def _unpinned():
    """Every test starts and ends with no pinned configuration."""
    reset_config()
    yield
    reset_config()


class TestFromEnv:
    def test_defaults_with_empty_environ(self):
        config = RuntimeConfig.from_env({})
        assert config.cache_dir == Path.home() / ".cache" / "repro-datamaestro"
        assert config.journal_dir == config.cache_dir / "journal"
        assert config.full_suite is False
        assert config.strict_bench is False
        assert config.serve_shards == 0
        assert config.bench_out is None
        assert config.fuzz_seed == 0

    def test_reads_every_knob(self, tmp_path):
        config = RuntimeConfig.from_env(
            {
                ENV_CACHE_DIR: str(tmp_path / "cache"),
                ENV_JOURNAL_DIR: str(tmp_path / "journal"),
                ENV_FULL_SUITE: "1",
                ENV_STRICT_BENCH: "yes",
                ENV_SERVE_SHARDS: "4",
                ENV_BENCH_OUT: str(tmp_path / "bench"),
                ENV_FUZZ_SEED: "1234",
            }
        )
        assert config.cache_dir == tmp_path / "cache"
        assert config.journal_dir == tmp_path / "journal"
        assert config.full_suite is True
        assert config.strict_bench is True
        assert config.serve_shards == 4
        assert config.bench_out == tmp_path / "bench"
        assert config.fuzz_seed == 1234

    def test_journal_dir_defaults_under_cache_dir(self, tmp_path):
        config = RuntimeConfig.from_env({ENV_CACHE_DIR: str(tmp_path)})
        assert config.journal_dir == tmp_path / "journal"

    def test_bad_shard_count_is_a_typed_error(self):
        with pytest.raises(ValueError, match=ENV_SERVE_SHARDS):
            RuntimeConfig.from_env({ENV_SERVE_SHARDS: "many"})

    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(serve_shards=-1)

    def test_bad_fuzz_seed_is_a_typed_error(self):
        with pytest.raises(ValueError, match=ENV_FUZZ_SEED):
            RuntimeConfig.from_env({ENV_FUZZ_SEED: "lucky"})

    def test_negative_fuzz_seed_is_legal(self):
        # Any int seeds random.Random; only non-ints are rejected.
        config = RuntimeConfig.from_env({ENV_FUZZ_SEED: "-3"})
        assert config.fuzz_seed == -3


class TestBoolConvention:
    """The historical scattered readers all used this exact convention."""

    @pytest.mark.parametrize("value", [None, "", "0", "false", "False"])
    def test_falsy(self, value):
        assert _parse_bool(value) is False

    @pytest.mark.parametrize("value", ["1", "true", "True", "yes", "anything"])
    def test_truthy(self, value):
        assert _parse_bool(value) is True


class TestProcessWideAccess:
    def test_get_config_rereads_env(self, monkeypatch, tmp_path):
        """monkeypatch.setenv keeps working because nothing is cached."""
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "a"))
        assert get_config().cache_dir == tmp_path / "a"
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "b"))
        assert get_config().cache_dir == tmp_path / "b"

    def test_pinning_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_SERVE_SHARDS, "8")
        set_config(RuntimeConfig(serve_shards=2))
        assert get_config().serve_shards == 2
        reset_config()
        assert get_config().serve_shards == 8

    def test_override_context_manager_restores(self):
        before = get_config()
        with override(full_suite=True, serve_shards=3) as pinned:
            assert pinned.full_suite is True
            assert get_config().serve_shards == 3
        assert get_config().full_suite == before.full_suite

    def test_with_overrides_returns_new_frozen_copy(self):
        base = RuntimeConfig()
        changed = base.with_overrides(strict_bench=True)
        assert changed is not base
        assert changed.strict_bench and not base.strict_bench
        with pytest.raises(Exception):
            changed.strict_bench = False  # frozen

    def test_as_dict_stringifies_paths(self, tmp_path):
        config = RuntimeConfig(cache_dir=tmp_path, bench_out=tmp_path / "out")
        summary = config.as_dict()
        assert summary["cache_dir"] == str(tmp_path)
        assert summary["bench_out"] == str(tmp_path / "out")
        assert summary["full_suite"] is False
