"""Tests for the plain-text report formatting helpers."""

from repro.analysis import (
    format_check_marks,
    format_comparison,
    format_percentage_map,
    format_table,
    indent_block,
)


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all("|" in line for line in lines if line and "-+-" not in line)
        # Columns aligned: the separator row matches the header width.
        assert len(lines[1]) == len(lines[0])

    def test_title_rendered(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159]], float_format="{:.1f}")
        assert "3.1" in text and "3.14159" not in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestOtherFormatters:
    def test_percentage_map_with_reference(self):
        text = format_percentage_map(
            {"memory": 45.0, "host": 25.0},
            title="Area",
            reference={"memory": 44.9},
        )
        assert "paper (%)" in text
        assert "memory" in text

    def test_comparison_matrix(self):
        text = format_comparison(
            "Util", {"gemm": {"base": 0.4, "full": 1.0}, "conv": {"base": 0.3}}
        )
        assert "gemm" in text and "full" in text
        assert "nan" in text  # missing conv/full cell

    def test_comparison_with_explicit_columns(self):
        text = format_comparison(
            "Util", {"gemm": {"a": 1.0, "b": 2.0}}, column_order=["b", "a"]
        )
        header = text.splitlines()[2]
        assert header.index("b") < header.index("a")

    def test_check_marks(self):
        text = format_check_marks(
            {"X": {"f1": True, "f2": False, "f3": "2-D"}},
            feature_order=["f1", "f2", "f3"],
        )
        assert "yes" in text and "no" in text and "2-D" in text

    def test_indent_block(self):
        assert indent_block("a\nb") == "  a\n  b"
        assert indent_block("x", prefix="> ") == "> x"
