"""Tests for the parametric area, power and FPGA resource models."""

import pytest

from repro.analysis import (
    AreaModel,
    FpgaResourceModel,
    PAPER_SILICON_REFERENCE,
    PowerModel,
    gemm64_power_report,
)
from repro.analysis.technology import AreaCoefficients
from repro.compiler import compile_workload
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import GemmWorkload

DESIGN = datamaestro_evaluation_system()


@pytest.fixture(scope="module")
def area_breakdown():
    return AreaModel(DESIGN).system_breakdown()


@pytest.fixture(scope="module")
def gemm64_report():
    return gemm64_power_report(DESIGN)


class TestAreaModel:
    def test_total_is_sum_of_components(self, area_breakdown):
        shares = area_breakdown.shares_percent()
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_memory_dominates_area(self, area_breakdown):
        shares = area_breakdown.shares_percent()
        assert shares["memory_subsystem"] == max(shares.values())

    def test_datamaestros_are_a_small_fraction(self, area_breakdown):
        shares = area_breakdown.shares_percent()
        paper = PAPER_SILICON_REFERENCE["area_share_percent"]["datamaestros"]
        assert shares["datamaestros"] < 2.5 * paper
        assert shares["datamaestros"] > 0.5 * paper

    def test_streamer_ordering_follows_buffering(self, area_breakdown):
        per_dm = area_breakdown.streamer_shares_percent()
        # A and B (deep FIFOs) are the largest; E (narrow) is the smallest.
        assert per_dm["A"] >= per_dm["C"]
        assert per_dm["E"] == min(per_dm.values())
        assert per_dm["A"] == max(per_dm.values())

    def test_datamaestro_a_composition(self, area_breakdown):
        composition = area_breakdown.streamers["A"].shares_percent()
        assert composition["fifo_buffers"] > 70.0
        assert 3.0 < composition["agu"] < 20.0
        assert composition["address_remapper"] < 2.0
        assert "transposer" in composition
        assert sum(composition.values()) == pytest.approx(100.0)

    def test_transposer_only_on_port_a(self, area_breakdown):
        assert "transposer" in area_breakdown.streamers["A"].extensions
        assert "transposer" not in area_breakdown.streamers["B"].extensions

    def test_area_scales_with_fifo_depth(self):
        shallow = AreaModel(DESIGN, AreaCoefficients(fifo_bit=1.0))
        deep = AreaModel(DESIGN, AreaCoefficients(fifo_bit=4.0))
        assert (
            deep.system_breakdown().datamaestros_total
            > shallow.system_breakdown().datamaestros_total
        )


class TestPowerModel:
    def test_shares_sum_to_100(self, gemm64_report):
        assert sum(gemm64_report["power_shares_percent"].values()) == pytest.approx(100.0)

    def test_total_power_in_paper_range(self, gemm64_report):
        # Paper: 329.4 mW; the model should land within a factor of 2.
        assert 150.0 < gemm64_report["total_power_mw"] < 660.0

    def test_energy_efficiency_in_paper_range(self, gemm64_report):
        # Paper: 2.57 TOPS/W.
        assert 1.0 < gemm64_report["energy_efficiency_tops_per_w"] < 6.0

    def test_host_and_compute_are_major_consumers(self, gemm64_report):
        shares = gemm64_report["power_shares_percent"]
        assert shares["riscv_host"] > 15.0
        assert shares["gemm_accelerator"] > 10.0
        assert shares["datamaestros"] < 30.0

    def test_power_scales_with_activity(self):
        system = AcceleratorSystem(DESIGN)
        model = PowerModel(DESIGN)
        busy = system.run(
            compile_workload(GemmWorkload(name="pw_busy", m=32, n=32, k=64), DESIGN)
        )
        idleish = system.run(
            compile_workload(
                GemmWorkload(name="pw_idle", m=32, n=32, k=64), DESIGN,
                features=None, seed=0,
            )
        )
        # Same workload twice: identical power (determinism check).
        assert model.breakdown(busy).total == pytest.approx(
            model.breakdown(idleish).total
        )

    def test_quantizer_power_nonzero_only_when_used(self):
        system = AcceleratorSystem(DESIGN)
        model = PowerModel(DESIGN)
        plain = system.run(
            compile_workload(GemmWorkload(name="pw_plain", m=16, n=16, k=16), DESIGN)
        )
        quant = system.run(
            compile_workload(
                GemmWorkload(name="pw_quant", m=16, n=16, k=16, quantize=True), DESIGN
            )
        )
        assert model.breakdown(plain).quantizer == 0.0
        assert model.breakdown(quant).quantizer > 0.0


class TestFpgaModel:
    def test_totals_close_to_paper(self):
        resources = FpgaResourceModel(DESIGN).estimate()
        assert 150_000 < resources.luts_total < 500_000
        assert 30_000 < resources.regs_total < 150_000

    def test_gemm_dominates_luts(self):
        resources = FpgaResourceModel(DESIGN).estimate()
        assert resources.luts_gemm > resources.luts_datamaestros
        assert resources.luts_gemm > resources.luts_quantizer

    def test_shares_api(self):
        shares = FpgaResourceModel(DESIGN).estimate().shares_percent()
        assert 0 < shares["luts_datamaestros_percent"] < 20
