"""Tests for the design-space exploration sweeps."""

import pytest

from repro.analysis import (
    DesignPoint,
    best_point,
    default_sweep_workload,
    sweep_bank_count,
    sweep_data_fifo_depth,
    sweep_gima_group_size,
)
from repro.core import FeatureSet
from repro.workloads import GemmWorkload

SMALL_WORKLOAD = GemmWorkload(name="dse_small", m=32, n=32, k=64)


class TestFifoDepthSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_data_fifo_depth(depths=(1, 2, 8), workload=SMALL_WORKLOAD)

    def test_one_point_per_depth(self, points):
        assert [p.value for p in points] == [1, 2, 8]
        assert all(p.parameter == "data_fifo_depth" for p in points)

    def test_deeper_fifos_do_not_hurt(self, points):
        by_depth = {p.value: p for p in points}
        assert by_depth[8].utilization >= by_depth[1].utilization
        assert by_depth[8].kernel_cycles <= by_depth[1].kernel_cycles

    def test_depth_8_is_near_peak(self, points):
        by_depth = {p.value: p for p in points}
        assert by_depth[8].utilization > 0.95

    def test_as_dict(self, points):
        record = points[0].as_dict()
        assert set(record) >= {"parameter", "value", "utilization", "kernel_cycles"}


class TestOtherSweeps:
    def test_bank_count_sweep(self):
        points = sweep_bank_count(bank_counts=(32, 64), workload=SMALL_WORKLOAD)
        assert [p.value for p in points] == [32, 64]
        assert all(p.utilization > 0.5 for p in points)

    def test_gima_group_sweep(self):
        points = sweep_gima_group_size(group_sizes=(16, 64), workload=SMALL_WORKLOAD)
        assert [p.value for p in points] == [16, 64]
        for point in points:
            assert 0.0 < point.utilization <= 1.0

    def test_default_sweep_workload(self):
        workload = default_sweep_workload()
        assert workload.m > 0 and workload.k > 0

    def test_sweep_with_baseline_features(self):
        points = sweep_data_fifo_depth(
            depths=(8,), workload=SMALL_WORKLOAD, features=FeatureSet.all_disabled()
        )
        assert points[0].utilization < 0.7

    def test_illegal_sweep_values_raise_not_skip(self):
        # A sweep over explicit values must surface an illegal one, not
        # silently return fewer points (48 does not divide the 64 banks).
        with pytest.raises(ValueError):
            sweep_gima_group_size(group_sizes=(8, 48), workload=SMALL_WORKLOAD)
        with pytest.raises(ValueError):
            sweep_data_fifo_depth(depths=(0, 8), workload=SMALL_WORKLOAD)
        with pytest.raises(ValueError):
            sweep_bank_count(bank_counts=(48,), workload=SMALL_WORKLOAD)


class TestBestPoint:
    def test_selects_highest_utilization(self):
        points = sweep_data_fifo_depth(depths=(1, 8), workload=SMALL_WORKLOAD)
        best = best_point(points)
        assert best.utilization == max(p.utilization for p in points)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_point([])

    def _point(self, value, utilization, cycles, conflicts=0):
        return DesignPoint(
            parameter="synthetic",
            value=value,
            utilization=utilization,
            kernel_cycles=cycles,
            bank_conflicts=conflicts,
            memory_accesses=0,
        )

    def test_tie_breaks_on_fewest_cycles(self):
        slow = self._point(1, 0.9, cycles=120)
        fast = self._point(2, 0.9, cycles=100)
        assert best_point([slow, fast]) == fast
        assert best_point([fast, slow]) == fast

    def test_tie_breaks_on_fewest_conflicts_then_smallest_value(self):
        noisy = self._point(4, 0.9, cycles=100, conflicts=8)
        clean = self._point(8, 0.9, cycles=100, conflicts=0)
        assert best_point([noisy, clean]) == clean
        # Fully tied metrics: the smaller (cheaper) parameter value wins.
        small = self._point(2, 0.9, cycles=100)
        large = self._point(16, 0.9, cycles=100)
        assert best_point([large, small]) == small
        assert best_point([small, large]) == small

    def test_result_is_input_order_independent(self):
        points = [
            self._point(1, 0.8, cycles=125),
            self._point(2, 0.9, cycles=112, conflicts=3),
            self._point(4, 0.9, cycles=112, conflicts=1),
            self._point(8, 0.9, cycles=140),
        ]
        forward = best_point(points)
        backward = best_point(list(reversed(points)))
        assert forward == backward == points[2]
