"""Tests for the metric helpers (box stats, speedups, normalisation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    BoxStats,
    average,
    final_over_each_step,
    geometric_mean,
    normalized_throughput_gops,
    relative_change,
    speedup,
    summarize_by_key,
    utilization_gain_ladder,
)


class TestBoxStats:
    def test_five_number_summary(self):
        stats = BoxStats.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.minimum == 1.0
        assert stats.median == 3.0
        assert stats.maximum == 5.0
        assert stats.mean == 3.0
        assert stats.count == 5

    def test_single_sample(self):
        stats = BoxStats.from_samples([0.7])
        assert stats.minimum == stats.maximum == stats.median == 0.7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_samples([])

    def test_as_dict_keys(self):
        stats = BoxStats.from_samples([1.0, 2.0])
        assert set(stats.as_dict()) == {"min", "q1", "median", "q3", "max", "mean", "count"}

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_ordering_property(self, samples):
        stats = BoxStats.from_samples(samples)
        assert (
            stats.minimum
            <= stats.first_quartile
            <= stats.median
            <= stats.third_quartile
            <= stats.maximum
        )
        # The mean may differ from min/max by a rounding ulp when all samples
        # are identical.
        tolerance = 1e-12
        assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance


class TestScalarHelpers:
    def test_speedup(self):
        assert speedup(200, 100) == 2.0
        with pytest.raises(ValueError):
            speedup(100, 0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_normalized_throughput(self):
        assert normalized_throughput_gops(1.0) == 1024.0
        assert normalized_throughput_gops(0.5, num_pes=256, frequency_ghz=2.0) == 512.0
        with pytest.raises(ValueError):
            normalized_throughput_gops(1.5)
        with pytest.raises(ValueError):
            normalized_throughput_gops(0.5, num_pes=0)

    def test_relative_change(self):
        assert relative_change(10, 8) == pytest.approx(-0.2)
        with pytest.raises(ValueError):
            relative_change(0, 1)

    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            average([])


class TestLadderHelpers:
    def test_utilization_gain_ladder(self):
        means = {"a": 0.4, "b": 0.8, "c": 1.0}
        gains = utilization_gain_ladder(means)
        assert gains["b"] == pytest.approx(2.0)
        assert gains["c"] == pytest.approx(1.25)
        assert "a" not in gains

    def test_final_over_each_step(self):
        means = {"a": 0.5, "b": 0.8, "c": 1.0}
        factors = final_over_each_step(means)
        assert factors["a"] == pytest.approx(2.0)
        assert factors["c"] == pytest.approx(1.0)
        assert final_over_each_step({}) == {}

    def test_summarize_by_key(self):
        summary = summarize_by_key({"g": [0.5, 0.7], "c": [1.0]})
        assert summary["g"].mean == pytest.approx(0.6)
        assert summary["c"].count == 1
