"""Tests for the ablation driver and the network-level estimator.

These run small cycle simulations (tiny workload subsets / cropped layers),
checking the *structure* and invariants of the analysis rather than the full
paper sweep, which lives in ``benchmarks/``.
"""

import pytest

from repro.analysis import (
    AblationStudy,
    NetworkPerformanceEstimator,
    representative_crop,
)
from repro.core import FeatureSet
from repro.system import datamaestro_evaluation_system
from repro.workloads import (
    ConvWorkload,
    GemmWorkload,
    NetworkLayer,
    NetworkModel,
    WorkloadGroup,
)

DESIGN = datamaestro_evaluation_system()

TINY_SUITE = {
    WorkloadGroup.GEMM: [GemmWorkload(name="abl_gemm", m=32, n=32, k=64)],
    WorkloadGroup.TRANSPOSED_GEMM: [
        GemmWorkload(name="abl_tgemm", m=32, n=32, k=64, transposed_a=True)
    ],
    WorkloadGroup.CONVOLUTION: [
        ConvWorkload(
            name="abl_conv",
            in_height=10,
            in_width=10,
            in_channels=16,
            out_channels=16,
            kernel_h=3,
            kernel_w=3,
        )
    ],
}


@pytest.fixture(scope="module")
def ablation_results():
    study = AblationStudy(design=DESIGN)
    return study.run(suite=TINY_SUITE, verify_functional=True)


class TestAblationStudy:
    def test_all_steps_and_groups_present(self, ablation_results):
        assert len(ablation_results.steps()) == 6
        assert len(ablation_results.groups()) == 3
        assert len(ablation_results.entries) == 18

    def test_baseline_normalization(self, ablation_results):
        accesses = ablation_results.normalized_access_counts()
        for group in ablation_results.groups():
            assert accesses[group]["1_baseline"] == pytest.approx(1.0)

    def test_utilization_improves_monotonically_enough(self, ablation_results):
        util = ablation_results.mean_utilization()
        for group in ablation_results.groups():
            ladder = util[group]
            assert ladder["6_full"] > ladder["1_baseline"]
            assert ladder["2_prefetch"] > ladder["1_baseline"]

    def test_feature_specific_effects(self, ablation_results):
        util = ablation_results.mean_utilization()
        accesses = ablation_results.normalized_access_counts()
        # Transposer helps the transposed-GeMM group.
        tg = util[WorkloadGroup.TRANSPOSED_GEMM]
        assert tg["3_transposer"] > tg["2_prefetch"]
        # Implicit im2col helps convolution.
        conv = util[WorkloadGroup.CONVOLUTION]
        assert conv["5_im2col"] > conv["4_broadcaster"]
        # Broadcaster reduces accesses everywhere.
        for group in ablation_results.groups():
            assert accesses[group]["4_broadcaster"] < accesses[group]["3_transposer"]

    def test_speedup_and_reduction_summaries(self, ablation_results):
        assert ablation_results.max_speedup() > 1.5
        assert 0.0 < ablation_results.max_access_reduction() < 0.6
        speedups = ablation_results.speedup_over_baseline()
        for group in ablation_results.groups():
            assert speedups[group]["1_baseline"] == pytest.approx(1.0)
            assert speedups[group]["6_full"] > 1.5

    def test_distribution_statistics(self, ablation_results):
        distribution = ablation_results.utilization_distribution()
        for group, by_step in distribution.items():
            for stats in by_step.values():
                assert 0.0 < stats.minimum <= stats.maximum <= 1.0

    def test_step_subset_selection(self):
        study = AblationStudy(design=DESIGN, steps=["1_baseline", "6_full"])
        assert list(study.steps) == ["1_baseline", "6_full"]
        with pytest.raises(ValueError):
            AblationStudy(design=DESIGN, steps=["bogus"])

    def test_workloads_per_group_subsampling(self):
        study = AblationStudy(design=DESIGN, steps=["6_full"])
        suite = {
            WorkloadGroup.GEMM: [
                GemmWorkload(name=f"sub_{i}", m=16, n=16, k=16) for i in range(5)
            ]
        }
        results = study.run(suite=suite, workloads_per_group=2)
        assert len(results.entries) == 2


class TestRepresentativeCrop:
    def test_gemm_crop_caps_dimensions(self):
        layer = GemmWorkload(name="big", m=197, n=2304, k=768)
        crop = representative_crop(layer)
        assert crop.m <= 64 and crop.n <= 64 and crop.k <= 128
        assert crop.transposed_a == layer.transposed_a

    def test_small_gemm_unchanged_dimensions(self):
        layer = GemmWorkload(name="small", m=32, n=48, k=64)
        crop = representative_crop(layer)
        assert (crop.m, crop.n, crop.k) == (32, 48, 64)

    def test_conv_crop_preserves_kernel_and_stride(self):
        layer = ConvWorkload(
            name="big_conv",
            in_height=224,
            in_width=224,
            in_channels=3,
            out_channels=64,
            kernel_h=7,
            kernel_w=7,
            stride=2,
            padding=3,
        )
        crop = representative_crop(layer)
        assert crop.kernel_h == 7 and crop.stride == 2 and crop.padding == 3
        assert crop.out_height <= 14
        assert crop.out_channels <= 32

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            representative_crop("layer")


class TestNetworkEstimator:
    def test_small_network_estimate(self):
        model = NetworkModel(
            name="TinyNet",
            kind="CNN",
            layers=(
                NetworkLayer(
                    ConvWorkload(
                        name="tiny_conv",
                        in_height=16,
                        in_width=16,
                        in_channels=16,
                        out_channels=16,
                        kernel_h=3,
                        kernel_w=3,
                        padding=1,
                    ),
                    count=2,
                ),
                NetworkLayer(GemmWorkload(name="tiny_fc", m=1, n=64, k=256)),
            ),
        )
        estimator = NetworkPerformanceEstimator(design=DESIGN)
        estimate = estimator.estimate_network(model)
        assert 0.5 < estimate.utilization <= 1.0
        assert len(estimate.layers) == 2
        assert estimate.layers[0].count == 2
        assert estimate.total_ideal_cycles > 0
        assert estimate.worst_layer() is not None

    def test_layer_cache_reuses_crops(self):
        estimator = NetworkPerformanceEstimator(design=DESIGN)
        layer = GemmWorkload(name="cache_gemm", m=128, n=256, k=256)
        first = estimator.layer_utilization(layer)
        second = estimator.layer_utilization(layer)
        assert first.utilization == second.utilization

    def test_baseline_features_lower_estimate(self):
        layer = GemmWorkload(name="feat_gemm", m=64, n=64, k=64)
        full = NetworkPerformanceEstimator(design=DESIGN).layer_utilization(layer)
        base = NetworkPerformanceEstimator(
            design=DESIGN, features=FeatureSet.all_disabled()
        ).layer_utilization(layer)
        assert base.utilization < full.utilization
