"""Unit tests for the GeMM core datapath (stream-fed MAC array)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerators import GemmCore, GemmJob
from repro.utils import bytes_to_tile, tile_to_bytes


class FakeSource:
    """Scripted read-stream stand-in delivering pre-packed words."""

    def __init__(self, words, valid_pattern=None):
        self.words = list(words)
        self.index = 0
        self.valid_pattern = valid_pattern
        self.cycle = 0

    def output_valid(self):
        if self.index >= len(self.words):
            return False
        if self.valid_pattern is None:
            return True
        return self.valid_pattern(self.cycle)

    def pop_output(self):
        word = self.words[self.index]
        self.index += 1
        return word

    def tick(self):
        self.cycle += 1


class FakeSink:
    """Collects output words; can be made intermittently unavailable."""

    def __init__(self, ready=True):
        self.words = []
        self.ready = ready

    def input_ready(self):
        return self.ready

    def push_input(self, word):
        if not self.ready:
            raise RuntimeError("pushed while not ready")
        self.words.append(np.asarray(word))


def make_tiles(rng, tiles_m, tiles_n, tiles_k, mu=8, nu=8, ku=8):
    """Generate tile streams plus the expected accumulated outputs."""
    a_words, b_words, c_words, expected = [], [], [], []
    for m2 in range(tiles_m):
        for n2 in range(tiles_n):
            acc = rng.integers(-100, 100, size=(mu, nu)).astype(np.int32)
            c_words.append(tile_to_bytes(acc))
            acc = acc.copy()
            for _ in range(tiles_k):
                a = rng.integers(-64, 64, size=(mu, ku)).astype(np.int8)
                b = rng.integers(-64, 64, size=(ku, nu)).astype(np.int8)
                a_words.append(tile_to_bytes(a))
                b_words.append(tile_to_bytes(b))
                acc = acc + a.astype(np.int32) @ b.astype(np.int32)
            expected.append(acc)
    return a_words, b_words, c_words, expected


def run_core(core, job, a_words, b_words, c_words, sink, max_cycles=10_000):
    core.bind(
        a_stream=FakeSource(a_words),
        b_stream=FakeSource(b_words),
        output_sink=sink,
        c_stream=FakeSource(c_words) if c_words is not None else None,
    )
    core.configure(job)
    cycles = 0
    while core.busy and cycles < max_cycles:
        core.step()
        cycles += 1
    assert core.done, "core did not finish"
    return cycles


class TestGemmCoreFunctional:
    def test_single_tile_single_k(self):
        rng = np.random.default_rng(0)
        a_words, b_words, c_words, expected = make_tiles(rng, 1, 1, 1)
        core = GemmCore()
        sink = FakeSink()
        run_core(core, GemmJob(1, 1, 1), a_words, b_words, c_words, sink)
        result = bytes_to_tile(sink.words[0], (8, 8), np.int32)
        assert np.array_equal(result, expected[0])

    def test_multi_tile_accumulation(self):
        rng = np.random.default_rng(1)
        a_words, b_words, c_words, expected = make_tiles(rng, 2, 3, 4)
        core = GemmCore()
        sink = FakeSink()
        cycles = run_core(core, GemmJob(2, 3, 4), a_words, b_words, c_words, sink)
        assert len(sink.words) == 6
        for word, exp in zip(sink.words, expected):
            assert np.array_equal(bytes_to_tile(word, (8, 8), np.int32), exp)
        assert core.mac_cycles == 2 * 3 * 4
        assert cycles == core.mac_cycles  # no stalls with always-valid streams

    def test_zero_init_without_c_stream(self):
        rng = np.random.default_rng(2)
        a_words, b_words, _, _ = make_tiles(rng, 1, 1, 2)
        core = GemmCore()
        sink = FakeSink()
        job = GemmJob(1, 1, 2, use_init_stream=False)
        run_core(core, job, a_words, b_words, None, sink)
        a0 = bytes_to_tile(a_words[0], (8, 8), np.int8).astype(np.int32)
        b0 = bytes_to_tile(b_words[0], (8, 8), np.int8).astype(np.int32)
        a1 = bytes_to_tile(a_words[1], (8, 8), np.int8).astype(np.int32)
        b1 = bytes_to_tile(b_words[1], (8, 8), np.int8).astype(np.int32)
        expected = a0 @ b0 + a1 @ b1
        assert np.array_equal(bytes_to_tile(sink.words[0], (8, 8), np.int32), expected)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_matches_numpy_for_random_tiles(self, seed):
        rng = np.random.default_rng(seed)
        tiles_m, tiles_n, tiles_k = 1, 2, 3
        a_words, b_words, c_words, expected = make_tiles(rng, tiles_m, tiles_n, tiles_k)
        core = GemmCore()
        sink = FakeSink()
        run_core(core, GemmJob(tiles_m, tiles_n, tiles_k), a_words, b_words, c_words, sink)
        for word, exp in zip(sink.words, expected):
            assert np.array_equal(bytes_to_tile(word, (8, 8), np.int32), exp)


class TestGemmCoreTiming:
    def test_stalls_when_inputs_missing(self):
        rng = np.random.default_rng(3)
        a_words, b_words, c_words, _ = make_tiles(rng, 1, 1, 2)
        core = GemmCore()
        sink = FakeSink()
        # A stream only valid every other cycle.
        core.bind(
            a_stream=FakeSource(a_words, valid_pattern=lambda c: c % 2 == 0),
            b_stream=FakeSource(b_words),
            output_sink=sink,
            c_stream=FakeSource(c_words),
        )
        core.configure(GemmJob(1, 1, 2))
        cycles = 0
        while core.busy and cycles < 100:
            fired = core.step()
            core.a_stream.tick()
            cycles += 1
        assert core.done
        assert core.stall_cycles > 0
        assert core.mac_cycles == 2

    def test_stalls_when_sink_not_ready(self):
        rng = np.random.default_rng(4)
        a_words, b_words, c_words, _ = make_tiles(rng, 1, 1, 1)
        core = GemmCore()
        sink = FakeSink(ready=False)
        core.bind(FakeSource(a_words), FakeSource(b_words), sink, FakeSource(c_words))
        core.configure(GemmJob(1, 1, 1))
        for _ in range(5):
            assert not core.step()
        assert core.stall_cycles == 5
        sink.ready = True
        assert core.step()
        assert core.done

    def test_progress_property(self):
        rng = np.random.default_rng(5)
        a_words, b_words, c_words, _ = make_tiles(rng, 1, 1, 4)
        core = GemmCore()
        sink = FakeSink()
        core.bind(FakeSource(a_words), FakeSource(b_words), sink, FakeSource(c_words))
        core.configure(GemmJob(1, 1, 4))
        assert core.progress == 0.0
        core.step()
        assert core.progress == pytest.approx(0.25)
        while core.busy:
            core.step()
        assert core.progress == 1.0


class TestGemmCoreValidation:
    def test_invalid_job(self):
        with pytest.raises(ValueError):
            GemmJob(0, 1, 1)

    def test_invalid_array_dims(self):
        with pytest.raises(ValueError):
            GemmCore(mu=0)

    def test_init_stream_required_when_requested(self):
        core = GemmCore()
        core.bind(FakeSource([]), FakeSource([]), FakeSink(), c_stream=None)
        with pytest.raises(ValueError):
            core.configure(GemmJob(1, 1, 1, use_init_stream=True))

    def test_step_before_bind_raises(self):
        core = GemmCore()
        core.job = GemmJob(1, 1, 1, use_init_stream=False)
        with pytest.raises(RuntimeError):
            core.step()

    def test_ideal_cycles_and_word_sizes(self):
        core = GemmCore(mu=8, nu=8, ku=8)
        assert core.num_pes == 512
        assert core.a_word_bytes == 64
        assert core.b_word_bytes == 64
        assert core.acc_word_bytes == 256
        assert GemmJob(2, 3, 4).ideal_compute_cycles == 24
