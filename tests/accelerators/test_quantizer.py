"""Unit tests for the quantization accelerator (rescale D32 -> E8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerators import QuantizationConfig, Quantizer, rescale_tile
from repro.utils import bytes_to_tile, tile_to_bytes


class CollectingSink:
    def __init__(self):
        self.words = []
        self.ready = True

    def input_ready(self):
        return self.ready

    def push_input(self, word):
        self.words.append(np.asarray(word))


class TestRescaleTile:
    def test_identity_config(self):
        tile = np.array([[1, -2], [100, -100]], dtype=np.int32)
        out = rescale_tile(tile, QuantizationConfig())
        assert np.array_equal(out, tile.astype(np.int8))

    def test_shift_with_rounding(self):
        tile = np.array([[7, 8, -7, -8]], dtype=np.int32)
        out = rescale_tile(tile, QuantizationConfig(multiplier=1, shift=3))
        # (x + 4) >> 3: round-half-up with an arithmetic (floor) shift, the
        # usual fixed-point hardware behaviour.
        assert list(out[0]) == [1, 1, -1, -1]

    def test_saturation(self):
        tile = np.array([[1000, -1000]], dtype=np.int32)
        out = rescale_tile(tile, QuantizationConfig())
        assert list(out[0]) == [127, -128]

    def test_zero_point(self):
        tile = np.array([[0, 10]], dtype=np.int32)
        out = rescale_tile(tile, QuantizationConfig(zero_point=5))
        assert list(out[0]) == [5, 15]

    def test_per_channel_multiplier(self):
        tile = np.array([[10, 10, 10]], dtype=np.int32)
        config = QuantizationConfig(multiplier=np.array([1, 2, 3]), shift=0)
        out = rescale_tile(tile, config)
        assert list(out[0]) == [10, 20, 30]

    def test_per_channel_size_mismatch(self):
        tile = np.zeros((2, 4), dtype=np.int32)
        with pytest.raises(ValueError):
            rescale_tile(tile, QuantizationConfig(multiplier=np.array([1, 2])))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            QuantizationConfig(shift=-1)
        with pytest.raises(ValueError):
            QuantizationConfig(shift=40)
        with pytest.raises(ValueError):
            QuantizationConfig(zero_point=300)

    @given(
        shift=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_always_in_int8_range(self, shift, seed):
        rng = np.random.default_rng(seed)
        tile = rng.integers(-(2**20), 2**20, size=(4, 4)).astype(np.int32)
        out = rescale_tile(tile, QuantizationConfig(multiplier=1, shift=shift))
        assert out.dtype == np.int8
        assert out.min() >= -128 and out.max() <= 127


class TestQuantizerUnit:
    def test_processes_tile_to_sink(self):
        quantizer = Quantizer(rows=8, cols=8)
        sink = CollectingSink()
        quantizer.bind(sink)
        quantizer.configure(QuantizationConfig(multiplier=1, shift=4))
        tile = np.arange(64, dtype=np.int32).reshape(8, 8) * 16
        quantizer.push_input(tile_to_bytes(tile))
        assert quantizer.busy
        assert quantizer.step()
        assert not quantizer.busy
        out = bytes_to_tile(sink.words[0], (8, 8), np.int8)
        assert np.array_equal(out, rescale_tile(tile, quantizer.config))

    def test_input_ready_respects_queue_depth(self):
        quantizer = Quantizer(rows=8, cols=8, queue_depth=1)
        quantizer.bind(CollectingSink())
        tile = tile_to_bytes(np.zeros((8, 8), dtype=np.int32))
        assert quantizer.input_ready()
        quantizer.push_input(tile)
        assert not quantizer.input_ready()
        with pytest.raises(RuntimeError):
            quantizer.push_input(tile)

    def test_stalls_when_sink_not_ready(self):
        quantizer = Quantizer()
        sink = CollectingSink()
        sink.ready = False
        quantizer.bind(sink)
        quantizer.push_input(tile_to_bytes(np.zeros((8, 8), dtype=np.int32)))
        assert not quantizer.step()
        assert quantizer.stall_cycles == 1
        sink.ready = True
        assert quantizer.step()
        assert quantizer.tiles_processed == 1

    def test_step_without_sink_raises(self):
        quantizer = Quantizer()
        quantizer.push_input(tile_to_bytes(np.zeros((8, 8), dtype=np.int32)))
        with pytest.raises(RuntimeError):
            quantizer.step()

    def test_idle_step_is_noop(self):
        quantizer = Quantizer()
        quantizer.bind(CollectingSink())
        assert not quantizer.step()
        assert quantizer.statistics()["tiles_processed"] == 0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Quantizer(rows=0)
