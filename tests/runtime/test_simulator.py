"""Tests for the Simulator facade, sweeps and warm-cache experiment reruns."""

import pytest

from repro.core import ablation_feature_sets
from repro.experiments import fig7_ablation
from repro.runtime import SimJob, Simulator, simulate
from repro.workloads import GemmWorkload

GEMM = GemmWorkload(name="sim_gemm", m=16, n=16, k=32)


class TestSimulate:
    def test_single_job_outcome_shape(self):
        outcome = Simulator().simulate(SimJob(workload=GEMM))
        assert outcome.workload_name == "sim_gemm"
        assert 0.0 < outcome.utilization <= 1.0
        assert outcome.functional_match is True
        assert outcome.provenance["package_version"]
        assert outcome.provenance["backend"] == "datamaestro"

    def test_module_level_simulate(self):
        outcome = simulate(SimJob(workload=GEMM))
        assert outcome.kernel_cycles > 0

    def test_cache_round_trip_counts(self, tmp_path):
        simulator = Simulator(cache_dir=tmp_path)
        job = SimJob(workload=GEMM)
        first = simulator.simulate(job)
        second = simulator.simulate(job)
        assert simulator.stats.executed == 1
        assert simulator.stats.cache_hits == 1
        assert not first.cache_hit and second.cache_hit
        assert first.utilization == second.utilization


class TestSweep:
    def test_feature_ladder_sweep_order(self):
        ladder = ablation_feature_sets()
        steps = ["1_baseline", "6_full"]
        workloads = [
            GEMM,
            GemmWorkload(name="sim_gemm_2", m=16, n=16, k=16),
        ]
        outcomes = Simulator().sweep(
            workloads, features=[ladder[step] for step in steps]
        )
        # Nesting order: for feature-set / for workload.
        assert [o.workload_name for o in outcomes] == [
            "sim_gemm",
            "sim_gemm_2",
            "sim_gemm",
            "sim_gemm_2",
        ]
        baseline, full = outcomes[0], outcomes[2]
        assert full.utilization > baseline.utilization

    def test_backend_axis(self):
        outcomes = Simulator().sweep(
            [GEMM], backends=("datamaestro", "baseline:feather")
        )
        assert [o.backend for o in outcomes] == ["datamaestro", "baseline:feather"]


class TestWarmCacheExperimentRerun:
    def test_fig7_rerun_with_warm_cache_simulates_nothing(self, tmp_path):
        """Acceptance: a repeated fig7 run with a warm cache performs zero new
        cycle-level simulations and produces an identical report."""
        cold = Simulator(cache_dir=tmp_path)
        first = fig7_ablation.run(workloads_per_group=1, full=False, simulator=cold)
        assert cold.stats.executed == first["num_simulations"] == 18

        warm = Simulator(cache_dir=tmp_path)
        second = fig7_ablation.run(workloads_per_group=1, full=False, simulator=warm)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == 18
        assert fig7_ablation.report(first) == fig7_ablation.report(second)

    def test_shared_cache_across_facade_and_batch(self, tmp_path):
        jobs = [SimJob(workload=GEMM)]
        Simulator(cache_dir=tmp_path).simulate_many(jobs)
        warm = Simulator(cache_dir=tmp_path)
        outcome = warm.simulate(jobs[0])
        assert outcome.cache_hit
        assert warm.stats.executed == 0
