"""Tests for the on-disk content-addressed result cache."""

import pickle

from repro.runtime import ResultCache, SimJob, Simulator
from repro.system import datamaestro_evaluation_system
from repro.workloads import GemmWorkload

GEMM = GemmWorkload(name="cache_gemm", m=16, n=16, k=16)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SimJob(workload=GEMM)
        key = job.job_hash()
        assert cache.get(key) is None

        outcome = Simulator(cache=cache).simulate(job)
        assert not outcome.cache_hit
        assert key in cache

        cached = cache.get(key)
        assert cached is not None
        assert cached.cache_hit
        assert cached.utilization == outcome.utilization
        assert cached.result is not None  # full cycle-level payload survives

    def test_invalidation_on_design_change(self, tmp_path):
        """A different design is a different key: no stale reuse."""
        cache = ResultCache(tmp_path)
        simulator = Simulator(cache=cache)
        simulator.simulate(SimJob(workload=GEMM))
        assert simulator.stats.executed == 1

        small = datamaestro_evaluation_system(num_banks=32, gima_group_size=8)
        outcome = simulator.simulate(SimJob(workload=GEMM, design=small))
        assert simulator.stats.executed == 2  # design change forced a re-run
        assert not outcome.cache_hit
        assert len(cache) == 2

    def test_version_partitions_entries(self, tmp_path):
        job = SimJob(workload=GEMM)
        old = ResultCache(tmp_path, version="0.9.9")
        Simulator(cache=old).simulate(job)

        new = ResultCache(tmp_path, version="1.0.0")
        assert new.get(job.job_hash()) is None  # version bump invalidates
        assert old.get(job.job_hash()) is not None

    def test_corrupt_entry_treated_as_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = SimJob(workload=GEMM).job_hash()
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert key not in cache

    def test_truncated_entry_treated_as_miss_and_recoverable(self, tmp_path):
        """A valid entry cut short (killed writer, full disk) must read as a
        miss — never raise — and the next put/get cycle must heal it."""
        cache = ResultCache(tmp_path)
        job = SimJob(workload=GEMM)
        key = job.job_hash()
        outcome = Simulator(cache=cache).simulate(job)

        payload = cache.path_for(key).read_bytes()
        for cut in (1, len(payload) // 2, len(payload) - 1):
            cache.path_for(key).write_bytes(payload[:cut])
            assert cache.get(key) is None
            assert key not in cache  # the damaged file was removed

        cache.put(key, outcome)
        healed = cache.get(key)
        assert healed is not None
        assert healed.utilization == outcome.utilization

    def test_empty_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = SimJob(workload=GEMM).job_hash()
        cache.path_for(key).write_bytes(b"")
        assert cache.get(key) is None
        assert key not in cache

    def test_garbage_entry_of_valid_pickle_opcodes_rejected(self, tmp_path):
        """Random bytes that happen to start like a pickle stream still miss."""
        cache = ResultCache(tmp_path)
        key = SimJob(workload=GEMM).job_hash()
        cache.path_for(key).write_bytes(b"\x80\x04\x95\xff\xff\xff\xff" + b"\x00" * 32)
        assert cache.get(key) is None

    def test_corrupt_entry_does_not_count_as_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = SimJob(workload=GEMM).job_hash()
        cache.path_for(key).write_bytes(b"junk")
        cache.get(key)
        assert cache.hits == 0 and cache.misses == 1

    def test_foreign_pickle_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = SimJob(workload=GEMM).job_hash()
        cache.path_for(key).write_bytes(pickle.dumps({"not": "an outcome"}))
        assert cache.get(key) is None

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        Simulator(cache=cache).simulate(SimJob(workload=GEMM))
        assert len(cache) == 1
        stats = cache.stats()
        assert stats["entries"] == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestPrune:
    """LRU-by-mtime eviction (`prune`) — the long-running-service bound."""

    @staticmethod
    def _fill(cache, count):
        """Store `count` analytic outcomes with strictly increasing mtimes."""
        import os

        from repro.runtime import SimOutcome

        keys = []
        for index in range(count):
            job = SimJob(workload=GEMM, seed=index, backend="baseline:feather")
            key = job.job_hash()
            cache.put(
                key,
                SimOutcome.analytic(job, utilization=0.5, ideal_compute_cycles=64),
            )
            # Deterministic recency regardless of filesystem granularity.
            os.utime(cache.path_for(key), (1000 + index, 1000 + index))
            keys.append(key)
        return keys

    def test_prune_by_entries_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = self._fill(cache, 5)
        report = cache.prune(max_entries=2)
        assert report.removed == 3 and report.remaining == 2
        assert [key in cache for key in keys] == [False, False, False, True, True]

    def test_prune_by_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = self._fill(cache, 4)
        sizes = [cache.path_for(key).stat().st_size for key in keys]
        report = cache.prune(max_bytes=sum(sizes[2:]))
        assert report.removed == 2
        assert report.bytes_freed == sum(sizes[:2])
        assert report.bytes_remaining == sum(sizes[2:])
        assert cache.size_bytes() == sum(sizes[2:])

    def test_prune_both_bounds_apply(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 6)
        report = cache.prune(max_entries=5, max_bytes=0)
        assert report.removed == 6  # the tighter (bytes) bound wins
        assert len(cache) == 0

    def test_counted_get_refreshes_recency(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        keys = self._fill(cache, 3)
        # Serve the oldest entry, then re-age the others around it: the
        # touched entry must survive an entries=1 prune.
        assert cache.get(keys[0]) is not None
        os.utime(cache.path_for(keys[1]), (500, 500))
        os.utime(cache.path_for(keys[2]), (501, 501))
        cache.prune(max_entries=1)
        assert keys[0] in cache
        assert keys[1] not in cache and keys[2] not in cache

    def test_prune_requires_a_bound(self, tmp_path):
        import pytest

        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.prune()
        with pytest.raises(ValueError):
            cache.prune(max_entries=-1)
        with pytest.raises(ValueError):
            cache.prune(max_bytes=-5)

    def test_prune_noop_within_bounds(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 2)
        report = cache.prune(max_entries=10, max_bytes=10**9)
        assert report.removed == 0 and report.bytes_freed == 0
        assert report.remaining == 2
        assert len(cache) == 2

    def test_stats_reports_size_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 2)
        assert cache.stats()["size_bytes"] == cache.size_bytes() > 0


class TestConcurrentWriters:
    """The guarantees the sharded cluster leans on: many processes write
    the same cache directory; entries are atomic and self-healing."""

    @staticmethod
    def _outcome(tag):
        job = SimJob(workload=GemmWorkload(name=f"cc_{tag}", m=8, n=8, k=8))
        return job, Simulator(cache=None).simulate(job)

    def test_racing_writers_on_one_key_install_a_whole_entry(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path)
        job, outcome = self._outcome(0)
        key = job.job_hash()
        threads = [
            threading.Thread(target=cache.put, args=(key, outcome))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        # Exactly one entry, readable, no stray temp files left behind.
        cached = cache.get(key)
        assert cached is not None and cached.cache_hit
        assert len(cache) == 1
        assert not list(cache.directory.glob("*.tmp"))

    def test_multiprocess_writers_share_one_directory(self, tmp_path):
        """Forked children (the shard-worker shape) write back concurrently."""
        import multiprocessing

        pairs = [self._outcome(tag) for tag in range(4)]
        context = multiprocessing.get_context("fork")

        def write(root, key, outcome):
            ResultCache(root).put(key, outcome)

        processes = [
            context.Process(args=(tmp_path, job.job_hash(), outcome), target=write)
            for job, outcome in pairs
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(30)
            assert process.exitcode == 0
        cache = ResultCache(tmp_path)
        assert len(cache) == len(pairs)
        for job, _ in pairs:
            assert cache.get(job.job_hash()) is not None

    def test_put_survives_directory_deleted_underneath(self, tmp_path):
        import shutil

        cache = ResultCache(tmp_path)
        job, outcome = self._outcome(9)
        shutil.rmtree(cache.directory)  # external rm -rf mid-flight
        cache.put(job.job_hash(), outcome)  # recreated + retried, not raised
        assert cache.get(job.job_hash()) is not None
