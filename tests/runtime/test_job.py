"""Tests for the declarative SimJob spec and its stable content hash."""

import os
import subprocess
import sys

import pytest

from repro.core import FeatureSet
from repro.runtime import SimJob, canonical_encode, stable_digest
from repro.system import datamaestro_evaluation_system
from repro.workloads import ConvWorkload, GemmWorkload

GEMM = GemmWorkload(name="job_gemm", m=32, n=32, k=32)


class TestSimJob:
    def test_defaults_resolved_eagerly(self):
        job = SimJob(workload=GEMM)
        assert job.design.name == "datamaestro_evaluation_system"
        assert job.features == FeatureSet.all_enabled()
        assert job.backend == "datamaestro"

    def test_jobs_are_hashable_and_comparable(self):
        a = SimJob(workload=GEMM)
        b = SimJob(workload=GEMM)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_label_excluded_from_equality_and_hash(self):
        a = SimJob(workload=GEMM, label="first")
        b = SimJob(workload=GEMM, label="second")
        assert a == b
        assert a.job_hash() == b.job_hash()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SimJob(workload=GEMM, backend="")
        with pytest.raises(ValueError):
            SimJob(workload=GEMM, max_cycles=0)

    def test_describe_contains_provenance_fields(self):
        info = SimJob(workload=GEMM, label="probe").describe()
        assert info["workload"] == "job_gemm"
        assert info["backend"] == "datamaestro"
        assert info["label"] == "probe"
        assert len(info["job_hash"]) == 64


class TestJobHash:
    def test_hash_changes_with_workload(self):
        a = SimJob(workload=GEMM)
        b = SimJob(workload=GemmWorkload(name="job_gemm", m=32, n=32, k=64))
        assert a.job_hash() != b.job_hash()

    def test_hash_changes_with_features(self):
        a = SimJob(workload=GEMM)
        b = SimJob(workload=GEMM, features=FeatureSet.all_disabled())
        assert a.job_hash() != b.job_hash()

    def test_hash_changes_with_design(self):
        a = SimJob(workload=GEMM)
        b = SimJob(workload=GEMM, design=datamaestro_evaluation_system(num_banks=32))
        assert a.job_hash() != b.job_hash()

    def test_hash_changes_with_backend_and_seed(self):
        base = SimJob(workload=GEMM)
        assert base.job_hash() != SimJob(workload=GEMM, seed=7).job_hash()
        assert (
            base.job_hash()
            != SimJob(workload=GEMM, backend="baseline:feather").job_hash()
        )

    def test_hash_stable_within_process(self):
        job = SimJob(
            workload=ConvWorkload(
                name="job_conv",
                in_height=8,
                in_width=8,
                in_channels=8,
                out_channels=8,
                padding=1,
            )
        )
        assert job.job_hash() == job.job_hash()

    def test_hash_stable_across_processes(self):
        """The digest must not depend on interpreter hash randomisation."""
        job = SimJob(workload=GEMM, seed=3)
        script = (
            "from repro.runtime import SimJob\n"
            "from repro.workloads import GemmWorkload\n"
            "job = SimJob(workload=GemmWorkload(name='job_gemm', m=32, n=32, k=32), seed=3)\n"
            "print(job.job_hash())\n"
        )
        digests = set()
        for salt in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=salt)
            output = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            ).stdout.strip()
            digests.add(output)
        digests.add(job.job_hash())
        assert len(digests) == 1


class TestCanonicalEncoding:
    def test_dicts_sorted(self):
        assert stable_digest({"b": 1, "a": 2}) == stable_digest({"a": 2, "b": 1})

    def test_dataclass_and_enum_encoding(self):
        encoded = canonical_encode(GEMM)
        assert encoded[0] == "GemmWorkload"
        assert ["m", 32] in encoded[1]

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError):
            canonical_encode(object())
