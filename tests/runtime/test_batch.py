"""Tests for BatchRunner: ordering, dedup, pool execution, backend parity."""

import pytest

from repro.baselines import create_baseline
from repro.runtime import BatchRunner, ResultCache, SimJob, Simulator, get_backend
from repro.workloads import GemmWorkload

WORKLOADS = [
    GemmWorkload(name=f"batch_gemm_{size}", m=size, n=size, k=size)
    for size in (8, 16, 24, 32)
]


def make_jobs():
    return [SimJob(workload=workload) for workload in WORKLOADS]


class TestOrdering:
    def test_serial_order_matches_submission(self):
        outcomes = BatchRunner().run(make_jobs())
        assert [o.workload_name for o in outcomes] == [w.name for w in WORKLOADS]

    def test_pool_order_matches_submission(self):
        """Process-pool fan-out must preserve submission order exactly."""
        serial = BatchRunner().run(make_jobs())
        pooled = BatchRunner(max_workers=2).run(make_jobs())
        assert [o.workload_name for o in pooled] == [w.name for w in WORKLOADS]
        for a, b in zip(serial, pooled):
            assert a.utilization == b.utilization
            assert a.kernel_cycles == b.kernel_cycles
            assert a.job_hash == b.job_hash

    def test_pool_order_with_cache_prefill(self, tmp_path):
        """Mixed hit/miss batches still come back in submission order."""
        cache = ResultCache(tmp_path)
        # Pre-warm only the middle two jobs.
        jobs = make_jobs()
        BatchRunner(cache=cache).run(jobs[1:3])
        runner = BatchRunner(cache=cache, max_workers=2)
        outcomes = runner.run(jobs)
        assert [o.workload_name for o in outcomes] == [w.name for w in WORKLOADS]
        assert [o.cache_hit for o in outcomes] == [False, True, True, False]
        assert runner.stats.cache_hits == 2
        assert runner.stats.executed == 2


class TestDedup:
    def test_duplicate_jobs_simulated_once(self):
        job = SimJob(workload=WORKLOADS[0])
        runner = BatchRunner()
        outcomes = runner.run([job, job, job])
        assert runner.stats.executed == 1
        assert runner.stats.deduplicated == 2
        assert len(outcomes) == 3
        assert len({o.job_hash for o in outcomes}) == 1


class TestBaselineParity:
    @pytest.mark.parametrize(
        "slug", ["gemmini-os", "gemmini-ws", "bitwave", "feather"]
    )
    def test_backend_matches_direct_model_invocation(self, slug):
        workload = WORKLOADS[3]
        job = SimJob(workload=workload, backend=f"baseline:{slug}")
        outcome = get_backend(job.backend).execute(job)
        direct = create_baseline(slug).utilization(workload)
        assert outcome.utilization == pytest.approx(direct)
        assert outcome.metrics["analytic"] is True
        assert outcome.result is None

    def test_mixed_backend_batch(self):
        # Paper-scale kernel: the measured DataMaestro system beats the
        # strongest analytic baseline (tiny kernels are fill/drain-bound).
        workload = GemmWorkload(name="batch_gemm_64", m=64, n=64, k=64)
        jobs = [
            SimJob(workload=workload),
            SimJob(workload=workload, backend="baseline:feather"),
        ]
        measured, modelled = Simulator().simulate_many(jobs)
        assert measured.backend == "datamaestro"
        assert modelled.backend == "baseline:feather"
        assert measured.utilization > modelled.utilization

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("baseline:bogus")


class TestCacheAccounting:
    """BatchStats and ResultCache counters must agree after batch runs.

    Screening goes through the cache's single counted lookup path (get),
    so after any sequence of runs against one fresh cache:
    hits match, misses match, and misses == executed + deduplicated.
    """

    def assert_consistent(self, runner, cache):
        assert runner.stats.cache_hits == cache.hits
        assert runner.stats.cache_misses == cache.misses
        assert (
            runner.stats.cache_misses
            == runner.stats.executed + runner.stats.deduplicated
        )

    def test_cold_then_warm_batch(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = BatchRunner(cache=cache)
        runner.run(make_jobs())
        assert runner.stats.cache_hits == 0
        assert runner.stats.cache_misses == len(WORKLOADS)
        self.assert_consistent(runner, cache)
        runner.run(make_jobs())
        assert runner.stats.cache_hits == len(WORKLOADS)
        self.assert_consistent(runner, cache)

    def test_duplicates_screen_through_counted_path(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = BatchRunner(cache=cache)
        job = SimJob(workload=WORKLOADS[0])
        runner.run([job, job, job])
        # Every occurrence is screened once: three counted misses, one
        # execution, two dedups.
        assert runner.stats.cache_misses == 3
        assert runner.stats.executed == 1
        assert runner.stats.deduplicated == 2
        self.assert_consistent(runner, cache)
        runner.run([job, job])
        assert runner.stats.cache_hits == 2
        self.assert_consistent(runner, cache)

    def test_simulator_facade_counts_the_same_way(self, tmp_path):
        cache = ResultCache(tmp_path)
        simulator = Simulator(cache=cache)
        job = SimJob(workload=WORKLOADS[0])
        simulator.simulate(job)
        simulator.simulate(job)
        simulator.simulate_many([job, SimJob(workload=WORKLOADS[1])])
        assert simulator.stats.cache_hits == cache.hits == 2
        assert simulator.stats.cache_misses == cache.misses == 2


class TestWorkerNormalization:
    def test_zero_workers_runs_in_process(self, monkeypatch):
        """max_workers=0 must never reach the ProcessPoolExecutor."""
        import concurrent.futures

        def forbidden(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor constructed for 0 workers")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", forbidden
        )
        runner = BatchRunner(max_workers=0)
        outcomes = runner.run(make_jobs())
        assert [o.workload_name for o in outcomes] == [w.name for w in WORKLOADS]
        assert runner.stats.executed == len(WORKLOADS)

    def test_zero_workers_through_simulator(self, monkeypatch):
        import concurrent.futures

        monkeypatch.setattr(
            concurrent.futures,
            "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("pool used")),
        )
        simulator = Simulator(max_workers=0)
        outcomes = simulator.simulate_many(make_jobs()[:2])
        assert len(outcomes) == 2

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(max_workers=-1)
