"""Macro-step (steady-span) fast-path parity on its adversarial corners.

The vectorized fast path (:mod:`repro.engine.steady`) must stay
bit-identical to lockstep exactly where its assumptions are most fragile:

* **single-cycle kernels** — ``tiles_k == 1`` completes an output tile on
  every firing cycle, so boundary bookkeeping runs at maximum rate;
* **steady state broken mid-span by a bank conflict** — the compute-bound
  kernel's B operand shifts its bank pattern every tile, so the planner
  must truncate spans right before the deviating period and let the
  per-cycle loop arbitrate the conflicts (conflict counts are part of the
  parity assertion);
* **deadlocks** — a kernel that streams steadily (and macro-jumps) before
  starving must raise the same :class:`SimulationLimitError` at the same
  cycle with the same report as lockstep, including mid-kernel budget
  exhaustion that lands inside what would have been a steady span.

It also pins down the protocol plumbing: the fast path engages on the
compute-bound kernel (this is the PR's performance claim), stays inert
under ``macro_stepping=False``, and reports its activity via
``steady_stats``.
"""

import dataclasses

import pytest

from repro.compiler import compile_workload
from repro.core.csr import encode_runtime_config
from repro.core.params import FeatureSet
from repro.engine import EventDrivenEngine, supports_macro_protocol
from repro.sim import SimulationLimitError
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import GemmWorkload

from test_parity import assert_parity, assert_results_identical, run_engine

DESIGN = datamaestro_evaluation_system()


def compute_bound_workload():
    """The benchmark kernel: dense 64x64x64 GeMM, >99% utilization."""
    return GemmWorkload(name="macro_cb", m=64, n=64, k=64)


# ----------------------------------------------------------------------
# Single-cycle kernels: a tile boundary on every firing cycle.
# ----------------------------------------------------------------------
class TestSingleCycleKernels:
    @pytest.mark.parametrize(
        "workload",
        [
            GemmWorkload(name="macro_single_tile", m=8, n=8, k=8),
            GemmWorkload(name="macro_k8", m=64, n=64, k=8),
            GemmWorkload(name="macro_m8", m=8, n=64, k=64),
            GemmWorkload(name="macro_k8_quant", m=32, n=32, k=8, quantize=True),
        ],
        ids=lambda workload: workload.name,
    )
    def test_parity(self, workload):
        assert_parity(workload)


# ----------------------------------------------------------------------
# Steady state broken mid-span by bank conflicts.
# ----------------------------------------------------------------------
class TestConflictBrokenSteadyState:
    def test_conflicting_steady_state_is_exact(self):
        """The kernel both macro-jumps and arbitrates recurring conflicts.

        The compute-bound GeMM's write burst conflicts on every tile and
        its B operand shifts banks each tile, so spans are truncated by
        the vectorized bank-pattern check; parity on conflict counts and
        per-streamer retry statistics proves the truncation is exact.
        """
        workload = compute_bound_workload()
        system_l, lockstep = run_engine("lockstep", workload)
        system_e, event = run_engine("event", workload)
        assert_results_identical(lockstep, event)
        assert event.bank_conflicts > 0, "corner needs recurring conflicts"
        stats = system_e.steady_stats()
        assert stats["jumps"] >= 1, "fast path never engaged"
        assert stats["bails"].get("bank_pattern", 0) >= 1, (
            "corner needs a bank-pattern break mid-stream"
        )

    def test_group_interleaved_variants(self):
        """Sweep addressing-mode configs so bank patterns differ."""
        for group_size in (64, 16, 1):
            design = dataclasses.replace(
                DESIGN, name=f"macro_gima_{group_size}"
            )
            workload = GemmWorkload(
                name=f"macro_gima_{group_size}", m=32, n=32, k=64
            )
            assert_parity(workload, design=design)


# ----------------------------------------------------------------------
# Deadlocks and budget exhaustion around the fast path.
# ----------------------------------------------------------------------
class TestDeadlockAndBudget:
    def starved_after_steady_program(self):
        """A's AGU holds half its bundles: steady streaming, then starvation."""
        workload = compute_bound_workload()
        program = compile_workload(workload, DESIGN, FeatureSet.all_enabled())
        short = program.streamer_configs["A"].with_updates(
            temporal_bounds=(8, 8, 4)
        )
        program.streamer_configs["A"] = short
        program.csr_writes["A"] = encode_runtime_config(
            DESIGN.streamer("A"), short, list(DESIGN.group_size_options())
        )
        return program

    def test_deadlock_after_steady_phase_identical(self):
        errors = {}
        stats = {}
        for engine in ("lockstep", "event"):
            system = AcceleratorSystem(DESIGN)
            with pytest.raises(SimulationLimitError) as excinfo:
                system.run(
                    self.starved_after_steady_program(),
                    max_cycles=5_000,
                    engine=engine,
                )
            errors[engine] = excinfo.value
            stats[engine] = system.steady_stats()
        assert errors["lockstep"].cycles == errors["event"].cycles == 5_000
        assert errors["lockstep"].detail == errors["event"].detail
        # The deadlock must have been preceded by real macro jumps,
        # otherwise this corner degenerates to the plain deadlock test.
        assert stats["event"]["jumps"] >= 1

    def test_budget_exhaustion_inside_steady_phase(self):
        """A budget that expires mid-steady-state must error identically."""
        workload = compute_bound_workload()
        errors = {}
        for engine in ("lockstep", "event"):
            system = AcceleratorSystem(DESIGN)
            program = compile_workload(
                workload, DESIGN, FeatureSet.all_enabled()
            )
            with pytest.raises(SimulationLimitError) as excinfo:
                system.run(program, max_cycles=300, engine=engine)
            errors[engine] = excinfo.value
        assert errors["lockstep"].cycles == errors["event"].cycles == 300
        assert errors["lockstep"].detail == errors["event"].detail


# ----------------------------------------------------------------------
# Protocol plumbing.
# ----------------------------------------------------------------------
class TestMacroProtocol:
    def test_fast_path_engages_on_compute_bound(self):
        system, result = run_engine("event", compute_bound_workload())
        stats = system.steady_stats()
        assert stats["jumps"] >= 1
        assert stats["cycles_skipped"] > result.streaming_cycles // 2, (
            "fast path must cover the majority of a compute-bound kernel"
        )

    def test_macro_stepping_disable_matches(self):
        """macro_stepping=False reproduces PR 3's pure next-event engine."""
        workload = compute_bound_workload()
        program = compile_workload(workload, DESIGN, FeatureSet.all_enabled())
        plain = AcceleratorSystem(DESIGN)
        result_plain = plain.run(
            program, engine=EventDrivenEngine(macro_stepping=False)
        )
        # The planner is created lazily on first steady_span(); with
        # macro-stepping off it never exists at all.
        assert plain.steady_stats() == {}
        fast = AcceleratorSystem(DESIGN)
        result_fast = fast.run(program, engine="event")
        assert fast.steady_stats()["jumps"] >= 1
        assert_results_identical(result_plain, result_fast)

    def test_system_advertises_macro_protocol(self):
        assert supports_macro_protocol(AcceleratorSystem(DESIGN))

    def test_steady_span_zero_off_boundary(self):
        system = AcceleratorSystem(DESIGN)
        program = compile_workload(
            compute_bound_workload(), DESIGN, FeatureSet.all_enabled()
        )
        system.load_program(program)
        assert system.steady_span(1_000_000) == 0  # no tile completed yet
        system.step()
        # One step cannot complete a tile (the pipeline is still filling).
        assert system.steady_span(1_000_000) == 0

    def test_steady_stats_shape(self):
        system, _ = run_engine("event", compute_bound_workload())
        stats = system.steady_stats()
        assert set(stats) == {
            "boundaries",
            "attempts",
            "jumps",
            "periods_replayed",
            "cycles_skipped",
            "bails",
        }
        assert stats["boundaries"] >= stats["attempts"] >= stats["jumps"]
