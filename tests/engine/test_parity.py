"""Lockstep ≡ event-driven parity suite.

The event-driven scheduler (:mod:`repro.engine.event`) must be *bit-identical*
to the legacy lockstep loop: same cycle counts, same bank-conflict counts,
same per-streamer statistics, same extracted output tensors.  This suite
enforces that across the experiment workloads:

* the fig4 workload (the 4x4x4 GeMM whose address sequence the paper prints);
* the fig7 ablation suite — one workload per group through the whole ①–⑥
  feature ladder (including the prefetch-disabled baseline, the engine's
  biggest skip opportunity);
* the table3 networks — representative crops of the unique layers of every
  network in :mod:`repro.workloads.networks` (a stratified subset per network
  by default; set ``REPRO_FULL_SUITE=1`` to cover every unique layer);
* a latency-bound design variant (deep memory latency, shallow FIFOs) where
  the event engine skips long spans and must still bulk-apply every stall
  counter exactly;
* a deadlock, where both engines must raise the same
  :class:`SimulationLimitError` at the same cycle with the same report.
"""


import numpy as np
import pytest

from repro.analysis.network_perf import representative_crop
from repro.compiler import compile_workload
from repro.config import get_config
from repro.core.params import FeatureSet, ablation_feature_sets
from repro.sim import SimulationLimitError
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import GemmWorkload
from repro.workloads.networks import benchmark_networks
from repro.workloads.synthetic import stratified_subset, synthetic_suite

DESIGN = datamaestro_evaluation_system()
ENGINES = ("lockstep", "event")

FULL_SUITE = get_config().full_suite
#: Crops per network in the default (subset) run.
CROPS_PER_NETWORK = 3


def run_engine(engine, workload, design=None, features=None, seed=0, max_cycles=None):
    design = design or DESIGN
    program = compile_workload(
        workload, design, features or FeatureSet.all_enabled(), seed=seed
    )
    system = AcceleratorSystem(design)
    kwargs = {} if max_cycles is None else {"max_cycles": max_cycles}
    result = system.run(program, engine=engine, **kwargs)
    return system, result


def assert_results_identical(lockstep, event):
    """Full structural comparison of two :class:`SimulationResult` objects."""
    assert lockstep.streaming_cycles == event.streaming_cycles
    assert lockstep.prepass_cycles == event.prepass_cycles
    assert lockstep.kernel_cycles == event.kernel_cycles
    assert lockstep.bank_conflicts == event.bank_conflicts
    assert lockstep.memory_reads == event.memory_reads
    assert lockstep.memory_writes == event.memory_writes
    assert lockstep.counters == event.counters
    assert lockstep.utilization == event.utilization
    assert set(lockstep.streamer_stats) == set(event.streamer_stats)
    for port, stats in lockstep.streamer_stats.items():
        assert stats.as_dict() == event.streamer_stats[port].as_dict(), port
    assert set(lockstep.outputs) == set(event.outputs)
    for name, tensor in lockstep.outputs.items():
        assert np.array_equal(tensor, event.outputs[name]), name


def assert_parity(workload, design=None, features=None, seed=0):
    system_l, lockstep = run_engine("lockstep", workload, design, features, seed)
    system_e, event = run_engine("event", workload, design, features, seed)
    assert_results_identical(lockstep, event)
    # Functional verdict against the numpy oracle must agree too.
    assert system_l.verify_outputs(lockstep) == system_e.verify_outputs(event)


# ----------------------------------------------------------------------
# fig4: the paper's address-generation example workload.
# ----------------------------------------------------------------------
class TestFig4Workload:
    def test_fig4_gemm(self):
        assert_parity(GemmWorkload(name="parity_fig4", m=4, n=4, k=4))


# ----------------------------------------------------------------------
# fig7: the ablation suite through the whole feature ladder.
# ----------------------------------------------------------------------
def fig7_points():
    points = []
    for group, workloads in synthetic_suite().items():
        workload = stratified_subset(workloads, 1)[0]
        for step, features in ablation_feature_sets().items():
            points.append(
                pytest.param(
                    workload, features, id=f"{group.value}-{step}"
                )
            )
    return points


class TestFig7Ablation:
    @pytest.mark.parametrize("workload, features", fig7_points())
    def test_ladder_step(self, workload, features):
        assert_parity(workload, features=features)


# ----------------------------------------------------------------------
# table3: every network in repro.workloads.networks.
# ----------------------------------------------------------------------
def network_crops():
    """Representative crops of the unique layers of every network."""
    crops = {}
    for model in benchmark_networks().values():
        layers = model.unique_workloads()
        if not FULL_SUITE:
            layers = stratified_subset(layers, CROPS_PER_NETWORK)
        for workload in layers:
            crop = representative_crop(workload)
            crops.setdefault(crop.name, crop)
    return [pytest.param(crop, id=name) for name, crop in sorted(crops.items())]


class TestTable3Networks:
    @pytest.mark.parametrize("crop", network_crops())
    def test_network_layer_crop(self, crop):
        assert_parity(crop)


# ----------------------------------------------------------------------
# Latency-bound corner: long skip spans, exact stall accounting.
# ----------------------------------------------------------------------
class TestLatencyBoundDesign:
    @pytest.fixture(scope="class")
    def slow_design(self):
        import dataclasses

        memory = dataclasses.replace(DESIGN.memory, read_latency=24)
        return dataclasses.replace(DESIGN, name="parity_slow_mem", memory=memory)

    def test_prefetch_disabled_high_latency(self, slow_design):
        """The ablation baseline on slow memory: mostly idle, all skippable."""
        import dataclasses

        features = dataclasses.replace(
            FeatureSet.all_enabled(), fine_grained_prefetch=False
        )
        assert_parity(
            GemmWorkload(name="parity_bw_bound", m=32, n=32, k=64),
            design=slow_design,
            features=features,
        )

    def test_prefetch_enabled_high_latency(self, slow_design):
        assert_parity(
            GemmWorkload(name="parity_latency_prefetch", m=32, n=32, k=64),
            design=slow_design,
        )

    def test_quantized_workload_high_latency(self, slow_design):
        assert_parity(
            GemmWorkload(name="parity_latency_quant", m=32, n=32, k=32, quantize=True),
            design=slow_design,
        )


# ----------------------------------------------------------------------
# Deadlocks: identical SimulationLimitError under both engines — fast.
# ----------------------------------------------------------------------
class TestDeadlockParity:
    def starved_program(self):
        """An AGU programmed with too few iterations starves the core."""
        from repro.core.csr import encode_runtime_config

        workload = GemmWorkload(name="parity_deadlock", m=16, n=16, k=16)
        program = compile_workload(workload, DESIGN, FeatureSet.all_enabled())
        short = program.streamer_configs["A"].with_updates(temporal_bounds=(1, 1, 1))
        program.streamer_configs["A"] = short
        program.csr_writes["A"] = encode_runtime_config(
            DESIGN.streamer("A"), short, list(DESIGN.group_size_options())
        )
        return program

    def test_same_error_same_cycle_same_report(self):
        errors = {}
        for engine in ENGINES:
            system = AcceleratorSystem(DESIGN)
            with pytest.raises(SimulationLimitError) as excinfo:
                system.run(self.starved_program(), max_cycles=5_000, engine=engine)
            errors[engine] = excinfo.value
        lockstep, event = errors["lockstep"], errors["event"]
        assert lockstep.cycles == event.cycles == 5_000
        assert lockstep.message == event.message
        # The deadlock report reflects identical (bulk-advanced) state.
        assert lockstep.detail == event.detail
        assert "bundles=" in event.detail and "busy=" in event.detail
        assert "parity_deadlock" in str(event)

    def test_event_engine_reaches_large_budgets_instantly(self):
        """The deadlock fast-path makes huge budgets affordable."""
        system = AcceleratorSystem(DESIGN)
        with pytest.raises(SimulationLimitError) as excinfo:
            system.run(self.starved_program(), max_cycles=50_000_000, engine="event")
        assert excinfo.value.cycles == 50_000_000
