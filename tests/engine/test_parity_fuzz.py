"""Property-based engine-parity fuzzing over generated workloads.

The hand-picked parity suite (``test_parity.py``) proves event ≡ lockstep on
the paper's workloads; this suite proves it on workloads *nobody picked*.
For dozens of seeded random cases per scenario family (conv/GeMM boxes plus
the transformer-era shapes: prefill, decode, ragged groups, MoE dispatch),
every workload is simulated three ways —

* the lockstep reference loop,
* the event engine with macro-stepping (the default), and
* the event engine with macro-stepping disabled —

and all three must agree bit-for-bit: cycle counts, bank conflicts,
per-streamer statistics and output tensors.  A failing case is minimised
with the generator's shrinker and the failure message carries a
ready-to-paste regression test, so a red CI run converts directly into a
permanent test case.

Scale: ≥ 25 cases by default, ≥ 200 under ``REPRO_FULL_SUITE=1``; the base
seed comes from the ``fuzz_seed`` fixture (``REPRO_FUZZ_SEED``).
"""

import pytest
from test_parity import assert_results_identical

from repro.compiler import compile_workload
from repro.config import get_config
from repro.core.params import FeatureSet
from repro.engine import EventDrivenEngine
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import FAMILIES, WorkloadGenerator, regression_snippet, shrink

DESIGN = datamaestro_evaluation_system()

#: Cases per family: 7 families × 4 = 28 cases default, 7 × 29 = 203 full.
CASES_PER_FAMILY = 29 if get_config().full_suite else 4


def _engine_results(workload, seed):
    """Simulate ``workload`` under all three engine configurations."""
    results = {}
    for label, engine in (
        ("lockstep", "lockstep"),
        ("event_macro", "event"),
        ("event_nomacro", EventDrivenEngine(macro_stepping=False)),
    ):
        program = compile_workload(
            workload, DESIGN, FeatureSet.all_enabled(), seed=seed
        )
        system = AcceleratorSystem(DESIGN)
        results[label] = (system, system.run(program, engine=engine))
    return results


def _check_parity(workload, seed):
    """Raise AssertionError unless all three configurations agree exactly."""
    results = _engine_results(workload, seed)
    system_l, lockstep = results["lockstep"]
    system_m, macro_on = results["event_macro"]
    system_n, macro_off = results["event_nomacro"]
    assert_results_identical(lockstep, macro_on)
    assert_results_identical(macro_on, macro_off)
    verdicts = {
        system_l.verify_outputs(lockstep),
        system_m.verify_outputs(macro_on),
        system_n.verify_outputs(macro_off),
    }
    assert len(verdicts) == 1, "engines disagree on the functional verdict"


def _parity_fails(workload, seed):
    """Shrinker predicate: True while the (shrunken) case still diverges."""
    try:
        _check_parity(workload, seed)
    except AssertionError:
        return True
    return False


@pytest.mark.parametrize("family", FAMILIES)
def test_random_workloads_hold_parity(family, fuzz_seed):
    """event ≡ lockstep and macro-on ≡ macro-off on every generated case."""
    generator = WorkloadGenerator(seed=fuzz_seed, families=(family,))
    for case in generator.draw_many(CASES_PER_FAMILY, family):
        for workload in case.workloads:
            if not _parity_fails(workload, fuzz_seed):
                continue
            minimal = shrink(workload, lambda w: _parity_fails(w, fuzz_seed))
            pytest.fail(
                f"engine parity violated by generated case {case.family!r} "
                f"(REPRO_FUZZ_SEED={fuzz_seed}); shrunken counterexample "
                f"{minimal!r} — paste this into tests/engine/test_parity.py:"
                f"\n\n{regression_snippet(minimal, seed=fuzz_seed)}"
            )


def test_suite_meets_the_minimum_case_count(fuzz_seed):
    """The acceptance bar: ≥ 25 default cases, ≥ 200 under the full suite."""
    total = CASES_PER_FAMILY * len(FAMILIES)
    floor = 200 if get_config().full_suite else 25
    assert total >= floor
    # And the draws are real: a generator replays the same sequence.
    first = WorkloadGenerator(seed=fuzz_seed).draw_many(5)
    again = WorkloadGenerator(seed=fuzz_seed).draw_many(5)
    assert [c.workloads for c in first] == [c.workloads for c in again]
