"""Unit tests of the simulation engines, the event protocol and the runtime
plumbing around the ``engine`` job field."""

import pytest

from repro.baselines import AnalyticCycleModel, create_baseline
from repro.engine import (
    DEFAULT_ENGINE,
    EVENT_ENGINE,
    LOCKSTEP_ENGINE,
    EventDrivenEngine,
    LockstepEngine,
    available_engines,
    get_engine,
    supports_event_protocol,
    validate_engine,
)
from repro.memory.addressing import BankGeometry
from repro.memory.subsystem import MemoryRequest, MemorySubsystem
from repro.runtime import SimJob, Simulator
from repro.sim import CycleRunner, DEFAULT_CYCLE_BUDGET, SimulationLimitError
from repro.sim.runner import run_to_completion
from repro.workloads import GemmWorkload


class PlainTarget:
    """Steppable without the event protocol."""

    def __init__(self, cycles):
        self.remaining = cycles
        self.stepped = 0

    def step(self):
        self.stepped += 1
        self.remaining -= 1
        return self.remaining > 0


class BurstyTarget:
    """Event-protocol target: one active cycle, then a long timed wait."""

    def __init__(self, bursts, wait):
        self.bursts = bursts
        self.wait = wait
        self.cycle = 0
        self.fired = 0
        self.stepped = 0
        self.idle_applied = 0
        self.last_step_activity = 0
        self._next_fire = 0

    @property
    def done(self):
        return self.fired >= self.bursts

    def step(self):
        self.stepped += 1
        if not self.done and self.cycle == self._next_fire:
            self.fired += 1
            self.last_step_activity = 1
            self._next_fire = self.cycle + 1 + self.wait
        else:
            self.last_step_activity = 0
        self.cycle += 1
        return not self.done

    def next_event_cycle(self):
        return None if self.done else self._next_fire

    def advance(self, cycles):
        self.cycle += cycles
        self.idle_applied += cycles


class TestRegistry:
    def test_available_engines(self):
        assert available_engines() == [EVENT_ENGINE, LOCKSTEP_ENGINE]
        assert DEFAULT_ENGINE == EVENT_ENGINE

    def test_get_engine(self):
        assert isinstance(get_engine("event"), EventDrivenEngine)
        assert isinstance(get_engine("lockstep"), LockstepEngine)
        with pytest.raises(KeyError):
            get_engine("warp-drive")

    def test_validate_engine(self):
        assert validate_engine("event") == "event"
        with pytest.raises(ValueError):
            validate_engine("warp-drive")

    def test_protocol_detection(self):
        assert not supports_event_protocol(PlainTarget(3))
        assert supports_event_protocol(BurstyTarget(1, 1))
        assert supports_event_protocol(AnalyticCycleModel("m", 10))


class TestEventScheduling:
    def test_skips_timed_waits_exactly(self):
        """3 bursts firing at cycles 0/100/200: 201 cycles in 5 real steps.

        Each wait costs one probe step (the fixpoint detection) and one bulk
        advance over the remaining 98 idle cycles.
        """
        target = BurstyTarget(bursts=3, wait=99)
        cycles = EventDrivenEngine().drive(target, max_cycles=10_000)
        assert cycles == 201
        assert target.idle_applied == 196  # two 98-cycle spans bulk-applied
        assert target.stepped == cycles - target.idle_applied == 5

    def test_matches_lockstep_cycle_count(self):
        event = BurstyTarget(bursts=5, wait=17)
        lockstep = BurstyTarget(bursts=5, wait=17)
        assert EventDrivenEngine().drive(event, max_cycles=10_000) == LockstepEngine().drive(
            lockstep, max_cycles=10_000
        )
        assert lockstep.stepped == event.stepped + event.idle_applied

    def test_plain_target_rejected(self):
        with pytest.raises(TypeError):
            EventDrivenEngine().drive(PlainTarget(3), max_cycles=10)

    def test_deadlock_fast_forwards_to_budget(self):
        class Stuck(BurstyTarget):
            def next_event_cycle(self):
                return None

        target = Stuck(bursts=2, wait=1)
        target._next_fire = -1  # never fires again
        with pytest.raises(SimulationLimitError) as excinfo:
            EventDrivenEngine().drive(target, max_cycles=1_000_000, describe="stuck sim")
        assert excinfo.value.cycles == 1_000_000
        assert "stuck sim" in str(excinfo.value)
        assert target.stepped == 1  # one fixpoint probe, then the fast path
        assert target.idle_applied == 1_000_000 - 1

    def test_budget_respected_mid_span(self):
        """An event beyond the budget must not jump past it."""
        target = BurstyTarget(bursts=2, wait=10_000)
        with pytest.raises(SimulationLimitError) as excinfo:
            EventDrivenEngine().drive(target, max_cycles=500)
        assert excinfo.value.cycles == 500

    def test_progress_callback_fires_across_bulk_advances(self):
        seen = []
        target = BurstyTarget(bursts=2, wait=249)
        EventDrivenEngine().drive(
            target,
            max_cycles=10_000,
            progress_callback=seen.append,
            progress_interval=100,
        )
        # One call per crossed boundary group: the jump from 1 to 250 reports
        # once (at 250), the step train around 251 reports nothing new, etc.
        assert seen  # fired at least once
        assert all(c % 100 == 0 or c >= 100 for c in seen)
        assert seen == sorted(seen)


class TestCycleRunnerIntegration:
    def test_auto_selects_lockstep_for_plain_targets(self):
        target = PlainTarget(25)
        assert CycleRunner(max_cycles=100).run(target) == 25
        assert target.stepped == 25

    def test_auto_selects_event_for_protocol_targets(self):
        target = BurstyTarget(bursts=2, wait=499)
        assert CycleRunner(max_cycles=10_000).run(target) == 501
        assert target.stepped < 10  # the wait was skipped, not stepped

    def test_engine_override_forces_lockstep(self):
        target = BurstyTarget(bursts=2, wait=499)
        assert CycleRunner(max_cycles=10_000, engine="lockstep").run(target) == 501
        assert target.stepped == 501

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            CycleRunner(engine="warp-drive")

    def test_default_budget_is_shared_constant(self):
        assert CycleRunner().max_cycles == DEFAULT_CYCLE_BUDGET
        assert SimJob(workload=GemmWorkload(name="b", m=8, n=8, k=8)).max_cycles == (
            DEFAULT_CYCLE_BUDGET
        )

    def test_run_to_completion_engine_passthrough(self):
        target = BurstyTarget(bursts=1, wait=0)
        assert run_to_completion(target, engine="event") == 1


class TestAnalyticBaselineModels:
    def test_event_engine_completes_in_two_steps(self):
        model = AnalyticCycleModel("gemmini:test", total_cycles=123_456)
        cycles = CycleRunner().run(model)
        assert cycles == 123_456
        assert model.skipped_cycles == 123_456 - 2

    def test_lockstep_agrees(self):
        event = AnalyticCycleModel("m", 500)
        lockstep = AnalyticCycleModel("m", 500)
        assert CycleRunner(engine="event").run(event) == 500
        assert CycleRunner(engine="lockstep").run(lockstep) == 500
        assert lockstep.skipped_cycles == 0

    def test_baseline_model_adapter(self):
        model = create_baseline("gemmini-ws")
        workload = GemmWorkload(name="baseline_adapter", m=64, n=64, k=64)
        target = model.analytic_cycle_model(workload)
        expected = target.total_cycles
        assert CycleRunner().run(target) == expected
        # Consistent with the model's utilization estimate.
        ideal = workload.ideal_compute_cycles(8, 8, 8)
        assert expected == max(1, round(ideal / model.utilization(workload)))

    def test_invalid_total_rejected(self):
        with pytest.raises(ValueError):
            AnalyticCycleModel("m", 0)

    def test_baseline_backend_drives_the_adapter(self):
        """``baseline:<slug>`` outcomes are produced through the runner."""
        job = SimJob(
            workload=GemmWorkload(name="baseline_backend", m=64, n=64, k=64),
            backend="baseline:gemmini-ws",
        )
        outcome = Simulator().simulate(job)
        assert outcome.metrics["driver_cycles"] == outcome.kernel_cycles > 0


class TestMemoryNextEvent:
    def make_memory(self, latency=4):
        geometry = BankGeometry(num_banks=4, bank_width_bytes=8, bank_depth=64)
        return MemorySubsystem(geometry, read_latency=latency)

    def test_idle_memory_has_no_events(self):
        assert self.make_memory().next_event_cycle() is None

    def test_pending_request_is_immediate(self):
        memory = self.make_memory()
        memory.submit(MemoryRequest(requester="t", is_write=False, bank=0, line=0))
        assert memory.next_event_cycle() == memory.cycle

    def test_in_flight_response_schedules_its_delivery(self):
        memory = self.make_memory(latency=4)
        memory.submit(MemoryRequest(requester="t", is_write=False, bank=0, line=0))
        memory.step()  # grant at cycle 0 -> ready at cycle 4
        assert memory.cycle == 1
        assert memory.next_event_cycle() == 4
        memory.advance(3)
        assert memory.cycle == 4
        assert memory.deliver() == 1
        assert memory.collect_responses("t")
        assert memory.next_event_cycle() is None

    def test_matured_but_uncollected_response_is_immediate(self):
        memory = self.make_memory(latency=1)
        memory.submit(MemoryRequest(requester="t", is_write=False, bank=0, line=0))
        memory.step()
        memory.deliver()
        assert memory.next_event_cycle() == memory.cycle

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            self.make_memory().advance(-1)


class TestJobEngineField:
    def job(self, **kwargs):
        return SimJob(workload=GemmWorkload(name="je", m=16, n=16, k=16), **kwargs)

    def test_default_engine(self):
        assert self.job().engine == DEFAULT_ENGINE

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            self.job(engine="warp-drive")

    def test_engine_changes_job_hash(self):
        assert self.job(engine="event").job_hash() != self.job(engine="lockstep").job_hash()

    def test_engine_in_describe_and_provenance(self):
        job = self.job(engine="lockstep")
        assert job.describe()["engine"] == "lockstep"
        outcome = Simulator().simulate(job)
        assert outcome.provenance["engine"] == "lockstep"
        assert outcome.result.metadata["engine"] == "lockstep"

    def test_cross_engine_runs_do_not_share_cache_entries(self, tmp_path):
        """Same job, different engine: both simulate, neither poisons the other."""
        sim = Simulator(cache_dir=tmp_path)
        first = sim.simulate(self.job(engine="event"))
        assert sim.stats.executed == 1
        second = sim.simulate(self.job(engine="lockstep"))
        assert sim.stats.executed == 2  # cache miss: engines never collide
        assert sim.stats.cache_hits == 0
        # Parity means the numbers agree even though the entries are distinct.
        assert first.kernel_cycles == second.kernel_cycles
        assert first.job_hash != second.job_hash
        # Warm re-runs hit their own engine's entry.
        warm = Simulator(cache_dir=tmp_path)
        assert warm.simulate(self.job(engine="lockstep")).cache_hit
        assert warm.stats.executed == 0

    def test_sweep_engine_threads_through(self):
        sim = Simulator()
        outcomes = sim.sweep(
            [GemmWorkload(name="sweep_engine", m=16, n=16, k=16)], engine="lockstep"
        )
        assert outcomes[0].provenance["engine"] == "lockstep"
