"""Tests for the layer-tiling front end (scratchpad-resident tiles)."""

import pytest

from repro.compiler import compile_workload
from repro.compiler.tiling import (
    DEFAULT_TILE_BUDGET_BYTES,
    TilingError,
    conv_tile_footprint,
    gemm_tile_footprint,
    tile_convolution,
    tile_gemm,
    tile_workload,
)
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import ConvWorkload, GemmWorkload, vgg16

DESIGN = datamaestro_evaluation_system()
MU, NU, KU = 8, 8, 8


class TestGemmTiling:
    def test_small_layer_is_a_single_tile(self):
        workload = GemmWorkload(name="tile_small", m=64, n=64, k=64)
        plan = tile_gemm(workload)
        assert plan.is_single_tile
        assert plan.tiles[0].workload is workload

    def test_large_layer_is_split_and_fits_budget(self):
        workload = GemmWorkload(name="tile_big", m=512, n=512, k=512)
        plan = tile_gemm(workload)
        assert plan.num_tiles > 1
        for tile in plan.workloads():
            assert gemm_tile_footprint(tile.m, tile.n, tile.k) <= plan.budget_bytes

    def test_ideal_cycles_are_preserved(self):
        workload = GemmWorkload(name="tile_cycles", m=256, n=384, k=256)
        plan = tile_gemm(workload)
        assert plan.total_ideal_cycles(MU, NU, KU) == workload.ideal_compute_cycles(
            MU, NU, KU
        )

    def test_bert_ffn_layer_tiles(self):
        workload = GemmWorkload(name="tile_ffn", m=128, n=3072, k=768)
        plan = tile_gemm(workload)
        assert plan.num_tiles > 1
        assert plan.total_ideal_cycles(MU, NU, KU) == workload.ideal_compute_cycles(
            MU, NU, KU
        )

    def test_k_split_marks_accumulation_passes(self):
        workload = GemmWorkload(name="tile_ksplit", m=64, n=64, k=8192)
        plan = tile_gemm(workload)
        assert plan.requires_accumulation()
        first_pass = [t for t in plan.tiles if t.accumulation_pass == 0]
        later_pass = [t for t in plan.tiles if t.accumulation_pass > 0]
        assert all(t.workload.with_bias for t in first_pass)
        assert not any(t.workload.with_bias for t in later_pass)

    def test_k_split_can_be_disallowed(self):
        workload = GemmWorkload(name="tile_nok", m=8, n=8, k=1 << 17)
        with pytest.raises(TilingError):
            tile_gemm(workload, allow_k_split=False)

    def test_offsets_cover_the_output(self):
        workload = GemmWorkload(name="tile_cover", m=256, n=256, k=128)
        plan = tile_gemm(workload)
        covered_rows = {
            (t.row_offset, t.row_offset + t.workload.m) for t in plan.tiles
        }
        assert min(start for start, _ in covered_rows) == 0
        assert max(end for _, end in covered_rows) == workload.m

    def test_tiles_are_simulatable(self):
        """Every tile of a big layer compiles and runs on the real system."""
        workload = GemmWorkload(name="tile_sim", m=256, n=256, k=256)
        plan = tile_gemm(workload)
        system = AcceleratorSystem(DESIGN)
        tile = plan.workloads()[0]
        program = compile_workload(tile, DESIGN)
        result = system.run(program)
        assert result.utilization > 0.9


class TestConvTiling:
    def test_small_layer_single_tile(self):
        workload = ConvWorkload(
            name="ctile_small",
            in_height=14,
            in_width=14,
            in_channels=16,
            out_channels=32,
            kernel_h=3,
            kernel_w=3,
            padding=1,
        )
        assert tile_convolution(workload).is_single_tile

    def test_vgg_layer_is_split_and_fits_budget(self):
        layer = vgg16().layers[3].workload  # 112x112x128 -> 128, 3x3
        plan = tile_convolution(layer)
        assert plan.num_tiles > 1
        for tile in plan.workloads():
            assert conv_tile_footprint(tile) <= plan.budget_bytes
            assert tile.kernel_h == layer.kernel_h
            assert tile.stride == layer.stride

    def test_output_rows_covered(self):
        layer = ConvWorkload(
            name="ctile_rows",
            in_height=64,
            in_width=64,
            in_channels=64,
            out_channels=64,
            kernel_h=3,
            kernel_w=3,
            padding=1,
        )
        plan = tile_convolution(layer)
        rows = sorted({t.row_offset for t in plan.tiles})
        assert rows[0] == 0
        total_rows = sum(
            t.workload.out_height for t in plan.tiles if t.col_offset == 0
        )
        assert total_rows >= layer.out_height

    def test_channel_split_covers_all_channels(self):
        layer = ConvWorkload(
            name="ctile_ch",
            in_height=28,
            in_width=28,
            in_channels=256,
            out_channels=512,
            kernel_h=3,
            kernel_w=3,
            padding=1,
        )
        plan = tile_convolution(layer)
        first_row_tiles = [t for t in plan.tiles if t.row_offset == 0]
        assert sum(t.workload.out_channels for t in first_row_tiles) == 512


class TestDispatch:
    def test_dispatch(self):
        assert tile_workload(GemmWorkload(name="d", m=8, n=8, k=8)).is_single_tile
        with pytest.raises(TypeError):
            tile_workload(3.14)

    def test_budget_parameter_respected(self):
        workload = GemmWorkload(name="tb", m=128, n=128, k=128)
        tight = tile_workload(workload, budget_bytes=32 * 1024)
        loose = tile_workload(workload, budget_bytes=DEFAULT_TILE_BUDGET_BYTES)
        assert tight.num_tiles > loose.num_tiles
