"""Tests for the numpy oracle kernels (GeMM, conv2d, im2col)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import conv2d_reference, gemm_reference, im2col_reference


class TestGemmReference:
    def test_matches_numpy_matmul(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-64, 64, size=(5, 7)).astype(np.int8)
        b = rng.integers(-64, 64, size=(7, 3)).astype(np.int8)
        assert np.array_equal(
            gemm_reference(a, b), a.astype(np.int32) @ b.astype(np.int32)
        )

    def test_bias_added_per_column(self):
        a = np.ones((2, 2), dtype=np.int8)
        b = np.ones((2, 2), dtype=np.int8)
        bias = np.array([10, -10], dtype=np.int32)
        out = gemm_reference(a, b, bias)
        assert np.array_equal(out, np.array([[12, -8], [12, -8]]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            gemm_reference(np.zeros((2, 3), dtype=np.int8), np.zeros((2, 3), dtype=np.int8))
        with pytest.raises(ValueError):
            gemm_reference(
                np.zeros((2, 2), dtype=np.int8),
                np.zeros((2, 2), dtype=np.int8),
                bias=np.zeros(3, dtype=np.int32),
            )

    def test_int32_accumulation_no_overflow_in_int8(self):
        a = np.full((1, 64), 127, dtype=np.int8)
        b = np.full((64, 1), 127, dtype=np.int8)
        assert gemm_reference(a, b)[0, 0] == 64 * 127 * 127


class TestConvReference:
    def test_identity_kernel(self):
        fmap = np.arange(4 * 4, dtype=np.int64).astype(np.int8).reshape(4, 4, 1)
        weights = np.zeros((1, 1, 1, 1), dtype=np.int8)
        weights[0, 0, 0, 0] = 1
        out = conv2d_reference(fmap, weights)
        assert np.array_equal(out[:, :, 0], fmap[:, :, 0].astype(np.int32))

    def test_against_explicit_im2col_gemm(self):
        rng = np.random.default_rng(1)
        fmap = rng.integers(-16, 16, size=(6, 6, 4)).astype(np.int8)
        weights = rng.integers(-16, 16, size=(3, 3, 4, 5)).astype(np.int8)
        direct = conv2d_reference(fmap, weights, stride=1, padding=1)
        matrix = im2col_reference(fmap, 3, 3, stride=1, padding=1).astype(np.int32)
        flat_weights = weights.reshape(-1, 5).astype(np.int32)
        via_gemm = (matrix @ flat_weights).reshape(6, 6, 5)
        assert np.array_equal(direct, via_gemm)

    def test_stride_and_padding_shapes(self):
        fmap = np.zeros((9, 9, 2), dtype=np.int8)
        weights = np.zeros((3, 3, 2, 4), dtype=np.int8)
        assert conv2d_reference(fmap, weights, stride=2, padding=1).shape == (5, 5, 4)
        assert conv2d_reference(fmap, weights, stride=1, padding=0).shape == (7, 7, 4)

    def test_bias(self):
        fmap = np.zeros((3, 3, 1), dtype=np.int8)
        weights = np.zeros((1, 1, 1, 2), dtype=np.int8)
        out = conv2d_reference(fmap, weights, bias=np.array([3, -4], dtype=np.int32))
        assert np.array_equal(out[0, 0], np.array([3, -4]))

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            conv2d_reference(
                np.zeros((4, 4, 3), dtype=np.int8), np.zeros((3, 3, 2, 4), dtype=np.int8)
            )

    def test_invalid_parameters(self):
        fmap = np.zeros((4, 4, 2), dtype=np.int8)
        weights = np.zeros((3, 3, 2, 4), dtype=np.int8)
        with pytest.raises(ValueError):
            conv2d_reference(fmap, weights, stride=0)
        with pytest.raises(ValueError):
            conv2d_reference(fmap, weights, padding=-1)
        with pytest.raises(ValueError):
            conv2d_reference(np.zeros((2, 2, 2), dtype=np.int8), weights)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        stride=st.integers(min_value=1, max_value=2),
        padding=st.integers(min_value=0, max_value=1),
        kernel=st.sampled_from([1, 3]),
    )
    @settings(max_examples=30, deadline=None)
    def test_linearity_property(self, seed, stride, padding, kernel):
        """conv(2*x) == 2*conv(x) for zero-bias convolutions."""
        rng = np.random.default_rng(seed)
        fmap = rng.integers(-20, 20, size=(6, 6, 3)).astype(np.int8)
        weights = rng.integers(-8, 8, size=(kernel, kernel, 3, 4)).astype(np.int8)
        single = conv2d_reference(fmap, weights, stride=stride, padding=padding)
        doubled = conv2d_reference(
            (fmap.astype(np.int32) * 2).astype(np.int8), weights, stride=stride, padding=padding
        )
        assert np.array_equal(doubled, 2 * single)


class TestIm2colReference:
    def test_shape(self):
        fmap = np.zeros((5, 5, 3), dtype=np.int8)
        matrix = im2col_reference(fmap, 3, 3)
        assert matrix.shape == (9, 27)

    def test_pointwise_is_flattening(self):
        fmap = np.arange(2 * 2 * 3, dtype=np.int64).astype(np.int8).reshape(2, 2, 3)
        matrix = im2col_reference(fmap, 1, 1)
        assert np.array_equal(matrix, fmap.reshape(4, 3))
