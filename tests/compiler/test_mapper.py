"""Tests for the workload-to-system compiler (runtime config generation)."""

import numpy as np
import pytest

from repro.compiler import compile_conv, compile_gemm, compile_workload
from repro.core import FeatureSet, reference_address_sequence
from repro.core.agu import reference_temporal_addresses
from repro.memory import decode_address
from repro.system import datamaestro_evaluation_system
from repro.workloads import ConvWorkload, GemmWorkload

DESIGN = datamaestro_evaluation_system()
FULL = FeatureSet.all_enabled()


def gemm_workload(**overrides):
    params = dict(name="map_gemm", m=16, n=24, k=32)
    params.update(overrides)
    return GemmWorkload(**params)


def conv_workload(**overrides):
    params = dict(
        name="map_conv",
        in_height=10,
        in_width=10,
        in_channels=16,
        out_channels=16,
        kernel_h=3,
        kernel_w=3,
        stride=1,
        padding=1,
    )
    params.update(overrides)
    return ConvWorkload(**params)


class TestGemmCompilation:
    def test_job_tiling(self):
        program = compile_gemm(gemm_workload(), DESIGN, FULL)
        assert (program.job.tiles_m, program.job.tiles_n, program.job.tiles_k) == (2, 3, 4)
        assert program.ideal_compute_cycles == 24

    def test_streamer_word_counts_match_job(self):
        program = compile_gemm(gemm_workload(), DESIGN, FULL)
        job = program.job
        assert program.streamer_configs["A"].total_iterations == job.ideal_compute_cycles
        assert program.streamer_configs["B"].total_iterations == job.ideal_compute_cycles
        assert program.streamer_configs["C"].total_iterations == job.output_tiles
        assert program.streamer_configs["D"].total_iterations == job.output_tiles

    def test_a_stream_addresses_stay_inside_region(self):
        program = compile_gemm(gemm_workload(), DESIGN, FULL)
        config = program.streamer_configs["A"]
        load = next(l for l in program.tensor_loads if l.name == "A")
        addresses = reference_address_sequence(
            config.temporal_bounds,
            config.temporal_strides,
            DESIGN.streamer("A").spatial_bounds,
            config.spatial_strides,
            config.base_address,
        )
        flat = [a for bundle in addresses for a in bundle]
        assert min(flat) >= load.base_address
        assert max(flat) + 8 <= load.base_address + load.size_bytes

    def test_a_stream_reads_first_tile_first(self):
        """The first wide word assembled by port A is the first A tile."""
        workload = gemm_workload()
        program = compile_gemm(workload, DESIGN, FULL)
        config = program.streamer_configs["A"]
        load = next(l for l in program.tensor_loads if l.name == "A")
        first_addresses = reference_address_sequence(
            config.temporal_bounds,
            config.temporal_strides,
            DESIGN.streamer("A").spatial_bounds,
            config.spatial_strides,
            config.base_address,
        )[0]
        word = np.concatenate(
            [
                load.data[a - load.base_address : a - load.base_address + 8]
                for a in first_addresses
            ]
        )
        assert word.size == 64

    def test_broadcaster_config(self):
        program = compile_gemm(gemm_workload(), DESIGN, FULL)
        config = program.streamer_configs["C"]
        assert config.active_channels == 4
        assert config.extension_enables == (True,)
        assert dict(config.extension_params_dict()["broadcaster"])["factor"] == 8

    def test_broadcaster_disabled_materialises_full_tiles(self):
        features = FULL.with_updates(broadcaster=False)
        program = compile_gemm(gemm_workload(), DESIGN, features)
        config = program.streamer_configs["C"]
        assert config.active_channels is None
        c_load = next(l for l in program.tensor_loads if l.name == "C")
        # Full init tiles: tiles_m * tiles_n * 256 bytes instead of Nt*32.
        assert c_load.size_bytes == 2 * 3 * 256

    def test_transposed_gemm_uses_transposer(self):
        program = compile_gemm(gemm_workload(transposed_a=True), DESIGN, FULL)
        assert program.streamer_configs["A"].extension_enables == (True,)
        assert not program.prepasses

    def test_transposed_gemm_without_feature_adds_prepass(self):
        features = FULL.with_updates(transposer=False)
        program = compile_gemm(gemm_workload(transposed_a=True), DESIGN, features)
        assert program.streamer_configs["A"].extension_enables == (False,)
        assert program.prepasses[0].name == "software_transpose_A"
        assert program.prepasses[0].word_accesses > 0

    def test_quantized_gemm_uses_port_e(self):
        program = compile_gemm(gemm_workload(quantize=True), DESIGN, FULL)
        assert "E" in program.streamer_configs
        assert "D" not in program.streamer_configs
        assert program.uses_quantizer
        assert program.quant_config.shift >= 0

    def test_no_bias_drops_port_c(self):
        program = compile_gemm(gemm_workload(with_bias=False), DESIGN, FULL)
        assert "C" not in program.streamer_configs
        assert not program.job.use_init_stream

    def test_addressing_mode_selection(self):
        switched = compile_gemm(gemm_workload(), DESIGN, FULL)
        flat = compile_gemm(
            gemm_workload(), DESIGN, FULL.with_updates(addressing_mode_switching=False)
        )
        assert switched.streamer_configs["A"].bank_group_size == 16
        assert flat.streamer_configs["A"].bank_group_size == DESIGN.memory.num_banks

    def test_operand_regions_in_disjoint_bank_groups(self):
        program = compile_gemm(gemm_workload(), DESIGN, FULL)
        geometry = DESIGN.memory.geometry()
        banks_by_port = {}
        for load in program.tensor_loads:
            banks = set()
            for offset in range(0, load.size_bytes, 8):
                banks.add(
                    decode_address(
                        load.base_address + offset, geometry, load.group_size
                    ).bank
                )
            banks_by_port[load.name] = banks
        assert banks_by_port["A"].isdisjoint(banks_by_port["B"])

    def test_csr_writes_emitted_for_every_port(self):
        program = compile_gemm(gemm_workload(), DESIGN, FULL)
        assert set(program.csr_writes) == set(program.streamer_configs)
        for writes in program.csr_writes.values():
            assert all(isinstance(offset, int) for offset, _ in writes)

    def test_describe_summary(self):
        program = compile_gemm(gemm_workload(), DESIGN, FULL)
        summary = program.describe()
        assert summary["workload"] == "map_gemm"
        assert summary["tiles"] == (2, 3, 4)
        assert summary["active_ports"] == ["A", "B", "C", "D"]


class TestConvCompilation:
    def test_job_tiling(self):
        program = compile_conv(conv_workload(), DESIGN, FULL)
        # 10x10 input, 3x3 pad 1 -> 10x10 output; tiles_x = 2, tiles_m = 20.
        assert program.job.tiles_m == 20
        assert program.job.tiles_n == 2
        assert program.job.tiles_k == 9 * 2

    def test_a_stream_is_six_dimensional(self):
        program = compile_conv(conv_workload(), DESIGN, FULL)
        config = program.streamer_configs["A"]
        assert len(config.temporal_bounds) == 6
        assert config.total_iterations == program.ideal_compute_cycles

    def test_a_stream_addresses_stay_inside_region(self):
        program = compile_conv(conv_workload(), DESIGN, FULL)
        config = program.streamer_configs["A"]
        load = next(l for l in program.tensor_loads if l.name == "A")
        temporal = reference_temporal_addresses(
            config.temporal_bounds, config.temporal_strides, config.base_address
        )
        max_spatial = config.spatial_strides[0] * 7
        assert min(temporal) >= load.base_address
        assert max(temporal) + max_spatial + 8 <= load.base_address + load.size_bytes

    def test_strided_conv_spatial_stride(self):
        program = compile_conv(conv_workload(stride=2), DESIGN, FULL)
        config = program.streamer_configs["A"]
        assert config.spatial_strides == (16,)  # stride * ku bytes

    def test_im2col_prepass_only_without_feature(self):
        with_feature = compile_conv(conv_workload(), DESIGN, FULL)
        without = compile_conv(
            conv_workload(), DESIGN, FULL.with_updates(implicit_im2col=False)
        )
        assert not with_feature.prepasses
        assert without.prepasses[0].name == "software_im2col"

    def test_pointwise_needs_no_im2col_prepass(self):
        program = compile_conv(
            conv_workload(kernel_h=1, kernel_w=1, padding=0),
            DESIGN,
            FULL.with_updates(implicit_im2col=False),
        )
        assert not program.prepasses

    def test_quantized_conv(self):
        program = compile_conv(conv_workload(quantize=True), DESIGN, FULL)
        assert "E" in program.streamer_configs
        assert program.expected_outputs["E"].dtype == np.int8


class TestDispatchAndDeterminism:
    def test_dispatch_by_type(self):
        assert compile_workload(gemm_workload(), DESIGN, FULL).metadata["kind"] == "gemm"
        assert compile_workload(conv_workload(), DESIGN, FULL).metadata["kind"] == "conv"
        with pytest.raises(TypeError):
            compile_workload("not a workload", DESIGN, FULL)

    def test_default_features_are_all_enabled(self):
        program = compile_workload(gemm_workload(), DESIGN)
        assert program.features == FeatureSet.all_enabled()

    def test_same_seed_same_data(self):
        first = compile_workload(gemm_workload(), DESIGN, FULL, seed=7)
        second = compile_workload(gemm_workload(), DESIGN, FULL, seed=7)
        assert np.array_equal(first.expected_outputs["D"], second.expected_outputs["D"])

    def test_different_seed_different_data(self):
        first = compile_workload(gemm_workload(), DESIGN, FULL, seed=1)
        second = compile_workload(gemm_workload(), DESIGN, FULL, seed=2)
        assert not np.array_equal(
            first.expected_outputs["D"], second.expected_outputs["D"]
        )

    def test_feature_set_does_not_change_expected_result(self):
        full = compile_workload(gemm_workload(transposed_a=True), DESIGN, FULL)
        base = compile_workload(
            gemm_workload(transposed_a=True), DESIGN, FeatureSet.all_disabled()
        )
        assert np.array_equal(full.expected_outputs["D"], base.expected_outputs["D"])
