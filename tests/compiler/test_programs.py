"""Tests for the compiled-program containers (TensorLoad, PrePass, program)."""

import numpy as np
import pytest

from repro.accelerators import GemmJob
from repro.compiler import KernelProgram, PrePass, ReadbackSpec, TensorLoad
from repro.core import FeatureSet, StreamerRuntimeConfig
from repro.workloads import GemmWorkload


def make_program(prepasses=(), quant=None):
    workload = GemmWorkload(name="prog", m=16, n=16, k=16)
    config = StreamerRuntimeConfig(
        base_address=0,
        temporal_bounds=(2,),
        temporal_strides=(64,),
        spatial_strides=(8,),
        bank_group_size=64,
    )
    return KernelProgram(
        workload=workload,
        features=FeatureSet.all_enabled(),
        job=GemmJob(2, 2, 2),
        streamer_configs={"A": config, "B": config},
        tensor_loads=[
            TensorLoad("A", 0, np.zeros(256, dtype=np.uint8), 64),
            TensorLoad("B", 512, np.zeros(128, dtype=np.uint8), 64),
        ],
        prepasses=list(prepasses),
        quant_config=quant,
        readbacks={"D": ReadbackSpec("D", 1024, 1024, 64)},
    )


class TestTensorLoad:
    def test_size(self):
        load = TensorLoad("A", 0, np.zeros(100, dtype=np.uint8), 64)
        assert load.size_bytes == 100


class TestPrePass:
    def test_word_accesses(self):
        prepass = PrePass("p", word_reads=10, word_writes=20, cycles=5)
        assert prepass.word_accesses == 30

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            PrePass("p", word_reads=-1, word_writes=0, cycles=0)


class TestKernelProgram:
    def test_basic_properties(self):
        program = make_program()
        assert program.name == "prog"
        assert program.ideal_compute_cycles == 8
        assert not program.uses_quantizer
        assert program.prepass_cycles == 0
        assert program.active_ports() == ["A", "B"]
        assert program.total_load_bytes() == 384

    def test_prepass_aggregation(self):
        program = make_program(
            prepasses=[
                PrePass("x", word_reads=4, word_writes=4, cycles=10),
                PrePass("y", word_reads=2, word_writes=2, cycles=5),
            ]
        )
        assert program.prepass_cycles == 15
        assert program.prepass_word_accesses == 12

    def test_describe(self):
        program = make_program()
        summary = program.describe()
        assert summary["tiles"] == (2, 2, 2)
        assert summary["quantized"] is False
        assert summary["prepasses"] == []
