"""Tests for the blocked tensor layouts (pack/unpack round trips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import layout as L


def random_int8(rng, shape):
    return rng.integers(-128, 128, size=shape).astype(np.int8)


class TestGemmLayouts:
    def test_pack_gemm_a_block_order(self):
        """The first 64 bytes are exactly the first 8x8 tile, row major."""
        a = np.arange(16 * 16, dtype=np.int64).astype(np.int8).reshape(16, 16)
        packed = L.pack_gemm_a(a, 8, 8)
        first_tile = packed[:64].view(np.int8).reshape(8, 8)
        assert np.array_equal(first_tile, a[:8, :8])
        # Next tile walks along K (k2 = 1).
        second_tile = packed[64:128].view(np.int8).reshape(8, 8)
        assert np.array_equal(second_tile, a[:8, 8:16])

    def test_pack_gemm_b_block_order(self):
        b = np.arange(16 * 16, dtype=np.int64).astype(np.int8).reshape(16, 16)
        packed = L.pack_gemm_b(b, 8, 8)
        first_tile = packed[:64].view(np.int8).reshape(8, 8)
        assert np.array_equal(first_tile, b[:8, :8])
        # Next tile walks along N (n2 = 1).
        second_tile = packed[64:128].view(np.int8).reshape(8, 8)
        assert np.array_equal(second_tile, b[:8, 8:16])

    def test_pack_gemm_a_transposed_holds_at_blocks(self):
        a = np.arange(8 * 16, dtype=np.int64).astype(np.int8).reshape(8, 16)
        packed = L.pack_gemm_a_transposed(a, 8, 8)
        # First block is A^T[0:8, 0:8] = A[0:8, 0:8]^T.
        first_tile = packed[:64].view(np.int8).reshape(8, 8)
        assert np.array_equal(first_tile, a[:8, :8].T)

    def test_pack_pads_odd_shapes_with_zeros(self):
        a = np.ones((5, 9), dtype=np.int8)
        packed = L.pack_gemm_a(a, 8, 8)
        assert packed.size == 8 * 16
        assert packed.view(np.int8).sum() == 45

    def test_acc_tiles_roundtrip(self):
        rng = np.random.default_rng(0)
        c = rng.integers(-(2**30), 2**30, size=(13, 21)).astype(np.int32)
        packed = L.pack_acc_tiles(c, 8, 8)
        back = L.unpack_acc_tiles(packed, 13, 21, 8, 8)
        assert np.array_equal(back, c)

    def test_int8_tiles_roundtrip(self):
        rng = np.random.default_rng(1)
        x = random_int8(rng, (11, 17))
        packed = L.pack_int8_tiles(x, 8, 8)
        back = L.unpack_int8_tiles(packed, 11, 17, 8, 8)
        assert np.array_equal(back, x)

    def test_unpack_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            L.unpack_acc_tiles(np.zeros(100, dtype=np.uint8), 8, 8, 8, 8)

    def test_non_2d_inputs_rejected(self):
        with pytest.raises(ValueError):
            L.pack_gemm_a(np.zeros((2, 2, 2), dtype=np.int8), 8, 8)
        with pytest.raises(ValueError):
            L.pack_gemm_b(np.zeros(4, dtype=np.int8), 8, 8)

    @given(
        rows=st.integers(min_value=1, max_value=40),
        cols=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_acc_roundtrip_property(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        c = rng.integers(-1000, 1000, size=(rows, cols)).astype(np.int32)
        back = L.unpack_acc_tiles(L.pack_acc_tiles(c, 8, 8), rows, cols, 8, 8)
        assert np.array_equal(back, c)


class TestBiasLayouts:
    def test_bias_rows_layout(self):
        bias = np.arange(16, dtype=np.int32)
        packed = L.pack_bias_rows(bias, 8)
        assert packed.size == 16 * 4
        assert np.array_equal(packed.view(np.int32), bias)

    def test_bias_rows_padding(self):
        bias = np.arange(10, dtype=np.int32)
        packed = L.pack_bias_rows(bias, 8)
        assert packed.size == 16 * 4
        assert list(packed.view(np.int32)[10:]) == [0] * 6

    def test_bias_full_replicates_rows(self):
        bias = np.arange(8, dtype=np.int32)
        packed = L.pack_bias_full(bias, 8, 8, 8, 8)
        tile = packed.view(np.int32).reshape(8, 8)
        for row in tile:
            assert np.array_equal(row, bias)

    def test_bias_full_matches_acc_layout(self):
        bias = np.arange(16, dtype=np.int32)
        full = np.tile(bias, (16, 1))
        assert np.array_equal(
            L.pack_bias_full(bias, 16, 16, 8, 8), L.pack_acc_tiles(full, 8, 8)
        )

    def test_bias_too_short_raises(self):
        with pytest.raises(ValueError):
            L.pack_bias_full(np.arange(4, dtype=np.int32), 8, 8, 8, 8)


class TestConvLayouts:
    def test_input_layout_channel_blocked(self):
        fmap = np.arange(4 * 4 * 16, dtype=np.int64).astype(np.int8).reshape(4, 4, 16)
        packed, (h, w, c) = L.pack_conv_input(fmap, 8)
        assert (h, w, c) == (4, 4, 16)
        # First 8 bytes: pixel (0,0), channels 0..7.
        assert np.array_equal(packed[:8].view(np.int8), fmap[0, 0, :8])
        # Channel block 1 starts after the full H*W plane of block 0.
        offset = 4 * 4 * 8
        assert np.array_equal(
            packed[offset : offset + 8].view(np.int8), fmap[0, 0, 8:16]
        )

    def test_input_channel_padding(self):
        fmap = np.ones((2, 2, 3), dtype=np.int8)
        packed, (h, w, c) = L.pack_conv_input(fmap, 8)
        assert c == 8
        assert packed.size == 2 * 2 * 8
        assert packed.view(np.int8).sum() == 12

    def test_weight_layout_tile_order(self):
        weights = np.arange(3 * 3 * 8 * 8, dtype=np.int64).astype(np.int8).reshape(3, 3, 8, 8)
        packed = L.pack_conv_weights(weights, 8, 8)
        # First 64 bytes: (fy=0, fx=0) tile, [c1][n1] row-major.
        first = packed[:64].view(np.int8).reshape(8, 8)
        assert np.array_equal(first, weights[0, 0])
        # Next tile is (fy=0, fx=1).
        second = packed[64:128].view(np.int8).reshape(8, 8)
        assert np.array_equal(second, weights[0, 1])

    def test_conv_output_roundtrip(self):
        rng = np.random.default_rng(2)
        out_h, out_w, out_c = 5, 11, 19
        tiles_x = -(-out_w // 8)
        tiles_n = -(-out_c // 8)
        output = rng.integers(-1000, 1000, size=(out_h, out_w, out_c)).astype(np.int32)
        # Build the blocked byte image the D streamer would have written.
        padded = np.zeros((out_h, tiles_x * 8, tiles_n * 8), dtype=np.int32)
        padded[:, :out_w, :out_c] = output
        blocked = padded.reshape(out_h, tiles_x, 8, tiles_n, 8).transpose(0, 1, 3, 2, 4)
        raw = blocked.copy().view(np.uint8).reshape(-1)
        back = L.unpack_conv_output(raw, out_h, out_w, out_c, 8, 8)
        assert np.array_equal(back, output)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            L.pack_conv_input(np.zeros((4, 4), dtype=np.int8), 8)
        with pytest.raises(ValueError):
            L.pack_conv_weights(np.zeros((3, 3, 8), dtype=np.int8), 8, 8)
        with pytest.raises(ValueError):
            L.unpack_conv_output(np.zeros(10, dtype=np.uint8), 2, 2, 2, 8, 8)


class TestSizeHelpers:
    def test_gemm_sizes(self):
        assert L.gemm_a_bytes(13, 17, 8, 8) == 16 * 24
        assert L.gemm_b_bytes(17, 9, 8, 8) == 24 * 16
        assert L.acc_tile_bytes(8, 8, 8, 8) == 256
        assert L.int8_tile_bytes(8, 8, 8, 8) == 64
        assert L.bias_rows_bytes(9, 8) == 64

    def test_conv_sizes(self):
        assert L.conv_input_bytes(4, 4, 3, 8) == 4 * 4 * 8
        assert L.conv_weight_bytes(3, 3, 5, 9, 8, 8) == 9 * 8 * 16

    def test_sizes_match_packed_arrays(self):
        rng = np.random.default_rng(3)
        a = random_int8(rng, (13, 17))
        assert L.pack_gemm_a(a, 8, 8).size == L.gemm_a_bytes(13, 17, 8, 8)
        w = random_int8(rng, (3, 3, 5, 9))
        assert L.pack_conv_weights(w, 8, 8).size == L.conv_weight_bytes(3, 3, 5, 9, 8, 8)
