"""Tests for scratchpad allocation and addressing-mode selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import AllocationError, MemoryAllocator
from repro.core import MemoryDesign

MEMORY = MemoryDesign(
    num_banks=64,
    bank_width_bits=64,
    capacity_bytes=128 * 1024,
    group_size_options=(64, 16, 1),
)


class TestFlatAllocation:
    def test_sequential_non_overlapping(self):
        allocator = MemoryAllocator(MEMORY, use_addressing_mode_switching=False)
        a = allocator.allocate("A", 1000)
        b = allocator.allocate("B", 2000)
        assert a.base_address == 0
        assert b.base_address >= a.end_address
        assert a.group_size == 64  # FIMA
        assert b.group_size == 64

    def test_alignment(self):
        allocator = MemoryAllocator(MEMORY, use_addressing_mode_switching=False)
        allocator.allocate("A", 10)
        b = allocator.allocate("B", 10)
        assert b.base_address % 64 == 0

    def test_capacity_overflow_raises(self):
        allocator = MemoryAllocator(MEMORY, use_addressing_mode_switching=False)
        allocator.allocate("A", 100 * 1024)
        with pytest.raises(AllocationError):
            allocator.allocate("B", 60 * 1024)

    def test_plan_preserves_order(self):
        allocator = MemoryAllocator(MEMORY, use_addressing_mode_switching=False)
        plan = allocator.plan({"A": 128, "B": 128, "C": 128})
        assert plan["A"].base_address < plan["B"].base_address < plan["C"].base_address
        assert plan.total_bytes() == 3 * 128


class TestGroupedAllocation:
    def test_each_operand_gets_its_own_group(self):
        allocator = MemoryAllocator(MEMORY, use_addressing_mode_switching=True)
        group_bytes = allocator.group_bytes
        assert group_bytes == 32 * 1024
        a = allocator.allocate("A", 8 * 1024)
        b = allocator.allocate("B", 8 * 1024)
        c = allocator.allocate("C", 256)
        assert a.group_size == 16
        assert {a.base_address // group_bytes, b.base_address // group_bytes,
                c.base_address // group_bytes} == {0, 1, 2}

    def test_large_region_spans_consecutive_groups(self):
        allocator = MemoryAllocator(MEMORY, use_addressing_mode_switching=True)
        big = allocator.allocate("D", 60 * 1024)
        small = allocator.allocate("A", 1024)
        assert big.base_address == 0
        # The next operand starts in the first group NOT touched by "D".
        assert small.base_address >= 2 * allocator.group_bytes

    def test_fallback_shares_group_when_exhausted(self):
        allocator = MemoryAllocator(MEMORY, use_addressing_mode_switching=True)
        for name in ("A", "B", "C", "D"):
            allocator.allocate(name, 4 * 1024)
        extra = allocator.allocate("E", 1024)
        # Still allocated, inside an existing group, without overflowing it.
        assert extra.base_address + extra.size_bytes <= MEMORY.capacity_bytes

    def test_unfittable_region_raises(self):
        allocator = MemoryAllocator(MEMORY, use_addressing_mode_switching=True)
        allocator.allocate("D", 120 * 1024)
        with pytest.raises(AllocationError):
            allocator.allocate("A", 40 * 1024)

    def test_invalid_group_size_option(self):
        with pytest.raises(ValueError):
            MemoryAllocator(MEMORY, True, gima_group_size=24)

    def test_explicit_group_size(self):
        allocator = MemoryAllocator(MEMORY, True, gima_group_size=1)
        region = allocator.allocate("A", 100)
        assert region.group_size == 1  # NIMA placement


class TestAllocationInvariants:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=20_000), min_size=1, max_size=6),
        switching=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_regions_never_overlap(self, sizes, switching):
        allocator = MemoryAllocator(MEMORY, use_addressing_mode_switching=switching)
        regions = []
        try:
            for index, size in enumerate(sizes):
                regions.append(allocator.allocate(f"r{index}", size))
        except AllocationError:
            pass  # running out of space is acceptable; overlap is not
        spans = sorted((r.base_address, r.end_address) for r in regions)
        for (start_a, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b
        for region in regions:
            assert region.end_address <= MEMORY.capacity_bytes
            assert region.base_address % 64 == 0
