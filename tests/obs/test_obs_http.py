"""Tests for the stdlib HTTP metrics exporter."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.http import MetricsServer
from repro.obs.metrics import MetricsRegistry

from test_obs_exposition import parse_exposition


def fetch(url, timeout=5):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("repro_test_total", "test counter").inc(7)
    return registry


class TestMetricsServer:
    def test_metrics_endpoint_serves_valid_exposition(self, registry):
        with MetricsServer(registry=registry) as server:
            status, content_type, body = fetch(f"{server.url}/metrics")
        assert status == 200
        assert "version=0.0.4" in content_type
        families = parse_exposition(body.decode("utf-8"))
        assert "repro_test_total 7" in families["repro_test_total"]["samples"]

    def test_snapshot_endpoint_serves_snapshot_json(self, registry):
        snapshot = {"submitted": 3, "queue_depth": 1}
        with MetricsServer(snapshot_fn=lambda: snapshot, registry=registry) as server:
            status, content_type, body = fetch(f"{server.url}/snapshot")
        assert status == 200
        assert "application/json" in content_type
        assert json.loads(body) == snapshot

    def test_snapshot_404_without_source(self, registry):
        with MetricsServer(registry=registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(f"{server.url}/snapshot")
            assert excinfo.value.code == 404

    def test_snapshot_families_merged_into_metrics(self, registry):
        snapshot = {"submitted": 9, "executed": 4}
        with MetricsServer(snapshot_fn=lambda: snapshot, registry=registry) as server:
            _, _, body = fetch(f"{server.url}/metrics")
        families = parse_exposition(body.decode("utf-8"))
        # Union of snapshot-derived counters and registry families.
        assert "repro_submitted_total 9" in families["repro_submitted_total"]["samples"]
        assert "repro_test_total 7" in families["repro_test_total"]["samples"]

    def test_config_endpoint_reports_overrides(self, registry, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_PORT", "9123")
        from repro import config

        monkeypatch.setattr(config, "_PINNED", None)
        with MetricsServer(registry=registry) as server:
            _, _, body = fetch(f"{server.url}/config")
        report = json.loads(body)
        field = report["fields"]["metrics_port"]
        assert field["env"] == "REPRO_METRICS_PORT"
        assert field["value"] == 9123
        assert field["overridden"] is True
        assert report["fields"]["trace_path"]["overridden"] is False

    def test_dashboard_served_at_root(self, registry):
        with MetricsServer(registry=registry) as server:
            status, content_type, body = fetch(f"{server.url}/")
        assert status == 200
        assert "text/html" in content_type
        assert b"/snapshot" in body  # the page polls the snapshot endpoint

    def test_healthz(self, registry):
        with MetricsServer(registry=registry) as server:
            status, _, body = fetch(f"{server.url}/healthz")
        assert status == 200 and b"ok" in body

    def test_unknown_path_404(self, registry):
        with MetricsServer(registry=registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_raising_snapshot_fn_does_not_kill_metrics(self, registry):
        def boom():
            raise RuntimeError("snapshot source died")

        with MetricsServer(snapshot_fn=boom, registry=registry) as server:
            status, _, body = fetch(f"{server.url}/metrics")
        assert status == 200
        assert b"repro_test_total" in body

    def test_concurrent_scrapes(self, registry):
        snapshot = {"submitted": 1}
        results = []
        errors = []
        with MetricsServer(snapshot_fn=lambda: snapshot, registry=registry) as server:

            def scrape():
                try:
                    for _ in range(5):
                        status, _, body = fetch(f"{server.url}/metrics")
                        parse_exposition(body.decode("utf-8"))
                        results.append(status)
                except Exception as error:  # noqa: BLE001 — collected for assert
                    errors.append(error)

            threads = [threading.Thread(target=scrape) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert results == [200] * 40

    def test_ephemeral_port_bound_and_reported(self, registry):
        with MetricsServer(registry=registry, port=0) as server:
            assert 0 < server.port <= 65535
            assert str(server.port) in server.url

    def test_start_is_idempotent(self, registry):
        server = MetricsServer(registry=registry)
        try:
            assert server.start() is server
            port = server.port
            server.start()
            assert server.port == port
        finally:
            server.close()

    def test_close_releases_port(self, registry):
        server = MetricsServer(registry=registry).start()
        url = server.url
        server.close()
        with pytest.raises(Exception):
            fetch(f"{url}/healthz", timeout=1)


class TestDisabledByDefault:
    def test_serve_cli_opens_no_socket_unless_requested(self, monkeypatch, stub_backend):
        """`repro serve` without --metrics-port must never build a server."""
        from repro import cli
        from repro.obs import http as obs_http

        def explode(*args, **kwargs):
            raise AssertionError("MetricsServer constructed without opt-in")

        monkeypatch.setattr(obs_http.MetricsServer, "__init__", explode)
        monkeypatch.delenv("REPRO_METRICS_PORT", raising=False)
        backend = stub_backend()
        code = cli.main(
            [
                "serve",
                "gemm:8x8x8",
                "--backend",
                backend.name,
                "--no-cache",
            ]
        )
        assert code == 0
