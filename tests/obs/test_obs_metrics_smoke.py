"""End-to-end metrics smoke test: a 2-shard cluster behind the exporter.

This mirrors the CI smoke job: bring up the sharded service with a durable
journal, crash it with an unfinished backlog, restart it (journal replay),
then scrape ``/metrics`` over real HTTP and assert the acceptance families
— per-shard executed counts, the journal replay counter, queue/hit-rate
gauges and the latency histogram buckets — are present and correct.
"""

import time
import urllib.request
from pathlib import Path

import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.obs.http import MetricsServer
from repro.runtime import SimJob, SimOutcome, register_backend
from repro.runtime.backends import SimulationBackend
from repro.serve import ServiceClosedError
from repro.workloads import GemmWorkload

from test_obs_exposition import parse_exposition


class FileGatedBackend(SimulationBackend):
    """Blocks executions (inside the shard process) until a file appears."""

    def __init__(self, name, gate_path, timeout=30.0):
        self.name = name
        self.gate_path = str(gate_path)
        self.timeout = timeout

    def execute(self, job):
        deadline = time.monotonic() + self.timeout
        while not Path(self.gate_path).exists():
            if time.monotonic() > deadline:
                raise TimeoutError("test gate never released")
            time.sleep(0.01)
        ideal = job.workload.ideal_compute_cycles(
            job.design.gemm_mu, job.design.gemm_nu, job.design.gemm_ku
        )
        return SimOutcome.analytic(job, utilization=0.5, ideal_compute_cycles=ideal)


def _config():
    return ClusterConfig(
        shards=2,
        worker_threads=1,
        heartbeat_interval=0.1,
        heartbeat_timeout=5.0,
        backoff_base=0.05,
        backoff_cap=0.2,
        ready_timeout=15.0,
        shutdown_timeout=30.0,
    )


def test_two_shard_cluster_scrape(tmp_path):
    gate = tmp_path / "gate"
    backend = FileGatedBackend(f"obs-smoke-{time.time_ns()}", gate_path=gate)
    register_backend(backend)  # pre-fork: inherited by the shard workers
    jobs = [
        SimJob(
            workload=GemmWorkload(name=f"smoke_{i}", m=8, n=8, k=8),
            backend=backend.name,
            seed=i,
        )
        for i in range(4)
    ]
    journal_path = tmp_path / "serve.jsonl"
    cache_root = tmp_path / "cache"

    # Crash a first daemon with the backlog journaled but unfinished.
    first = ClusterService(
        cache_dir=cache_root, config=_config(), journal=journal_path
    )
    tickets = [first.submit(job) for job in jobs]
    first.terminate()
    for ticket in tickets:
        with pytest.raises(ServiceClosedError):
            ticket.result(timeout=5)

    gate.touch()  # the replayed backlog may proceed
    cluster = ClusterService(
        cache_dir=cache_root, config=_config(), journal=journal_path
    )
    try:
        assert cluster.stats.recovered == 4
        assert cluster.wait_idle(timeout=60), "recovered backlog never drained"
        with MetricsServer(snapshot_fn=cluster.snapshot) as server:
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=10) as resp:
                text = resp.read().decode("utf-8")
    finally:
        cluster.close()

    families = parse_exposition(text)  # every line must be valid exposition

    # Journal replay count.
    assert "repro_journal_recovered_total 4" in (
        families["repro_journal_recovered_total"]["samples"]
    )
    # Per-shard liveness and executed counts (from pong-frame snapshots).
    alive = families["repro_shard_alive"]["samples"]
    assert 'repro_shard_alive{shard="0"} 1' in alive
    assert 'repro_shard_alive{shard="1"} 1' in alive
    executed = families["repro_shard_executed_total"]["samples"]
    assert any('shard="0"' in line for line in executed)
    per_shard = [int(line.rsplit(" ", 1)[1]) for line in executed]
    assert sum(per_shard) == 4
    # Queue depth and hit-rate gauges.
    assert "repro_queue_depth 0" in families["repro_queue_depth"]["samples"]
    assert families["repro_coalescing_hit_rate"]["type"] == "gauge"
    assert families["repro_cache_hit_rate"]["type"] == "gauge"
    # Latency histogram: four executed jobs, cumulative buckets, +Inf row.
    latency = families["repro_latency_seconds"]
    assert latency["type"] == "histogram"
    assert "repro_latency_seconds_count 4" in latency["samples"]
    assert any('le="+Inf"' in line for line in latency["samples"])
    # Build info from the process-wide registry rides the same scrape.
    from repro import __version__

    assert f'repro_build_info{{version="{__version__}"}} 1' in (
        families["repro_build_info"]["samples"]
    )
