"""Fixtures of the obs test suite.

Telemetry tests that exercise a real :class:`SimulationService` need a
deterministic backend; like the serve suite, each test registers a
throwaway uniquely named stub instead of running the cycle simulator.
"""

import itertools
import threading

import pytest

from repro.runtime import SimOutcome, register_backend
from repro.runtime.backends import SimulationBackend

_COUNTER = itertools.count()


class StubBackend(SimulationBackend):
    """Counts calls; ``gate`` (a ``threading.Event``) holds jobs in flight."""

    def __init__(self, name, gate=None):
        self.name = name
        self.gate = gate
        self.calls = 0
        self._lock = threading.Lock()

    def execute(self, job):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(timeout=10), "test gate never released"
        ideal = job.workload.ideal_compute_cycles(
            job.design.gemm_mu, job.design.gemm_nu, job.design.gemm_ku
        )
        return SimOutcome.analytic(job, utilization=0.5, ideal_compute_cycles=ideal)


@pytest.fixture
def stub_backend():
    """Factory registering a uniquely named :class:`StubBackend`."""

    def make(gate=None):
        backend = StubBackend(f"obs-stub-{next(_COUNTER)}", gate=gate)
        register_backend(backend)
        return backend

    return make
