"""Tests for the trace recorder and the service trace hooks.

The acceptance-level test drives a real (thread) service with tracing
installed and asserts the exported Chrome trace reconstructs the
submit → settle lifecycle of a coalesced job.
"""

import json
import threading

import pytest

from repro.obs.trace import (
    TraceRecorder,
    get_tracer,
    install_tracer,
    uninstall_tracer,
)
from repro.runtime import SimJob
from repro.workloads import GemmWorkload


@pytest.fixture
def tracer():
    recorder = install_tracer()
    try:
        yield recorder
    finally:
        uninstall_tracer()


class TestTraceRecorder:
    def test_disabled_by_default(self):
        assert get_tracer() is None

    def test_install_and_uninstall(self):
        recorder = install_tracer()
        assert get_tracer() is recorder
        assert uninstall_tracer() is recorder
        assert get_tracer() is None

    def test_begin_end_produces_completed_span(self):
        recorder = TraceRecorder()
        recorder.begin("job", "abc")
        recorder.end("job", "abc")
        assert recorder.spans("abc") == ["job"]

    def test_duplicate_begin_dropped(self):
        recorder = TraceRecorder()
        recorder.begin("job", "abc")
        recorder.begin("job", "abc")  # coalesced duplicate
        recorder.end("job", "abc")
        phases = [e.ph for e in recorder.events()]
        assert phases == ["b", "e"]

    def test_end_without_begin_becomes_instant(self):
        recorder = TraceRecorder()
        recorder.end("job", "abc")
        (event,) = recorder.events()
        assert event.ph == "n"

    def test_maybe_end_is_silent_without_begin(self):
        recorder = TraceRecorder()
        recorder.maybe_end("queued", "abc")
        assert recorder.events() == []

    def test_timestamps_monotone_microseconds(self):
        recorder = TraceRecorder()
        recorder.begin("job", "abc")
        recorder.instant("progress", "abc")
        recorder.end("job", "abc")
        stamps = [e.ts_us for e in recorder.events()]
        assert stamps == sorted(stamps)
        assert all(stamp >= 0 for stamp in stamps)

    def test_counter_event_shape(self):
        recorder = TraceRecorder()
        recorder.counter("queue_depth", {"jobs": 3})
        chrome = recorder.chrome_events()[0]
        assert chrome["ph"] == "C"
        assert chrome["args"] == {"jobs": 3}

    def test_chrome_events_carry_matching_ids(self):
        recorder = TraceRecorder()
        track = "deadbeefdeadbeefcafe"
        recorder.begin("job", track)
        recorder.end("job", track)
        begin, end = recorder.chrome_events()
        assert begin["id"] == end["id"] == track[:16]
        assert begin["ph"] == "b" and end["ph"] == "e"

    def test_export_writes_valid_chrome_trace(self, tmp_path):
        recorder = TraceRecorder()
        recorder.begin("job", "abc", workload="g")
        recorder.end("job", "abc", outcome="finished")
        out = tmp_path / "trace.json"
        count = recorder.export(out)
        assert count == 2
        document = json.loads(out.read_text())
        assert {e["name"] for e in document["traceEvents"]} == {"job"}
        assert all("ts" in e and "ph" in e for e in document["traceEvents"])

    def test_thread_safety_under_concurrent_appends(self):
        recorder = TraceRecorder()

        def spin(worker):
            for index in range(200):
                track = f"{worker}-{index}"
                recorder.begin("job", track)
                recorder.end("job", track)

        threads = [threading.Thread(target=spin, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder.events()) == 4 * 200 * 2


class TestServiceTracing:
    def _job(self, backend, name="trace_gemm"):
        return SimJob(
            workload=GemmWorkload(name=name, m=8, n=8, k=8), backend=backend.name
        )

    def test_traced_coalesced_job_reconstructs_lifecycle(
        self, tracer, stub_backend, tmp_path
    ):
        from repro.serve import ServiceClient, ServiceConfig

        gate = threading.Event()
        backend = stub_backend(gate=gate)
        client = ServiceClient(
            cache_dir=None, config=ServiceConfig(max_workers=1)
        )
        try:
            job = self._job(backend)
            first = client.submit(job, client_name="alice")
            second = client.submit(job, client_name="bob")  # coalesces
            gate.set()
            assert first.result(timeout=10) is not None
            assert second.result(timeout=10) is not None
        finally:
            client.close(drain=True)
        track = job.job_hash()
        # The full submit → settle timeline of the executed job.
        assert tracer.spans(track) == ["job", "queued", "executing"]
        instants = [
            e.name for e in tracer.events() if e.track == track and e.ph == "n"
        ]
        assert "coalesced" in instants
        ends = [e for e in tracer.events() if e.track == track and e.ph == "e"]
        job_end = next(e for e in ends if e.name == "job")
        assert job_end.args["outcome"] == "finished"
        assert job_end.args["waiters"] == 2  # both clients settled by one run

        out = tmp_path / "trace.json"
        count = tracer.export(out)
        document = json.loads(out.read_text())
        assert len(document["traceEvents"]) == count
        ids = {e["id"] for e in document["traceEvents"] if e.get("cat") == "job"}
        assert track[:16] in ids

    def test_queue_depth_counter_events_recorded(self, tracer, stub_backend):
        from repro.serve import ServiceClient, ServiceConfig

        gate = threading.Event()
        backend = stub_backend(gate=gate)
        client = ServiceClient(cache_dir=None, config=ServiceConfig(max_workers=1))
        try:
            tickets = [
                client.submit(self._job(backend, name=f"depth_gemm_{i}"))
                for i in range(3)
            ]
            gate.set()
            for ticket in tickets:
                ticket.result(timeout=10)
        finally:
            client.close(drain=True)
        counters = [e for e in tracer.events() if e.ph == "C"]
        assert counters, "queue depth counters should be traced"
        assert all(e.name == "queue_depth" for e in counters)
        assert any(e.args["jobs"] >= 1 for e in counters)

    def test_untraced_run_records_nothing(self, stub_backend):
        from repro.serve import ServiceClient

        assert get_tracer() is None
        backend = stub_backend()
        client = ServiceClient(cache_dir=None)
        try:
            client.submit(self._job(backend)).result(timeout=10)
        finally:
            client.close(drain=True)
        assert get_tracer() is None
