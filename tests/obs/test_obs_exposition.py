"""Tests for Prometheus text rendering and snapshot → family mapping."""

import re

import pytest

from repro.obs.exposition import CONTENT_TYPE, render, snapshot_families
from repro.obs.metrics import Histogram, MetricFamily, MetricsRegistry, Sample

# Exposition-format grammar (format 0.0.4): a scrape is HELP/TYPE comment
# lines plus sample lines `name{labels} value`.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|\+Inf|-Inf|NaN))$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_exposition(text):
    """Validate every line of a scrape; return {family: {"type", "samples"}}."""
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    declared_type = {}
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram", "untyped"), line
            assert name not in declared_type, f"duplicate TYPE for {name}"
            declared_type[name] = kind
            families.setdefault(name, {"type": kind, "samples": []})
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        if match.group("labels"):
            for pair in match.group("labels").split(","):
                assert _LABEL_RE.match(pair), f"malformed label: {pair!r}"
        base = match.group("name")
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in declared_type:
                base = base[: -len(suffix)]
                break
        assert base in declared_type, f"sample before TYPE: {line!r}"
        families[base]["samples"].append(line)
    return families


def thread_snapshot(**overrides):
    hist = Histogram((0.1, 1.0), name="repro_latency_seconds")
    hist.observe(0.5)
    snapshot = {
        "submitted": 5,
        "executed": 3,
        "coalesced": 1,
        "cache_hits": 1,
        "failed": 0,
        "rejected": 2,
        "cancelled": 0,
        "coalescing_hit_rate": 0.2,
        "cache_hit_rate": 0.2,
        "queue_depth": 4,
        "inflight": 2,
        "per_worker_executed": {"0": 2, "1": 1},
        "latency": hist.as_dict(),
        "macro": {"jumps": 2, "cycles_skipped": 1000},
        "cache": {"entries": 7, "size_bytes": 99, "hits": 1, "misses": 2},
    }
    snapshot.update(overrides)
    return snapshot


def cluster_snapshot():
    hist = Histogram((0.1, 1.0), name="repro_latency_seconds")
    hist.observe(0.05)
    shard = {
        "executed": 4,
        "queue_depth": 1,
        "latency": hist.as_dict(),
        "macro": {"jumps": 1, "cycles_skipped": 10},
    }
    return {
        "stats": {
            "submitted": 9,
            "executed": 8,
            "coalesced": 1,
            "cache_hits": 0,
            "journal_hits": 2,
            "shard_cache_hits": 1,
            "failed": 0,
            "requeued": 1,
            "recovered": 3,
            "restarts": 1,
            "coalescing_hit_rate": 0.1,
            "cache_hit_rate": 0.0,
        },
        "queue_depth": 0,
        "inflight": 1,
        "shard_count": 2,
        "shards": [
            {"shard": 0, "alive": True, "snapshot": dict(shard)},
            {"shard": 1, "alive": False, "snapshot": dict(shard)},
        ],
    }


class TestRender:
    def test_content_type_pins_exposition_version(self):
        assert "version=0.0.4" in CONTENT_TYPE

    def test_every_line_of_thread_scrape_parses(self):
        text = render(snapshot_families(thread_snapshot()))
        families = parse_exposition(text)
        assert families["repro_submitted_total"]["type"] == "counter"
        assert "repro_submitted_total 5" in families["repro_submitted_total"]["samples"]
        assert "repro_queue_depth 4" in families["repro_queue_depth"]["samples"]

    def test_every_line_of_cluster_scrape_parses(self):
        text = render(snapshot_families(cluster_snapshot()))
        families = parse_exposition(text)
        assert 'repro_shard_executed_total{shard="0"} 4' in (
            families["repro_shard_executed_total"]["samples"]
        )
        assert "repro_journal_recovered_total 3" in (
            families["repro_journal_recovered_total"]["samples"]
        )

    def test_label_values_escaped(self):
        family = MetricFamily(
            "repro_x_total",
            "counter",
            'tricky "help"\nwith newline',
            (Sample(labels={"who": 'a"b\\c\nd'}, value=1),),
        )
        text = render([family])
        parse_exposition(text)
        assert '\\"b\\\\c\\nd' in text

    def test_registry_collect_renders(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x").inc(3)
        registry.gauge("repro_depth", "d").set(2)
        hist = registry.histogram("repro_latency_seconds", "lat", bounds=(0.1, 1.0))
        hist.observe(0.5)
        families = parse_exposition(render(registry.collect()))
        assert families["repro_latency_seconds"]["type"] == "histogram"


class TestSnapshotFamilies:
    def test_thread_shape_counters(self):
        families = {f.name: f for f in snapshot_families(thread_snapshot())}
        assert families["repro_executed_total"].samples[0].value == 3
        assert families["repro_rejected_total"].samples[0].value == 2
        assert "repro_journal_hits_total" not in families  # cluster-only
        workers = families["repro_worker_executed_total"].samples
        assert {s.labels["worker"]: s.value for s in workers} == {"0": 2, "1": 1}

    def test_cluster_shape_counters_and_shards(self):
        families = {f.name: f for f in snapshot_families(cluster_snapshot())}
        assert families["repro_journal_hits_total"].samples[0].value == 2
        assert families["repro_shard_restarts_total"].samples[0].value == 1
        assert "repro_rejected_total" not in families  # thread-only
        alive = {s.labels["shard"]: s.value for s in families["repro_shard_alive"].samples}
        assert alive == {"0": 1, "1": 0}

    def test_cluster_latency_merged_across_shards(self):
        families = {f.name: f for f in snapshot_families(cluster_snapshot())}
        count = next(
            s.value
            for s in families["repro_latency_seconds"].samples
            if s.suffix == "_count"
        )
        assert count == 2  # one observation per shard, merged bucket-wise

    def test_cluster_macro_totals_summed(self):
        families = {f.name: f for f in snapshot_families(cluster_snapshot())}
        assert families["repro_macro_jumps_total"].samples[0].value == 2
        assert families["repro_macro_cycles_skipped_total"].samples[0].value == 20

    def test_histogram_buckets_cumulative_monotone(self):
        families = snapshot_families(thread_snapshot())
        latency = next(f for f in families if f.name == "repro_latency_seconds")
        buckets = [s.value for s in latency.samples if s.suffix == "_bucket"]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 1

    def test_cache_stats_become_result_cache_families(self):
        families = {f.name: f for f in snapshot_families(thread_snapshot())}
        assert families["repro_result_cache_entries"].samples[0].value == 7
        assert families["repro_result_cache_lookup_misses_total"].samples[0].value == 2

    def test_missing_optional_keys_tolerated(self):
        families = snapshot_families({"submitted": 1})
        text = render(families)
        parse_exposition(text)
        assert "repro_submitted_total 1" in text

    def test_real_service_snapshot_renders(self, stub_backend):
        from repro.runtime import SimJob
        from repro.serve import ServiceClient
        from repro.workloads import GemmWorkload

        backend = stub_backend()
        client = ServiceClient(cache_dir=None)
        try:
            job = SimJob(
                workload=GemmWorkload(name="expo_gemm", m=8, n=8, k=8),
                backend=backend.name,
            )
            client.submit(job).result(timeout=10)
            snapshot = client.snapshot()
        finally:
            client.close(drain=True)
        families = parse_exposition(render(snapshot_families(snapshot)))
        assert "repro_executed_total 1" in families["repro_executed_total"]["samples"]
