"""Unit tests for the obs metric primitives and the registry."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("repro_x_total", "x")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_value_stays_int_for_int_increments(self):
        counter = Counter("repro_x_total", "x")
        counter.inc(3)
        assert isinstance(counter.value, int)

    def test_negative_increment_rejected(self):
        counter = Counter("repro_x_total", "x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("0bad name", "x")

    def test_concurrent_increments_do_not_drop(self):
        counter = Counter("repro_x_total", "x")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000

    def test_family_single_sample(self):
        counter = Counter("repro_x_total", "x")
        counter.inc(2)
        family = counter.family()
        assert family.kind == "counter"
        assert [sample.value for sample in family.samples] == [2]


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_depth", "d")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_callback_gauge_reads_live_value(self):
        box = {"value": 3}
        gauge = Gauge("repro_depth", "d", fn=lambda: box["value"])
        assert gauge.value == 3
        box["value"] = 9
        assert gauge.value == 9

    def test_raising_callback_reads_zero(self):
        def boom():
            raise RuntimeError("dead source")

        gauge = Gauge("repro_depth", "d", fn=boom)
        assert gauge.value == 0


class TestHistogram:
    def test_bounds_must_be_sorted_and_non_empty(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_observe_routes_to_first_fitting_bucket(self):
        hist = Histogram((0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)  # overflow bucket
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3

    # ------------------------------------------------------------------
    # Hardened quantile edge cases (satellite b).
    # ------------------------------------------------------------------
    def test_quantile_empty_histogram_is_zero(self):
        hist = Histogram(DEFAULT_LATENCY_BOUNDS)
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 0.0

    def test_quantile_single_sample_every_q_hits_its_bucket(self):
        hist = Histogram((0.1, 1.0, 10.0))
        hist.observe(0.5)
        # With one sample, every quantile — including q=0 — must resolve
        # to the sample's bucket bound, never an empty leading bucket.
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 1.0

    def test_quantile_out_of_range_raises(self):
        hist = Histogram((1.0,))
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_overflow_clamps_to_last_bound(self):
        hist = Histogram((0.1, 1.0))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 1.0

    def test_mean_and_sum(self):
        hist = Histogram((1.0, 10.0))
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == pytest.approx(3.0)

    def test_as_dict_roundtrips_through_merge_dict(self):
        hist = Histogram((0.1, 1.0), name="repro_latency_seconds")
        hist.observe(0.05)
        hist.observe(0.5)
        other = Histogram((0.1, 1.0), name="repro_latency_seconds")
        other.merge_dict(hist.as_dict())
        assert other == hist
        assert other.count == 2

    def test_family_buckets_are_cumulative_with_inf(self):
        hist = Histogram((0.1, 1.0), name="repro_latency_seconds")
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        family = hist.family()
        buckets = [s for s in family.samples if s.suffix == "_bucket"]
        values = [s.value for s in buckets]
        assert values == sorted(values)  # cumulative => monotone
        assert buckets[-1].labels["le"] == "+Inf"
        assert buckets[-1].value == 3


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "x")
        second = registry.counter("repro_x_total", "other help ignored")
        assert first is second

    def test_kind_mismatch_raises_type_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x")
        with pytest.raises(TypeError):
            registry.gauge("repro_x_total", "x")

    def test_collect_includes_callback_families(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x").inc()
        hist = Histogram((1.0,), name="repro_latency_seconds", help="lat")
        registry.register(hist)
        names = [family.name for family in registry.collect()]
        assert "repro_x_total" in names
        assert "repro_latency_seconds" in names

    def test_raising_callback_is_skipped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x")

        def boom():
            raise RuntimeError("scrape-time failure")

        registry.add_callback("broken", boom)
        names = [family.name for family in registry.collect()]
        assert names == ["repro_x_total"]

    def test_add_callback_replaces_by_name(self):
        registry = MetricsRegistry()
        registry.add_callback("cb", lambda: [Counter("repro_a_total", "a").family()])
        registry.add_callback("cb", lambda: [Counter("repro_b_total", "b").family()])
        names = [family.name for family in registry.collect()]
        assert names == ["repro_b_total"]

    def test_global_registry_has_build_info(self):
        families = {family.name: family for family in get_registry().collect()}
        assert "repro_build_info" in families
        (sample,) = families["repro_build_info"].samples
        from repro import __version__

        assert sample.labels["version"] == __version__
