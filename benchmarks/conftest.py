"""Shared configuration of the benchmark harness.

Every benchmark regenerates one paper table/figure.  The underlying cycle
simulations are deterministic, so each benchmark executes its experiment
exactly once (``benchmark.pedantic(..., rounds=1, iterations=1)``) — the
benchmark timing records how long regenerating the artefact takes, and the
benchmark's ``extra_info`` carries the reproduced numbers so a plain
``pytest benchmarks/ --benchmark-only`` run documents the paper-vs-measured
comparison.

Set ``REPRO_FULL_SUITE=1`` to run the ablation on the full 260-workload suite
(slower); the default uses a stratified subset.
"""

import pytest

from repro.config import get_config
from repro.system import datamaestro_evaluation_system


def pytest_report_header(config):
    full = "1" if get_config().full_suite else "0"
    return [f"DataMaestro reproduction benchmarks (REPRO_FULL_SUITE={full})"]


@pytest.fixture(scope="session")
def evaluation_design():
    """The paper's evaluation-system design (Fig. 6)."""
    return datamaestro_evaluation_system()


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
