"""Benchmark harness for Figure 4 (AGU address-generation example)."""

from repro.experiments import fig4_agu


def test_fig4_address_generation_example(benchmark, run_once):
    results = run_once(fig4_agu.run)
    assert results["matches_paper"], "AGU sequence deviates from Figure 4(c)"
    assert len(results["rows"]) == 8
    benchmark.extra_info["matches_paper"] = results["matches_paper"]
    print()
    print(fig4_agu.report(results))
