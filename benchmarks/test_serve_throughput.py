"""Service benchmark: throughput + latency under a duplicate-heavy stream.

Replays the traffic shape the service exists for — many clients asking for
overlapping work: 50 submissions drawn from 5 unique small kernels (a
20/10/10/5/5 duplicate mix), pushed through a 2-worker
:class:`~repro.serve.client.ServiceClient` with a fresh result cache.

Recorded in ``BENCH_serve.json`` at the repo root:

* ``jobs_per_second`` — submissions completed per wall-clock second;
* ``coalescing_hit_rate`` / ``cache_hit_rate`` / ``duplicate_work_avoided``
  — how much of the stream never reached a backend;
* ``latency`` — per-submission p50/p99/max seconds (submit → outcome).

The hard functional bar (exactly ``unique`` backend executions for
``total`` submissions) is enforced always — it is deterministic, not a
timing claim.  Timing numbers are recorded, never gated, so a loaded CI
machine cannot fail the build on noise.

The ``shard_scaling`` section measures the multi-process cluster
(:mod:`repro.cluster`) on a compute-bound all-unique mix at 1, 2 and 4
shards with a fresh cache per run.  Thread workers cannot beat the GIL on
this mix; shard processes can, so throughput should rise with the shard
count wherever cores exist.  The ≥1.5x bar at 4 shards is
enforced only under ``REPRO_STRICT_BENCH=1`` (the CI runners have the
cores; a 1-core laptop cannot scale and must not fail).
"""

import json
import time

import pytest

from repro import __version__
from repro.cluster import ClusterConfig, ClusterService
from repro.config import get_config
from repro.runtime import ResultCache, SimJob
from repro.serve import ServiceClient, ServiceConfig
from repro.workloads import GemmWorkload

from pathlib import Path

#: Where BENCH_serve.json lands (override with REPRO_BENCH_OUT=<dir>).
BENCH_OUT_DIR = get_config().bench_out or Path(__file__).resolve().parent.parent
BENCH_PATH = BENCH_OUT_DIR / "BENCH_serve.json"

#: The duplicate-heavy mix: (kernel dims, submissions of that kernel).
MIX = (
    ((16, 16, 16), 20),
    ((16, 16, 32), 10),
    ((24, 24, 16), 10),
    ((32, 32, 16), 5),
    ((8, 8, 64), 5),
)


def _jobs():
    jobs = []
    for (m, n, k), copies in MIX:
        workload = GemmWorkload(name=f"bench_serve_{m}x{n}x{k}", m=m, n=n, k=k)
        jobs.extend([SimJob(workload=workload)] * copies)
    return jobs


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


@pytest.fixture(scope="module")
def bench_results(tmp_path_factory):
    jobs = _jobs()
    unique = len({job.job_hash() for job in jobs})
    cache = ResultCache(tmp_path_factory.mktemp("serve-bench-cache"))
    config = ServiceConfig(max_workers=2, max_backlog=len(jobs))
    latencies = []
    with ServiceClient(cache=cache, config=config) as client:
        wall_start = time.perf_counter()
        tickets = []
        for job in jobs:
            submit_time = time.perf_counter()
            ticket = client.submit(job, client_name=f"bench{len(tickets) % 4}")
            ticket._future.add_done_callback(
                lambda _f, t0=submit_time: latencies.append(time.perf_counter() - t0)
            )
            tickets.append(ticket)
        outcomes = [ticket.result(timeout=120) for ticket in tickets]
        wall = time.perf_counter() - wall_start
        stats = client.stats()

    assert all(outcome.utilization > 0 for outcome in outcomes)
    latencies.sort()
    results = {
        "package_version": __version__,
        "workload_mix": [
            {"kernel": f"{m}x{n}x{k}", "submissions": copies}
            for (m, n, k), copies in MIX
        ],
        "submissions": len(jobs),
        "unique_jobs": unique,
        "executed": stats["executed"],
        "coalesced": stats["coalesced"],
        "cache_hits": stats["cache_hits"],
        "coalescing_hit_rate": stats["coalescing_hit_rate"],
        "cache_hit_rate": stats["cache_hit_rate"],
        "duplicate_work_avoided": 1.0 - stats["executed"] / len(jobs),
        "wall_seconds": wall,
        "jobs_per_second": len(jobs) / wall,
        "latency": {
            "p50_seconds": _percentile(latencies, 0.50),
            "p99_seconds": _percentile(latencies, 0.99),
            "max_seconds": latencies[-1],
            "samples": len(latencies),
        },
        "config": {"max_workers": config.max_workers, "max_backlog": config.max_backlog},
    }
    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    # Merge-write: other benchmark files (e.g. the replay regimes) may have
    # written their sections into the same report already this run.
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data.update(results)
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return results


def test_duplicates_never_resimulate(bench_results):
    """The functional bar: 50 submissions, exactly `unique` executions."""
    assert bench_results["executed"] == bench_results["unique_jobs"]
    assert bench_results["duplicate_work_avoided"] == pytest.approx(
        1.0 - bench_results["unique_jobs"] / bench_results["submissions"]
    )


def test_stream_was_duplicate_heavy(bench_results):
    """Every duplicate was absorbed by coalescing or the cache."""
    absorbed = bench_results["coalesced"] + bench_results["cache_hits"]
    expected = bench_results["submissions"] - bench_results["unique_jobs"]
    assert absorbed == expected
    assert bench_results["coalescing_hit_rate"] + bench_results["cache_hit_rate"] == (
        pytest.approx(expected / bench_results["submissions"])
    )


def test_latency_distribution_recorded(bench_results):
    latency = bench_results["latency"]
    assert latency["samples"] == bench_results["submissions"]
    assert 0 < latency["p50_seconds"] <= latency["p99_seconds"] <= latency["max_seconds"]
    assert bench_results["jobs_per_second"] > 0


def test_bench_report_written(bench_results):
    data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert data["executed"] == bench_results["executed"]
    assert data["latency"]["p99_seconds"] == bench_results["latency"]["p99_seconds"]
    assert data["submissions"] == 50


# ----------------------------------------------------------------------
# Shard scaling: the multi-process cluster vs the GIL.
# ----------------------------------------------------------------------
#: Shard counts of the scaling curve.
SHARD_COUNTS = (1, 2, 4)
#: All-unique compute-bound jobs per run (same kernel, distinct seeds).
SCALING_JOBS = 8
#: Kernel dimension; 48x48x48 simulates long enough (~70 ms) that process
#: startup and protocol overhead are small against the simulation itself.
SCALING_DIM = 48
#: Required 4-shard vs 1-shard throughput ratio under REPRO_STRICT_BENCH=1.
MIN_SHARD_SCALING = 1.5
STRICT_BENCH = get_config().strict_bench


def _scaling_jobs():
    workload = GemmWorkload(
        name="bench_shard_scaling", m=SCALING_DIM, n=SCALING_DIM, k=SCALING_DIM
    )
    return [SimJob(workload=workload, seed=seed) for seed in range(SCALING_JOBS)]


@pytest.fixture(scope="module")
def shard_scaling(bench_results, tmp_path_factory):
    """Run the compute-bound mix at each shard count; extend BENCH_serve.json.

    Depends on ``bench_results`` so the report file exists to be extended —
    the ``shard_scaling`` key lands in the same JSON the single-process
    numbers live in.
    """
    jobs = _scaling_jobs()
    runs = []
    for shards in SHARD_COUNTS:
        # A fresh cache per run: every job must actually execute, so the
        # curve measures simulation throughput, not cache reads.
        cache_dir = tmp_path_factory.mktemp(f"serve-bench-shards{shards}")
        cluster = ClusterService(
            cache_dir=cache_dir,
            config=ClusterConfig(
                shards=shards, worker_threads=1, max_backlog=len(jobs)
            ),
        )
        try:
            start = time.perf_counter()
            outcomes = cluster.run(jobs, client_name="bench")
            wall = time.perf_counter() - start
            stats = cluster.stats_dict()
        finally:
            cluster.close()
        assert len(outcomes) == len(jobs)
        runs.append(
            {
                "shards": shards,
                "wall_seconds": wall,
                "jobs_per_second": len(jobs) / wall,
                "executed": stats["executed"],
                "restarts": stats["restarts"],
            }
        )
    by_shards = {run["shards"]: run for run in runs}
    section = {
        "kernel": f"{SCALING_DIM}x{SCALING_DIM}x{SCALING_DIM}",
        "jobs": len(jobs),
        "runs": runs,
        "speedup_4_vs_1": (
            by_shards[4]["jobs_per_second"] / by_shards[1]["jobs_per_second"]
        ),
        "strict_bench": STRICT_BENCH,
        "min_speedup_enforced": MIN_SHARD_SCALING if STRICT_BENCH else None,
    }
    data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    data["shard_scaling"] = section
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return section


def test_shard_runs_execute_everything(shard_scaling):
    """The functional bar at every shard count: no lost or duplicated work,
    no supervisor intervention on a healthy run."""
    for run in shard_scaling["runs"]:
        assert run["executed"] == shard_scaling["jobs"], run
        assert run["restarts"] == 0, run


def test_shard_scaling_recorded(shard_scaling):
    data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    recorded = data["shard_scaling"]
    assert [run["shards"] for run in recorded["runs"]] == list(SHARD_COUNTS)
    assert all(run["jobs_per_second"] > 0 for run in recorded["runs"])
    assert recorded["speedup_4_vs_1"] == shard_scaling["speedup_4_vs_1"]


@pytest.mark.skipif(
    not STRICT_BENCH,
    reason="shard-scaling bar enforced only under REPRO_STRICT_BENCH=1 "
    "(needs >= 4 cores; the ratio is always recorded in BENCH_serve.json)",
)
def test_shard_scaling_speedup(shard_scaling):
    """4 shards must beat 1 shard by >= MIN_SHARD_SCALING on real cores."""
    assert shard_scaling["speedup_4_vs_1"] >= MIN_SHARD_SCALING, shard_scaling


# ----------------------------------------------------------------------
# Tracing overhead: the disabled hooks must be (near) free.
# ----------------------------------------------------------------------
#: Generous per-submission hook-count assumption: event-bus publishes,
#: queue-depth notifications, engine begin/end and the write-back probe.
HOOKS_PER_SUBMISSION = 16
#: The telemetry layer's promise: with tracing off, the hooks cost less
#: than this fraction of a median submission (docs/OBSERVABILITY.md).
MAX_DISABLED_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def tracing_overhead(bench_results):
    """Measure the disabled-path hook (`get_tracer() is None` check) and
    bound its per-submission cost against the measured p50 latency.

    The hook is timed directly (200k iterations, empty-loop baseline
    subtracted) rather than via an A/B stream run — two wall-clock runs
    of the same stream differ by far more than 5% on a loaded machine,
    while the per-call cost is stable and the claim composes: cost per
    hook x hooks per submission vs the p50 the stream just measured.
    """
    from repro.obs.trace import get_tracer

    assert get_tracer() is None, "a tracer leaked into the benchmark run"
    iterations = 200_000
    start = time.perf_counter()
    for _ in range(iterations):
        if get_tracer() is not None:  # the exact disabled-path hook shape
            raise AssertionError("tracer unexpectedly installed")
    hook_wall = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iterations):
        pass
    empty_wall = time.perf_counter() - start
    hook_seconds = max(0.0, (hook_wall - empty_wall) / iterations)
    p50 = bench_results["latency"]["p50_seconds"]
    overhead = (hook_seconds * HOOKS_PER_SUBMISSION) / p50
    section = {
        "hook_ns_disabled": hook_seconds * 1e9,
        "hooks_per_submission_assumed": HOOKS_PER_SUBMISSION,
        "p50_latency_seconds": p50,
        "overhead_fraction_vs_p50": overhead,
        "max_overhead_enforced": MAX_DISABLED_OVERHEAD,
    }
    data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    data["tracing"] = section
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return section


def test_disabled_tracing_overhead_under_bar(tracing_overhead):
    """The always-on telemetry hooks stay under 5% of a median submission."""
    assert tracing_overhead["overhead_fraction_vs_p50"] < MAX_DISABLED_OVERHEAD, (
        tracing_overhead
    )


def test_tracing_overhead_recorded(tracing_overhead):
    data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert data["tracing"]["hook_ns_disabled"] >= 0
    assert data["tracing"]["overhead_fraction_vs_p50"] == (
        tracing_overhead["overhead_fraction_vs_p50"]
    )
