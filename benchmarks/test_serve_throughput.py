"""Service benchmark: throughput + latency under a duplicate-heavy stream.

Replays the traffic shape the service exists for — many clients asking for
overlapping work: 50 submissions drawn from 5 unique small kernels (a
20/10/10/5/5 duplicate mix), pushed through a 2-worker
:class:`~repro.serve.client.ServiceClient` with a fresh result cache.

Recorded in ``BENCH_serve.json`` at the repo root:

* ``jobs_per_second`` — submissions completed per wall-clock second;
* ``coalescing_hit_rate`` / ``cache_hit_rate`` / ``duplicate_work_avoided``
  — how much of the stream never reached a backend;
* ``latency`` — per-submission p50/p99/max seconds (submit → outcome).

The hard functional bar (exactly ``unique`` backend executions for
``total`` submissions) is enforced always — it is deterministic, not a
timing claim.  Timing numbers are recorded, never gated, so a loaded CI
machine cannot fail the build on noise.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import __version__
from repro.runtime import ResultCache, SimJob
from repro.serve import ServiceClient, ServiceConfig
from repro.workloads import GemmWorkload

#: Where BENCH_serve.json lands (override with REPRO_BENCH_OUT=<dir>).
BENCH_OUT_DIR = Path(os.environ.get("REPRO_BENCH_OUT", Path(__file__).resolve().parent.parent))
BENCH_PATH = BENCH_OUT_DIR / "BENCH_serve.json"

#: The duplicate-heavy mix: (kernel dims, submissions of that kernel).
MIX = (
    ((16, 16, 16), 20),
    ((16, 16, 32), 10),
    ((24, 24, 16), 10),
    ((32, 32, 16), 5),
    ((8, 8, 64), 5),
)


def _jobs():
    jobs = []
    for (m, n, k), copies in MIX:
        workload = GemmWorkload(name=f"bench_serve_{m}x{n}x{k}", m=m, n=n, k=k)
        jobs.extend([SimJob(workload=workload)] * copies)
    return jobs


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


@pytest.fixture(scope="module")
def bench_results(tmp_path_factory):
    jobs = _jobs()
    unique = len({job.job_hash() for job in jobs})
    cache = ResultCache(tmp_path_factory.mktemp("serve-bench-cache"))
    config = ServiceConfig(max_workers=2, max_backlog=len(jobs))
    latencies = []
    with ServiceClient(cache=cache, config=config) as client:
        wall_start = time.perf_counter()
        tickets = []
        for job in jobs:
            submit_time = time.perf_counter()
            ticket = client.submit(job, client_name=f"bench{len(tickets) % 4}")
            ticket._future.add_done_callback(
                lambda _f, t0=submit_time: latencies.append(time.perf_counter() - t0)
            )
            tickets.append(ticket)
        outcomes = [ticket.result(timeout=120) for ticket in tickets]
        wall = time.perf_counter() - wall_start
        stats = client.stats()

    assert all(outcome.utilization > 0 for outcome in outcomes)
    latencies.sort()
    results = {
        "package_version": __version__,
        "workload_mix": [
            {"kernel": f"{m}x{n}x{k}", "submissions": copies}
            for (m, n, k), copies in MIX
        ],
        "submissions": len(jobs),
        "unique_jobs": unique,
        "executed": stats["executed"],
        "coalesced": stats["coalesced"],
        "cache_hits": stats["cache_hits"],
        "coalescing_hit_rate": stats["coalescing_hit_rate"],
        "cache_hit_rate": stats["cache_hit_rate"],
        "duplicate_work_avoided": 1.0 - stats["executed"] / len(jobs),
        "wall_seconds": wall,
        "jobs_per_second": len(jobs) / wall,
        "latency": {
            "p50_seconds": _percentile(latencies, 0.50),
            "p99_seconds": _percentile(latencies, 0.99),
            "max_seconds": latencies[-1],
            "samples": len(latencies),
        },
        "config": {"max_workers": config.max_workers, "max_backlog": config.max_backlog},
    }
    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return results


def test_duplicates_never_resimulate(bench_results):
    """The functional bar: 50 submissions, exactly `unique` executions."""
    assert bench_results["executed"] == bench_results["unique_jobs"]
    assert bench_results["duplicate_work_avoided"] == pytest.approx(
        1.0 - bench_results["unique_jobs"] / bench_results["submissions"]
    )


def test_stream_was_duplicate_heavy(bench_results):
    """Every duplicate was absorbed by coalescing or the cache."""
    absorbed = bench_results["coalesced"] + bench_results["cache_hits"]
    expected = bench_results["submissions"] - bench_results["unique_jobs"]
    assert absorbed == expected
    assert bench_results["coalescing_hit_rate"] + bench_results["cache_hit_rate"] == (
        pytest.approx(expected / bench_results["submissions"])
    )


def test_latency_distribution_recorded(bench_results):
    latency = bench_results["latency"]
    assert latency["samples"] == bench_results["submissions"]
    assert 0 < latency["p50_seconds"] <= latency["p99_seconds"] <= latency["max_seconds"]
    assert bench_results["jobs_per_second"] > 0


def test_bench_report_written(bench_results):
    data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert data["executed"] == bench_results["executed"]
    assert data["latency"]["p99_seconds"] == bench_results["latency"]["p99_seconds"]
    assert data["submissions"] == 50
