"""Benchmark harness for Figure 8 (FPGA prototype resource utilization)."""

from repro.experiments import fig8_fpga


def test_fig8_fpga_resources(benchmark, run_once):
    results = run_once(fig8_fpga.run)
    model = results["model"]
    paper = results["paper"]

    # The GeMM array dominates the LUT count, the DataMaestros are a small
    # fraction — the shape of the paper's Figure 8 table.
    assert model["luts_gemm"] > 0.3 * model["luts_total"]
    assert model["luts_datamaestros"] < 0.12 * model["luts_total"]
    # Totals land within 2x of the reported VPK180 numbers.
    assert 0.5 < model["luts_total"] / paper["luts_total"] < 2.0
    assert 0.5 < model["regs_total"] / paper["regs_total"] < 2.0

    benchmark.extra_info["luts_total"] = model["luts_total"]
    benchmark.extra_info["regs_total"] = model["regs_total"]
    benchmark.extra_info["luts_datamaestros_percent"] = model[
        "luts_datamaestros_percent"
    ]
    print()
    print(fig8_fpga.report(results))
