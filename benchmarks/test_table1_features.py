"""Benchmark harness for Table I (feature comparison)."""

from repro.baselines import TABLE1_FEATURES
from repro.experiments import table1_features


def test_table1_feature_comparison(benchmark, run_once):
    matrix = run_once(table1_features.run)
    assert "DataMaestro" in matrix
    # DataMaestro is the only solution with every feature of Table I.
    ours = matrix["DataMaestro"]
    assert ours["programmable_affine_dims"] == "N-D"
    full_feature_solutions = [
        name
        for name, features in matrix.items()
        if all(features[f] not in (False, None) for f in TABLE1_FEATURES)
    ]
    assert full_feature_solutions == ["DataMaestro"]
    benchmark.extra_info["num_solutions"] = len(matrix)
    print()
    print(table1_features.report(matrix))
