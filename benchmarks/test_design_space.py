"""Ablation benches for DataMaestro's design-time parameters.

These are not paper figures; they back the design choices called out in
DESIGN.md with measurements: how deep the A/B data FIFOs must be to hide
memory latency (the paper instantiates depth 8), and how sensitive the
system is to the bank count and to the GIMA bank-group size.
"""

from repro.analysis import (
    best_point,
    sweep_bank_count,
    sweep_data_fifo_depth,
    sweep_gima_group_size,
)
from repro.analysis.reporting import format_table
from repro.core import FeatureSet


def _report(title, points):
    return format_table(
        ["value", "utilization", "cycles", "bank conflicts"],
        [[p.value, p.utilization, p.kernel_cycles, p.bank_conflicts] for p in points],
        title=title,
        float_format="{:.3f}",
    )


def test_data_fifo_depth_sweep(benchmark, run_once):
    # Sweep under a shared fully-interleaved address space (addressing-mode
    # switching off): that is where bank-conflict jitter exists for the FIFOs
    # to absorb.  With per-operand bank groups and single-cycle SRAM latency
    # the A/B streams are conflict-free and even a depth-1 FIFO sustains one
    # word per cycle, so the depth only matters under contention.
    features = FeatureSet.all_enabled().with_updates(addressing_mode_switching=False)
    points = run_once(sweep_data_fifo_depth, depths=(1, 2, 4, 8), features=features)
    by_depth = {p.value: p for p in points}
    # Deeper FIFOs absorb arbitration jitter: depth 8 beats depth 1 and is
    # never worse than any shallower configuration.
    assert by_depth[8].utilization > by_depth[1].utilization
    assert by_depth[8].utilization == max(p.utilization for p in points)
    assert by_depth[8].utilization > 0.8
    benchmark.extra_info["utilization_by_depth"] = {
        p.value: p.utilization for p in points
    }
    print()
    print(
        _report(
            "Design sweep: A/B data-FIFO depth (GeMM 64x64x96, shared FIMA space)",
            points,
        )
    )


def test_bank_count_sweep(benchmark, run_once):
    points = run_once(sweep_bank_count, bank_counts=(32, 64, 128))
    assert all(p.utilization > 0.8 for p in points)
    benchmark.extra_info["utilization_by_banks"] = {
        p.value: p.utilization for p in points
    }
    print()
    print(_report("Design sweep: scratchpad bank count (128 KiB total)", points))


def test_gima_group_size_sweep(benchmark, run_once):
    points = run_once(sweep_gima_group_size, group_sizes=(8, 16, 32, 64))
    by_group = {p.value: p for p in points}
    # Small groups (8/16 banks out of 64) give every operand its own bank
    # group and reach near-peak utilization; with only 2 groups (size 32) or
    # a single group (size 64 == fully interleaved) operands share banks and
    # conflicts reappear.  This backs the evaluation system's choice of
    # 16-bank groups.
    assert all(p.utilization > 0.5 for p in points)
    assert best_point(points).value in (8, 16)
    assert best_point(points).utilization > 0.95
    assert min(by_group[32].utilization, by_group[64].utilization) < by_group[16].utilization
    benchmark.extra_info["utilization_by_group_size"] = {
        p.value: p.utilization for p in points
    }
    print()
    print(_report("Design sweep: GIMA bank-group size", points))
