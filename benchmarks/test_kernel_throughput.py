"""Micro-benchmarks of the simulation service on individual kernels.

These complement the per-figure harnesses: they time how fast the runtime
executes representative jobs end to end (compile + cycle simulation — useful
when optimising the models), record the achieved utilization of each kernel
in ``extra_info``, and measure the result-cache round-trip.
"""

import pytest

from repro.compiler import compile_workload
from repro.experiments.fig10_comparison import comparison_kernels
from repro.runtime import SimJob, Simulator
from repro.workloads import GemmWorkload


@pytest.mark.parametrize("kernel", comparison_kernels(), ids=lambda w: w.name)
def test_simulate_kernel(benchmark, evaluation_design, kernel):
    simulator = Simulator()
    job = SimJob(workload=kernel, design=evaluation_design)

    outcome = benchmark.pedantic(simulator.simulate, args=(job,), rounds=1, iterations=1)
    assert outcome.utilization > 0.9
    assert outcome.functional_match is True
    benchmark.extra_info["utilization"] = outcome.utilization
    benchmark.extra_info["kernel_cycles"] = outcome.kernel_cycles
    benchmark.extra_info["simulated_cycles_per_second"] = (
        outcome.kernel_cycles / benchmark.stats.stats.mean
        if benchmark.stats.stats.mean
        else 0.0
    )


def test_cached_rerun_gemm64(benchmark, evaluation_design, tmp_path):
    """Time a warm-cache rerun: the whole job is served from disk."""
    job = SimJob(
        workload=GemmWorkload(name="bench_cached_gemm64", m=64, n=64, k=64),
        design=evaluation_design,
    )
    Simulator(cache_dir=tmp_path).simulate(job)  # warm the cache

    warm = Simulator(cache_dir=tmp_path)
    outcome = benchmark.pedantic(warm.simulate, args=(job,), rounds=1, iterations=1)
    assert outcome.cache_hit
    assert warm.stats.executed == 0


def test_compile_gemm64(benchmark, evaluation_design):
    """Time the compiler alone (layout packing + CSR generation)."""
    workload = GemmWorkload(name="bench_compile_gemm64", m=64, n=64, k=64)
    program = benchmark(compile_workload, workload, evaluation_design)
    assert program.ideal_compute_cycles == 512
