"""Micro-benchmarks of the cycle-level simulator on individual kernels.

These complement the per-figure harnesses: they time how fast the simulator
itself executes representative kernels (useful when optimising the models)
and record the achieved utilization of each kernel in ``extra_info``.
"""

import pytest

from repro.compiler import compile_workload
from repro.core import FeatureSet
from repro.experiments.fig10_comparison import comparison_kernels
from repro.workloads import GemmWorkload


@pytest.mark.parametrize("kernel", comparison_kernels(), ids=lambda w: w.name)
def test_simulate_kernel(benchmark, evaluation_design, evaluation_system, kernel):
    program = compile_workload(kernel, evaluation_design, FeatureSet.all_enabled())

    def run():
        return evaluation_system.run(program)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.utilization > 0.9
    benchmark.extra_info["utilization"] = result.utilization
    benchmark.extra_info["kernel_cycles"] = result.kernel_cycles
    benchmark.extra_info["simulated_cycles_per_second"] = (
        result.kernel_cycles / benchmark.stats.stats.mean
        if benchmark.stats.stats.mean
        else 0.0
    )


def test_compile_gemm64(benchmark, evaluation_design):
    """Time the compiler alone (layout packing + CSR generation)."""
    workload = GemmWorkload(name="bench_compile_gemm64", m=64, n=64, k=64)
    program = benchmark(compile_workload, workload, evaluation_design)
    assert program.ideal_compute_cycles == 512
