"""Replay benchmark: the service under four realistic arrival regimes.

Drives a 2-worker :class:`~repro.serve.client.ServiceClient` (fresh result
cache per regime) with each built-in arrival regime of
:mod:`repro.serve.replay` — ``poisson``, ``diurnal``, ``bursty`` and
``hotkey`` — over one seeded pool of small generated workloads, and records
every regime's :class:`~repro.serve.replay.ReplayReport` into the
``regimes`` section of ``BENCH_serve.json``:

* ``latency_p50_ms`` / ``latency_p99_ms`` — submit-to-outcome per request;
* ``coalesce_rate`` / ``cache_hit_rate`` — how duplicate pressure resolved;
* ``avoided_fraction`` — the share of submissions that never reached a
  backend simulation.

The headline claim — Zipf hot-key skew lets coalescing + caching avoid at
least half of all backend executions — is deterministic in expectation but
depends on the drawn trace, so the ≥ 50% bar is *enforced* only under
``REPRO_STRICT_BENCH=1`` (CI sets it); the measured fraction is recorded
always.  The trace seed follows ``REPRO_FUZZ_SEED``, so a surprising report
is reproducible with one env var.
"""

import json
import time
from pathlib import Path

import pytest

from repro import __version__
from repro.config import get_config
from repro.serve import ServiceClient, ServiceConfig
from repro.serve.replay import REGIMES, build_trace, default_pool, replay_trace

#: Where BENCH_serve.json lands (override with REPRO_BENCH_OUT=<dir>).
BENCH_OUT_DIR = get_config().bench_out or Path(__file__).resolve().parent.parent
BENCH_PATH = BENCH_OUT_DIR / "BENCH_serve.json"

REQUESTS = 120
POOL_SIZE = 16
RATE = 2000.0
#: Required hot-key avoidance under REPRO_STRICT_BENCH=1.
MIN_HOTKEY_AVOIDED = 0.5
STRICT_BENCH = get_config().strict_bench
FUZZ_SEED = get_config().fuzz_seed


@pytest.fixture(scope="module")
def regime_reports(tmp_path_factory):
    """One replay run per built-in regime; extend BENCH_serve.json."""
    pool = default_pool(POOL_SIZE, seed=FUZZ_SEED)
    runs = {}
    wall_start = time.perf_counter()
    for regime in sorted(REGIMES):
        trace = build_trace(regime, REQUESTS, RATE, pool, seed=FUZZ_SEED)
        cache_dir = tmp_path_factory.mktemp(f"replay-bench-{regime}")
        with ServiceClient(
            cache_dir=cache_dir,
            config=ServiceConfig(max_workers=2, max_backlog=REQUESTS),
        ) as client:
            report = replay_trace(client, trace, regime=regime, timeout=300.0)
        runs[regime] = report.as_dict()
    section = {
        "package_version": __version__,
        "requests_per_regime": REQUESTS,
        "pool_size": POOL_SIZE,
        "nominal_rate_rps": RATE,
        "seed": FUZZ_SEED,
        "wall_seconds": time.perf_counter() - wall_start,
        "runs": runs,
        "strict_bench": STRICT_BENCH,
        "min_hotkey_avoided_enforced": MIN_HOTKEY_AVOIDED if STRICT_BENCH else None,
    }
    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except ValueError:
            data = {}
    data["regimes"] = section
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return section


def test_every_regime_measured(regime_reports):
    """All four regimes ran to completion with a full report each."""
    assert set(regime_reports["runs"]) == set(REGIMES)
    assert len(regime_reports["runs"]) >= 4
    for regime, run in regime_reports["runs"].items():
        assert run["requests"] == REQUESTS, regime
        assert run["failed"] == 0, regime
        assert run["submitted"] == REQUESTS, regime
        for key in (
            "latency_p50_ms",
            "latency_p99_ms",
            "coalesce_rate",
            "cache_hit_rate",
            "avoided_fraction",
        ):
            assert key in run, (regime, key)
        assert 0 < run["latency_p50_ms"] <= run["latency_p99_ms"], regime


def test_avoidance_accounting_closes(regime_reports):
    """Per regime: coalesced + cached + executed covers every submission."""
    for regime, run in regime_reports["runs"].items():
        resolved = run["coalesced"] + run["cache_hits"] + run["executed"]
        assert resolved == run["submitted"], (regime, run)
        assert run["avoided_fraction"] == pytest.approx(
            1.0 - run["executed"] / run["submitted"], abs=1e-3
        ), regime


def test_hotkey_avoidance_recorded(regime_reports):
    """The hot-key run's avoidance is always recorded (gated separately)."""
    hotkey = regime_reports["runs"]["hotkey"]
    assert 0.0 <= hotkey["avoided_fraction"] <= 1.0
    # Executions are bounded by the key space: at most one per pool entry.
    assert hotkey["executed"] <= regime_reports["pool_size"]


@pytest.mark.skipif(
    not STRICT_BENCH,
    reason="hot-key avoidance bar enforced only under REPRO_STRICT_BENCH=1 "
    "(the measured fraction is always recorded in BENCH_serve.json)",
)
def test_hotkey_skew_avoids_half_the_backend_work(regime_reports):
    """Zipf skew + coalescing + cache must absorb >= 50% of submissions."""
    hotkey = regime_reports["runs"]["hotkey"]
    assert hotkey["avoided_fraction"] >= MIN_HOTKEY_AVOIDED, hotkey


def test_regimes_section_written(regime_reports):
    data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    recorded = data["regimes"]
    assert set(recorded["runs"]) == set(regime_reports["runs"])
    assert recorded["seed"] == FUZZ_SEED
    for regime, run in regime_reports["runs"].items():
        assert recorded["runs"][regime]["avoided_fraction"] == (
            run["avoided_fraction"]
        )
