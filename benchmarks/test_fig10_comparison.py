"""Benchmark harness for Figure 10 (SotA comparison, both panels)."""

from repro.experiments import fig10_comparison


def test_fig10_throughput_and_overhead_comparison(benchmark, run_once):
    results = run_once(fig10_comparison.run)
    throughput = results["normalized_throughput_gops"]
    speedups = results["speedup_over_baselines"]

    # The DataMaestro-boosted core wins on every kernel against every
    # baseline (paper: 1.05x – 21.39x).
    for kernel, per_solution in speedups.items():
        for baseline, factor in per_solution.items():
            assert factor > 1.0, (kernel, baseline, factor)

    low, high = results["speedup_range"]
    assert low > 1.0
    assert high > 5.0  # order-of-magnitude gap against Gemmini-style movers

    # Gemmini (no decoupling, unmanaged conflicts) is the weakest baseline.
    for kernel, per_solution in throughput.items():
        assert per_solution["Gemmini (OS)"] < per_solution["FEATHER"]
        assert per_solution["DataMaestro-boosted"] == max(per_solution.values())

    # FEATHER is the closest competitor, as in the paper.
    feather_gaps = [per_kernel["FEATHER"] for per_kernel in speedups.values()]
    assert min(feather_gaps) < 1.5

    # Right panel: DataMaestro's data-movement overhead is competitive.
    overhead = results["overhead_comparison"]
    ours = overhead["DataMaestro (model)"]
    assert ours["area_percent"] < 15.0
    assert ours["power_percent"] < 25.0

    benchmark.extra_info["speedup_range"] = results["speedup_range"]
    benchmark.extra_info["normalized_throughput_gops"] = throughput
    benchmark.extra_info["overhead_comparison"] = {
        name: values for name, values in overhead.items()
    }
    print()
    print(fig10_comparison.report(results))
