"""Benchmark harness for Figure 9 (area/power breakdowns) and §IV-D headline."""

from repro.experiments import fig9_breakdown


def test_fig9_area_and_power_breakdown(benchmark, run_once):
    results = run_once(fig9_breakdown.run)
    area = results["area_shares_percent"]
    power = results["power_shares_percent"]
    dm_a = results["datamaestro_a_composition_percent"]
    paper = results["paper_reference"]

    # Figure 9(a): the scratchpad dominates area, the five DataMaestros stay
    # a small fraction (paper: 6.43%).
    assert area["memory_subsystem"] > area["gemm_accelerator"]
    assert area["datamaestros"] < 15.0
    assert area["quantizer"] < area["gemm_accelerator"]

    # Figure 9(b): the data FIFOs dominate DataMaestro A, the AGU is ~10%,
    # the address remapper is negligible (paper: 0.49%).
    assert dm_a["fifo_buffers"] > 70.0
    assert 3.0 < dm_a["agu"] < 20.0
    assert dm_a["address_remapper"] < 2.0

    # Figure 9(c): DataMaestros consume a modest share of power (paper 15%).
    assert power["datamaestros"] < 25.0
    assert power["gemm_accelerator"] > 10.0

    # §IV-D headline: energy efficiency in the same range as 2.57 TOPS/W.
    assert 1.0 < results["energy_efficiency_tops_per_w"] < 6.0
    assert results["gemm64_utilization"] > 0.95

    benchmark.extra_info["area_shares_percent"] = area
    benchmark.extra_info["power_shares_percent"] = power
    benchmark.extra_info["tops_per_w"] = results["energy_efficiency_tops_per_w"]
    benchmark.extra_info["paper_tops_per_w"] = paper["energy_efficiency_tops_per_w"]
    print()
    print(fig9_breakdown.report(results))
