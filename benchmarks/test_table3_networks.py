"""Benchmark harness for Table III (real-world DNN utilization)."""

from repro.experiments import table3_networks


def test_table3_network_utilization(benchmark, run_once):
    results = run_once(table3_networks.run)
    summary = results["summary"]

    paper_networks = {"ResNet-18", "VGG-16", "ViT-B-16", "BERT-Base"}
    assert set(summary) == paper_networks | {"MobileNet-V2"}
    # Paper: all four Table III networks achieve above 95% utilization.
    for name in paper_networks:
        assert summary[name]["utilization_percent"] > 93.0, name
        assert summary[name]["utilization_percent"] <= 100.0, name
    # Transformers reach (near-)peak utilization, as in the paper.
    assert summary["ViT-B-16"]["utilization_percent"] > 97.0
    assert summary["BERT-Base"]["utilization_percent"] > 95.0
    # MobileNetV2 extends the suite beyond the paper: its depthwise stages
    # are reduction-poor, so it trails the Table III networks.
    mobilenet = summary["MobileNet-V2"]
    assert 50.0 < mobilenet["utilization_percent"] <= 100.0
    assert mobilenet["utilization_percent"] < max(
        summary[name]["utilization_percent"] for name in paper_networks
    )
    assert "dw3x3" in mobilenet["worst_layer"]

    benchmark.extra_info["utilization_percent"] = {
        name: info["utilization_percent"] for name, info in summary.items()
    }
    benchmark.extra_info["paper_utilization_percent"] = results["paper"]
    print()
    print(table3_networks.report(results))
