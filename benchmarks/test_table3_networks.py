"""Benchmark harness for Table III (real-world DNN utilization)."""

from repro.experiments import table3_networks


def test_table3_network_utilization(benchmark, run_once):
    results = run_once(table3_networks.run)
    summary = results["summary"]

    assert set(summary) == {"ResNet-18", "VGG-16", "ViT-B-16", "BERT-Base"}
    # Paper: all four networks achieve above 95% GeMM-core utilization.
    for name, info in summary.items():
        assert info["utilization_percent"] > 93.0, name
        assert info["utilization_percent"] <= 100.0, name
    # Transformers reach (near-)peak utilization, as in the paper.
    assert summary["ViT-B-16"]["utilization_percent"] > 97.0
    assert summary["BERT-Base"]["utilization_percent"] > 95.0

    benchmark.extra_info["utilization_percent"] = {
        name: info["utilization_percent"] for name, info in summary.items()
    }
    benchmark.extra_info["paper_utilization_percent"] = results["paper"]
    print()
    print(table3_networks.report(results))
