"""Engine benchmark: lockstep vs event-driven vs macro-stepped wall time.

Measures the simulation engines on

* a **bandwidth-bound** kernel — the prefetch-disabled ablation baseline on a
  32-cycle-latency memory, i.e. the configuration where the accelerator pays
  the full memory round trip for every word and most cycles are idle waits
  the next-event scheduler can skip; and
* a **compute-bound** kernel — the default evaluation system running a dense
  64x64x64 GeMM at >99 % utilization.  Nothing is idle here, so the
  next-event scheduler alone cannot help (PR 3 measured ~1.00x); the
  steady-span macro-step fast path must instead bulk-replay whole periodic
  tile groups.  This kernel is timed on three variants: ``lockstep``,
  ``event_nomacro`` (the event engine with macro-stepping disabled — PR 3's
  behaviour) and ``event`` (macro-stepping on, the default).

The acceptance bars: the event engine must be at least ``2x`` faster on the
bandwidth-bound kernel, and on the compute-bound kernel the macro-stepped
event engine must be at least ``2x`` faster than the PR 3 event engine
(``event_nomacro``), with *identical* cycle counts everywhere.  Results
(wall-times, simulated cycles/second, speedups) are written to
``BENCH_engine.json`` at the repository root so the performance trajectory
is tracked over time; the compute-bound entry's ``speedup`` field is the
macro-vs-lockstep ratio and ``speedup_vs_event_nomacro`` is the
macro-vs-PR-3 ratio the acceptance bar applies to.
"""

import dataclasses
import json
import time
from pathlib import Path

import pytest

from repro import __version__
from repro.compiler import compile_workload
from repro.config import get_config
from repro.core.params import FeatureSet
from repro.engine import EventDrivenEngine
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import GemmWorkload

#: Where BENCH_engine.json lands (override with REPRO_BENCH_OUT=<dir>).
BENCH_OUT_DIR = get_config().bench_out or Path(__file__).resolve().parent.parent
BENCH_PATH = BENCH_OUT_DIR / "BENCH_engine.json"

#: Timing repetitions; engines are measured in alternation and the best of N
#: is recorded, so scheduler noise and thermal drift hit both equally.
ROUNDS = 5

#: Required speedup on the bandwidth-bound kernel (event vs lockstep).
MIN_BANDWIDTH_SPEEDUP = 2.0
#: Required macro-stepping speedup on the compute-bound kernel (event vs
#: the PR 3 event engine).  The default bar is the CI gate — loose enough
#: that a timer hiccup on a loaded machine cannot fail a build with no code
#: change; set ``REPRO_STRICT_BENCH=1`` on a quiet machine to enforce the
#: tight ">=2x" acceptance bound (measured: >3x, see BENCH_engine.json,
#: where the actual ratio is always recorded regardless of the bar).
STRICT_BENCH = get_config().strict_bench
MIN_COMPUTE_SPEEDUP = 2.0 if STRICT_BENCH else 1.3


def _bandwidth_bound():
    design = datamaestro_evaluation_system()
    slow_memory = dataclasses.replace(design.memory, read_latency=32)
    design = dataclasses.replace(design, name="bench_engine_slow_mem", memory=slow_memory)
    features = dataclasses.replace(FeatureSet.all_enabled(), fine_grained_prefetch=False)
    workload = GemmWorkload(name="bench_engine_bw", m=32, n=32, k=128)
    return workload, design, features


def _compute_bound():
    design = datamaestro_evaluation_system()
    workload = GemmWorkload(name="bench_engine_cb", m=64, n=64, k=64)
    return workload, design, FeatureSet.all_enabled()


def _engine_for(variant):
    if variant == "event_nomacro":
        return EventDrivenEngine(macro_stepping=False)
    return variant


def _timed_run(program, design, variant):
    system = AcceleratorSystem(design)
    engine = _engine_for(variant)
    start = time.perf_counter()
    result = system.run(program, engine=engine)
    return time.perf_counter() - start, result.streaming_cycles


def _run_kernel(label, builder, variants):
    """Measure every variant, interleaved round by round; keep the best of N."""
    workload, design, features = builder()
    program = compile_workload(workload, design, features)
    best = {variant: float("inf") for variant in variants}
    cycles = {}
    _timed_run(program, design, "event")  # warm-up (imports, allocator)
    for _ in range(ROUNDS):
        for variant in variants:
            elapsed, simulated = _timed_run(program, design, variant)
            best[variant] = min(best[variant], elapsed)
            cycles[variant] = simulated
    reference = cycles[variants[0]]
    assert all(count == reference for count in cycles.values()), (
        "engines diverged on cycle count"
    )
    entry = {
        "kernel": workload.name,
        "class": label,
        "simulated_cycles": reference,
    }
    for variant in variants:
        entry[variant] = {
            "seconds": best[variant],
            "cycles": cycles[variant],
            "cycles_per_second": cycles[variant] / best[variant],
        }
    entry["speedup"] = best["lockstep"] / best["event"]
    if "event_nomacro" in variants:
        entry["speedup_vs_event_nomacro"] = best["event_nomacro"] / best["event"]
    return entry


@pytest.fixture(scope="module")
def bench_results():
    results = {
        "package_version": __version__,
        "rounds": ROUNDS,
        "bandwidth_bound": _run_kernel(
            "bandwidth_bound", _bandwidth_bound, ("lockstep", "event")
        ),
        "compute_bound": _run_kernel(
            "compute_bound",
            _compute_bound,
            ("lockstep", "event_nomacro", "event"),
        ),
    }
    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return results


def test_bandwidth_bound_speedup(bench_results):
    """Idle-heavy kernels must be multiples faster under the event engine."""
    entry = bench_results["bandwidth_bound"]
    assert entry["speedup"] >= MIN_BANDWIDTH_SPEEDUP, (
        f"event engine only {entry['speedup']:.2f}x faster on the "
        f"bandwidth-bound kernel (required: {MIN_BANDWIDTH_SPEEDUP}x)"
    )


def test_compute_bound_macro_speedup(bench_results):
    """Macro-stepping must beat PR 3's event engine on dense kernels."""
    entry = bench_results["compute_bound"]
    ratio = entry["speedup_vs_event_nomacro"]
    assert ratio >= MIN_COMPUTE_SPEEDUP, (
        f"macro-stepped event engine only {ratio:.2f}x faster than the "
        f"plain event engine on the compute-bound kernel "
        f"(required: {MIN_COMPUTE_SPEEDUP}x)"
    )


def test_compute_bound_beats_lockstep(bench_results):
    """The same bar holds against lockstep (PR 3 event ~= lockstep here)."""
    entry = bench_results["compute_bound"]
    assert entry["speedup"] >= MIN_COMPUTE_SPEEDUP, (
        f"event engine only {entry['speedup']:.2f}x faster than lockstep "
        f"on the compute-bound kernel (required: {MIN_COMPUTE_SPEEDUP}x)"
    )


def test_bench_report_written(bench_results):
    data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert data["bandwidth_bound"]["speedup"] == bench_results["bandwidth_bound"]["speedup"]
    assert data["compute_bound"]["simulated_cycles"] > 0
    assert "event_nomacro" in data["compute_bound"]
