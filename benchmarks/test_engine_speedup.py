"""Engine benchmark: event-driven vs lockstep wall-time on two kernel classes.

Measures both simulation engines on

* a **bandwidth-bound** kernel — the prefetch-disabled ablation baseline on a
  32-cycle-latency memory, i.e. the configuration where the accelerator pays
  the full memory round trip for every word and most cycles are idle waits
  the event engine can skip; and
* a **compute-bound** kernel — the default evaluation system running a dense
  64x64x64 GeMM at >99 % utilization, where a MAC fires almost every cycle
  and there is nothing to skip.

The acceptance bar: the event engine must be at least ``2x`` faster on the
bandwidth-bound kernel and within ``10 %`` of lockstep on the compute-bound
kernel, with *identical* cycle counts on both.  Results (wall-times,
simulated cycles/second, speedups) are written to ``BENCH_engine.json`` at
the repository root so the performance trajectory is tracked over time.
"""

import dataclasses
import json
import os
import time
from pathlib import Path

import pytest

from repro import __version__
from repro.compiler import compile_workload
from repro.core.params import FeatureSet
from repro.system import AcceleratorSystem, datamaestro_evaluation_system
from repro.workloads import GemmWorkload

#: Where BENCH_engine.json lands (override with REPRO_BENCH_OUT=<dir>).
BENCH_OUT_DIR = Path(os.environ.get("REPRO_BENCH_OUT", Path(__file__).resolve().parent.parent))
BENCH_PATH = BENCH_OUT_DIR / "BENCH_engine.json"

#: Timing repetitions; engines are measured in alternation and the best of N
#: is recorded, so scheduler noise and thermal drift hit both equally.
ROUNDS = 5

#: Required speedup on the bandwidth-bound kernel.
MIN_BANDWIDTH_SPEEDUP = 2.0
#: Maximum allowed slowdown on the compute-bound kernel.  The default bar is
#: the CI gate ("a >2x slowdown fails the build") so a timer hiccup on a
#: loaded or shared machine cannot fail a build with no code change; set
#: ``REPRO_STRICT_BENCH=1`` on a quiet machine to enforce the tight
#: "within 10 %" acceptance bound (measured: ~1.00x, see BENCH_engine.json,
#: where the actual ratio is always recorded regardless of the bar).
STRICT_BENCH = os.environ.get("REPRO_STRICT_BENCH", "0") not in ("0", "", "false")
MAX_COMPUTE_SLOWDOWN = 1.10 if STRICT_BENCH else 2.0


def _bandwidth_bound():
    design = datamaestro_evaluation_system()
    slow_memory = dataclasses.replace(design.memory, read_latency=32)
    design = dataclasses.replace(design, name="bench_engine_slow_mem", memory=slow_memory)
    features = dataclasses.replace(FeatureSet.all_enabled(), fine_grained_prefetch=False)
    workload = GemmWorkload(name="bench_engine_bw", m=32, n=32, k=128)
    return workload, design, features


def _compute_bound():
    design = datamaestro_evaluation_system()
    workload = GemmWorkload(name="bench_engine_cb", m=64, n=64, k=64)
    return workload, design, FeatureSet.all_enabled()


def _timed_run(program, design, engine):
    system = AcceleratorSystem(design)
    start = time.perf_counter()
    result = system.run(program, engine=engine)
    return time.perf_counter() - start, result.streaming_cycles


def _run_kernel(label, builder):
    """Measure both engines, interleaved round by round; keep the best of N."""
    workload, design, features = builder()
    program = compile_workload(workload, design, features)
    best = {"lockstep": float("inf"), "event": float("inf")}
    cycles = {}
    _timed_run(program, design, "event")  # warm-up (imports, allocator)
    for _ in range(ROUNDS):
        for engine in ("lockstep", "event"):
            elapsed, simulated = _timed_run(program, design, engine)
            best[engine] = min(best[engine], elapsed)
            cycles[engine] = simulated
    lockstep = {
        "seconds": best["lockstep"],
        "cycles": cycles["lockstep"],
        "cycles_per_second": cycles["lockstep"] / best["lockstep"],
    }
    event = {
        "seconds": best["event"],
        "cycles": cycles["event"],
        "cycles_per_second": cycles["event"] / best["event"],
    }
    assert lockstep["cycles"] == event["cycles"], "engines diverged on cycle count"
    return {
        "kernel": workload.name,
        "class": label,
        "simulated_cycles": event["cycles"],
        "lockstep": lockstep,
        "event": event,
        "speedup": lockstep["seconds"] / event["seconds"],
    }


@pytest.fixture(scope="module")
def bench_results():
    results = {
        "package_version": __version__,
        "rounds": ROUNDS,
        "bandwidth_bound": _run_kernel("bandwidth_bound", _bandwidth_bound),
        "compute_bound": _run_kernel("compute_bound", _compute_bound),
    }
    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return results


def test_bandwidth_bound_speedup(bench_results):
    """Idle-heavy kernels must be multiples faster under the event engine."""
    entry = bench_results["bandwidth_bound"]
    assert entry["speedup"] >= MIN_BANDWIDTH_SPEEDUP, (
        f"event engine only {entry['speedup']:.2f}x faster on the "
        f"bandwidth-bound kernel (required: {MIN_BANDWIDTH_SPEEDUP}x)"
    )


def test_compute_bound_no_regression(bench_results):
    """Fully active kernels must not pay for the event machinery."""
    entry = bench_results["compute_bound"]
    slowdown = entry["event"]["seconds"] / entry["lockstep"]["seconds"]
    assert slowdown <= MAX_COMPUTE_SLOWDOWN, (
        f"event engine is {slowdown:.2f}x slower on the compute-bound kernel "
        f"(allowed: {MAX_COMPUTE_SLOWDOWN}x)"
    )


def test_bench_report_written(bench_results):
    data = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert data["bandwidth_bound"]["speedup"] == bench_results["bandwidth_bound"]["speedup"]
    assert data["compute_bound"]["simulated_cycles"] > 0
