"""Benchmark harness for Figure 7 (ablation study, panels (a) and (b)).

The default run uses a stratified subset of the 260-workload synthetic suite
(a few workloads per group) so the pure-Python cycle simulation finishes in a
few minutes; set ``REPRO_FULL_SUITE=1`` to sweep the complete suite.
The assertions check the *shape* of the paper's Figure 7: every feature step
improves (or at least does not hurt) its target workload group, the fully
featured architecture approaches full utilization on GeMM, and the on-the-fly
data-manipulation extensions reduce memory accesses.
"""

import os

import pytest

from repro.experiments import fig7_ablation

QUICK_WORKLOADS_PER_GROUP = 4


def _workloads_per_group():
    if fig7_ablation.full_suite_requested(None):
        return None
    return QUICK_WORKLOADS_PER_GROUP


def test_fig7_ablation_utilization_and_accesses(benchmark, run_once):
    results = run_once(
        fig7_ablation.run, workloads_per_group=_workloads_per_group()
    )
    util = results["mean_utilization"]
    accesses = results["normalized_access_counts"]

    for group in ("gemm", "transposed_gemm", "convolution"):
        assert group in util

    # (2) fine-grained prefetch lifts every group substantially over (1).
    for group, by_step in util.items():
        assert by_step["2_prefetch"] > 1.3 * by_step["1_baseline"], group

    # (3) the Transposer specifically helps transposed GeMM (paper: 1.16x).
    tg = util["transposed_gemm"]
    assert tg["3_transposer"] > 1.05 * tg["2_prefetch"]

    # (5) implicit im2col specifically helps convolution (paper: 1.19x).
    conv = util["convolution"]
    assert conv["5_im2col"] > 1.08 * conv["4_broadcaster"]

    # (6) addressing-mode switching brings GeMM near 100% utilization.
    assert util["gemm"]["6_full"] > 0.95
    assert util["transposed_gemm"]["6_full"] > 0.95
    assert util["convolution"]["6_full"] > 0.9

    # The ladder never hurts the group it targets: final >= every other step.
    for group, by_step in util.items():
        assert by_step["6_full"] >= max(
            value for step, value in by_step.items() if step != "6_full"
        ) * 0.98, group

    # Figure 7(b): extensions reduce data accesses; baseline is 1 by design.
    for group, by_step in accesses.items():
        assert by_step["1_baseline"] == pytest.approx(1.0)
        assert by_step["6_full"] < 0.95, group
    assert accesses["transposed_gemm"]["3_transposer"] < accesses[
        "transposed_gemm"
    ]["2_prefetch"]

    # Paper headline: up to 2.89x speedup and up to 21.15% fewer accesses.
    assert results["max_speedup"] > 2.0
    assert results["max_access_reduction"] > 0.10

    benchmark.extra_info["mean_utilization"] = util
    benchmark.extra_info["normalized_access_counts"] = accesses
    benchmark.extra_info["max_speedup"] = results["max_speedup"]
    benchmark.extra_info["num_simulations"] = results["num_simulations"]
    print()
    print(fig7_ablation.report(results))
