#!/usr/bin/env python3
"""Markdown link and anchor checker for the docs tree.

Scans every file in ``docs/`` plus the repo-level markdown files and
verifies that

* relative links point at files that exist (``[x](RUNTIME.md)``,
  ``[x](../examples/quickstart.py)``);
* anchored links — cross-file (``RUNTIME.md#caching-semantics``) and
  same-file (``#the-scheduler``) — name a heading that actually exists,
  using GitHub's slug algorithm;
* external links are well-formed enough to parse (they are *not* fetched —
  CI must not depend on the network).

Fenced code blocks and inline code spans are ignored, so shell snippets
containing ``[...]`` never false-positive.

Run from the repository root (CI does)::

    python tools/check_doc_links.py            # exit 1 on any broken link
    python tools/check_doc_links.py --verbose  # list every checked link

Kept dependency-free on purpose; ``tests/test_docs.py`` runs it as part of
the tier-1 suite, so doc drift fails the build both locally and in CI.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

#: Repo-level markdown files checked in addition to docs/ (ISSUE.md is the
#: per-PR task driver and deliberately out of scope).
ROOT_DOCS = ("ROADMAP.md", "PAPER.md", "PAPERS.md", "CHANGES.md", "SNIPPETS.md")

_LINK = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)(?:\s+\"[^\"]*\")?\)")
_IMAGE = re.compile(r"\!\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^(```|~~~)")
_CODE_SPAN = re.compile(r"`[^`]*`")


def strip_code(text: str) -> str:
    """Blank out fenced blocks and inline code spans, preserving line count."""
    lines = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else _CODE_SPAN.sub("", line))
    return "\n".join(lines)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → dashes.

    Underscores survive (GitHub keeps them: ``## execute_with_progress`` →
    ``#execute_with_progress``); only backtick/asterisk markup vanishes.
    """
    heading = re.sub(r"[`*]", "", heading)
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path: Path) -> Set[str]:
    """Every anchor a markdown file exposes (duplicates get -1, -2, ...)."""
    counts: Dict[str, int] = {}
    slugs: Set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def collect_files(root: Path) -> List[Path]:
    files = sorted((root / "docs").glob("*.md"))
    files += [root / name for name in ROOT_DOCS if (root / name).is_file()]
    return files


def check_file(path: Path, root: Path, verbose: bool = False) -> List[str]:
    """Return a list of human-readable problems found in ``path``."""
    problems: List[str] = []
    text = strip_code(path.read_text(encoding="utf-8"))
    links: List[Tuple[str, str]] = [
        (m.group("text"), m.group("target"))
        for pattern in (_LINK, _IMAGE)
        for m in pattern.finditer(text)
    ]
    for text_label, target in links:
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: well-formed is enough, never fetched
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link [{text_label}]({target}) "
                    f"— {base} does not exist"
                )
                continue
        else:
            resolved = path.resolve()  # same-file anchor
        if fragment:
            if resolved.suffix != ".md":
                continue  # anchors into non-markdown files are out of scope
            if fragment not in heading_slugs(resolved):
                problems.append(
                    f"{path.relative_to(root)}: broken anchor [{text_label}]({target}) "
                    f"— no heading slugs to #{fragment} in "
                    f"{resolved.relative_to(root)}"
                )
                continue
        if verbose:
            print(f"  ok: {path.relative_to(root)} -> {target}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=Path(__file__).resolve().parent.parent,
        type=Path,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument("--verbose", action="store_true", help="list every checked link")
    args = parser.parse_args(argv)

    files = collect_files(args.root)
    if not files:
        print("error: no markdown files found — wrong --root?", file=sys.stderr)
        return 2
    problems: List[str] = []
    for path in files:
        problems.extend(check_file(path, args.root, verbose=args.verbose))
    if problems:
        print(f"{len(problems)} broken link(s)/anchor(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"doc links ok: {len(files)} files checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
