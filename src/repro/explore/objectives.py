"""Multi-objective scoring of design candidates and Pareto extraction.

Every evaluated candidate gets a *metrics* record combining the cycle-level
measurements (utilization, cycles, memory activity) with the analytic energy
and area models of :mod:`repro.analysis.power` / :mod:`repro.analysis.area`,
computed from the same design-time parameters the simulator used.  An
:class:`ObjectiveSpec` names one metric and its optimisation direction; the
exploration engine optimises a list of them and reports the set of
non-dominated candidates (:func:`pareto_frontier`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.params import FeatureSet
from ..runtime.outcome import SimOutcome
from ..system.design import AcceleratorSystemDesign
from .space import Candidate

#: Direction of every supported objective metric.
OBJECTIVE_DIRECTIONS: Dict[str, str] = {
    "utilization": "max",
    "cycles": "min",
    "prepass_cycles": "min",
    "bank_conflicts": "min",
    "memory_accesses": "min",
    "energy_pj": "min",
    "area": "min",
    "edp": "min",  # energy-delay product
}


@dataclass(frozen=True)
class ObjectiveSpec:
    """One scoring dimension: a metric name and its direction."""

    name: str
    goal: str  # "min" or "max"

    def __post_init__(self) -> None:
        if self.goal not in ("min", "max"):
            raise ValueError(f"objective {self.name!r}: goal must be min or max")

    @staticmethod
    def parse(text: str) -> "ObjectiveSpec":
        """Parse ``"cycles"`` (intrinsic direction) or ``"min:cycles"``."""
        if ":" in text:
            goal, name = text.split(":", 1)
        else:
            name = text
            goal = OBJECTIVE_DIRECTIONS.get(name)
            if goal is None:
                raise ValueError(
                    f"unknown objective {name!r}; available: "
                    f"{sorted(OBJECTIVE_DIRECTIONS)}"
                )
        if name not in OBJECTIVE_DIRECTIONS:
            raise ValueError(
                f"unknown objective {name!r}; available: {sorted(OBJECTIVE_DIRECTIONS)}"
            )
        return ObjectiveSpec(name=name, goal=goal)


def parse_objectives(text: str) -> List[ObjectiveSpec]:
    """Parse a comma-separated objective list (CLI ``--objectives``)."""
    specs = [ObjectiveSpec.parse(token.strip()) for token in text.split(",") if token.strip()]
    if not specs:
        raise ValueError("at least one objective is required")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate objectives in {names}")
    return specs


DEFAULT_OBJECTIVES = (
    ObjectiveSpec("cycles", "min"),
    ObjectiveSpec("energy_pj", "min"),
    ObjectiveSpec("area", "min"),
)


# ----------------------------------------------------------------------
# Candidate evaluation records.
# ----------------------------------------------------------------------
@dataclass
class Evaluation:
    """One scored candidate: full metrics + the selected objective values."""

    candidate: Candidate
    metrics: Dict[str, float]
    job_hashes: List[str] = field(default_factory=list)
    from_journal: bool = False

    def objective_values(self, objectives: Sequence[ObjectiveSpec]) -> List[float]:
        return [self.metrics[spec.name] for spec in objectives]

    def as_dict(self, objectives: Sequence[ObjectiveSpec]) -> Dict[str, object]:
        record: Dict[str, object] = dict(self.candidate.as_dict())
        for spec in objectives:
            record[spec.name] = self.metrics.get(spec.name)
        return record


def score_candidate(
    candidate: Candidate,
    design: AcceleratorSystemDesign,
    features: FeatureSet,
    outcomes: Sequence[SimOutcome],
) -> Evaluation:
    """Aggregate per-workload outcomes + analytic models into one record.

    Cycle counts, conflicts and accesses are summed over the workload suite;
    utilization is compute-weighted (total ideal cycles over total measured
    cycles); energy sums the activity-driven power model over each kernel;
    area is workload-independent.
    """
    # Imported here, not at module level: repro.analysis re-exports the DSE
    # sweeps which are built on repro.explore — a cycle at import time.
    from ..analysis.area import AreaModel
    from ..analysis.power import PowerModel

    if not outcomes:
        raise ValueError(f"candidate {candidate.key()}: no outcomes to score")
    total_cycles = sum(outcome.kernel_cycles for outcome in outcomes)
    total_ideal = sum(outcome.ideal_compute_cycles for outcome in outcomes)
    utilization = total_ideal / total_cycles if total_cycles else 0.0

    power_model = PowerModel(design)
    energy_pj = 0.0
    for outcome in outcomes:
        if outcome.result is not None:
            # Average power (mW) × kernel time (ns at the design clock) = pJ.
            breakdown = power_model.breakdown(outcome.result)
            energy_pj += breakdown.total * (
                outcome.kernel_cycles / design.clock_frequency_ghz
            )
        else:
            # Analytic backends carry no activity counters; approximate with
            # peak-rate MAC energy so cross-backend comparisons stay sane.
            macs = outcome.ideal_compute_cycles * design.num_pes
            energy_pj += macs * power_model.coeff.int8_mac
    area = AreaModel(design).system_breakdown().total

    metrics: Dict[str, float] = {
        "utilization": utilization,
        "cycles": float(total_cycles),
        "prepass_cycles": float(sum(o.prepass_cycles for o in outcomes)),
        "bank_conflicts": float(sum(o.bank_conflicts for o in outcomes)),
        "memory_accesses": float(sum(o.memory_accesses for o in outcomes)),
        "energy_pj": energy_pj,
        "area": area,
        "edp": energy_pj * total_cycles,
    }
    return Evaluation(
        candidate=candidate,
        metrics=metrics,
        job_hashes=[outcome.job_hash for outcome in outcomes],
    )


# ----------------------------------------------------------------------
# Pareto dominance.
# ----------------------------------------------------------------------
def dominates(
    first: Evaluation, second: Evaluation, objectives: Sequence[ObjectiveSpec]
) -> bool:
    """True when ``first`` is no worse on every objective and better on one."""
    strictly_better = False
    for spec in objectives:
        a = first.metrics[spec.name]
        b = second.metrics[spec.name]
        if spec.goal == "max":
            a, b = -a, -b
        if a > b:
            return False
        if a < b:
            strictly_better = True
    return strictly_better


def pareto_frontier(
    evaluations: Sequence[Evaluation], objectives: Sequence[ObjectiveSpec]
) -> List[Evaluation]:
    """Non-dominated evaluations, sorted by candidate key (deterministic).

    Duplicate candidates (same key) keep their first occurrence; candidates
    with identical objective vectors are all kept — neither dominates.
    """
    unique: Dict[str, Evaluation] = {}
    for evaluation in evaluations:
        unique.setdefault(evaluation.candidate.key(), evaluation)
    frontier = [
        evaluation
        for evaluation in unique.values()
        if not any(
            dominates(other, evaluation, objectives)
            for other in unique.values()
            if other is not evaluation
        )
    ]
    return sorted(frontier, key=lambda evaluation: evaluation.candidate.key())


def best_by_scalar(
    evaluations: Sequence[Evaluation], objective: ObjectiveSpec
) -> Evaluation:
    """The single best evaluation on one objective (ties: candidate key)."""
    if not evaluations:
        raise ValueError("no evaluations to choose from")
    sign = -1.0 if objective.goal == "max" else 1.0
    return min(
        evaluations,
        key=lambda evaluation: (
            sign * evaluation.metrics[objective.name],
            evaluation.candidate.key(),
        ),
    )
