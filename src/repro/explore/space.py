"""Declarative design-space description for exploration runs.

A :class:`SearchSpace` names a set of *axes* (design-time parameters of the
evaluation system — FIFO depths, bank counts, bank-group sizes — or
:class:`~repro.core.params.FeatureSet` switches), the discrete values each
axis may take, and the validity constraints that tie axes together (e.g. the
GIMA group size must divide the bank count).  A point of the space is a
:class:`Candidate`: a complete name→value assignment that the space can
materialise into a concrete
:class:`~repro.system.design.AcceleratorSystemDesign` + ``FeatureSet`` pair
ready to be simulated.

The space is purely declarative: enumeration order, seeded sampling and
neighbourhood moves are all deterministic functions of the axis declaration,
which is what makes exploration runs reproducible and resumable (the space
digest is written into the run journal and checked on resume).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.params import FeatureSet, StreamerDesign
from ..runtime.job import stable_digest
from ..system.design import AcceleratorSystemDesign, datamaestro_evaluation_system

#: Axis values are plain scalars so they JSON-round-trip through the journal.
AxisValue = object


@dataclass(frozen=True)
class ParameterAxis:
    """One named, discrete design-time parameter."""

    name: str
    values: Tuple[AxisValue, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be non-empty")
        if not self.values:
            raise ValueError(f"axis {self.name!r} needs at least one value")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"axis {self.name!r} has duplicate values")
        for value in self.values:
            if not isinstance(value, (bool, int, float, str)):
                raise TypeError(
                    f"axis {self.name!r}: value {value!r} is not a JSON scalar"
                )

    @staticmethod
    def make(name: str, values: Sequence[AxisValue]) -> "ParameterAxis":
        return ParameterAxis(name=name, values=tuple(values))


@dataclass(frozen=True)
class Candidate:
    """One complete assignment of every axis of a search space."""

    assignment: Tuple[Tuple[str, AxisValue], ...]

    @staticmethod
    def from_dict(values: Dict[str, AxisValue]) -> "Candidate":
        return Candidate(assignment=tuple(sorted(values.items())))

    def as_dict(self) -> Dict[str, AxisValue]:
        return dict(self.assignment)

    def key(self) -> str:
        """Stable identity string (journal key, dedup key, sort key)."""
        return ",".join(f"{name}={value!r}" for name, value in self.assignment)

    def __getitem__(self, name: str) -> AxisValue:
        for axis_name, value in self.assignment:
            if axis_name == name:
                return value
        raise KeyError(name)


@dataclass(frozen=True)
class Constraint:
    """A named validity predicate over a full assignment.

    The *name* participates in the space digest (predicates themselves cannot
    be hashed portably), so renaming or swapping constraints invalidates the
    resume journal — which is the safe behaviour.
    """

    name: str
    predicate: Callable[[Dict[str, AxisValue]], bool] = field(compare=False)

    def holds(self, values: Dict[str, AxisValue]) -> bool:
        return bool(self.predicate(values))


def group_divides_banks(values: Dict[str, AxisValue]) -> bool:
    """Built-in constraint: ``gima_group_size`` must divide ``num_banks``."""
    group = values.get("gima_group_size")
    banks = values.get("num_banks")
    if group is None or banks is None:
        return True
    return int(banks) % int(group) == 0


GROUP_DIVIDES_BANKS = Constraint("group_divides_banks", group_divides_banks)


# ----------------------------------------------------------------------
# Materialising assignments into designs.
# ----------------------------------------------------------------------
#: Axes that map onto FeatureSet switches rather than hardware parameters.
FEATURE_AXES = tuple(FeatureSet.all_enabled().as_dict())

#: Hardware axes understood by the default DataMaestro builder.
DESIGN_AXES = (
    "num_banks",
    "gima_group_size",
    "scratchpad_kib",
    "data_fifo_depth",
    "address_fifo_depth",
)


def _with_streamer_overrides(
    design: AcceleratorSystemDesign,
    port_names: Sequence[str],
    **overrides: object,
) -> AcceleratorSystemDesign:
    streamers: List[StreamerDesign] = []
    for streamer in design.streamers:
        if streamer.name in port_names:
            streamers.append(replace(streamer, **overrides))
        else:
            streamers.append(streamer)
    return replace(design, streamers=tuple(streamers))


def datamaestro_builder(
    base_design: Optional[AcceleratorSystemDesign] = None,
    base_features: Optional[FeatureSet] = None,
    fifo_ports: Sequence[str] = ("A", "B"),
) -> Callable[[Dict[str, AxisValue]], Tuple[AcceleratorSystemDesign, FeatureSet]]:
    """Builder for spaces over the paper's evaluation system.

    Recognised axes: the memory/system parameters in :data:`DESIGN_AXES`
    (``data_fifo_depth`` / ``address_fifo_depth`` apply to the per-cycle
    operand ports in ``fifo_ports``) and every ``FeatureSet`` switch in
    :data:`FEATURE_AXES`.  When ``num_banks``/``gima_group_size``/
    ``scratchpad_kib`` appear the system is regenerated from
    :func:`datamaestro_evaluation_system`; otherwise ``base_design`` is
    modified in place, so single-axis sweeps can start from a custom design.
    """

    def build(values: Dict[str, AxisValue]) -> Tuple[AcceleratorSystemDesign, FeatureSet]:
        unknown = [
            name
            for name in values
            if name not in DESIGN_AXES and name not in FEATURE_AXES
        ]
        if unknown:
            raise KeyError(
                f"unknown axes {unknown}; known design axes: {list(DESIGN_AXES)}, "
                f"feature axes: {list(FEATURE_AXES)}"
            )

        if any(name in values for name in ("num_banks", "gima_group_size", "scratchpad_kib")):
            num_banks = int(values.get("num_banks", 64))
            design = datamaestro_evaluation_system(
                scratchpad_kib=int(values.get("scratchpad_kib", 128)),
                num_banks=num_banks,
                gima_group_size=int(values.get("gima_group_size", max(num_banks // 4, 1))),
            )
        else:
            design = base_design or datamaestro_evaluation_system()

        overrides: Dict[str, object] = {}
        if "data_fifo_depth" in values:
            depth = int(values["data_fifo_depth"])
            overrides["data_buffer_depth"] = depth
            overrides["address_buffer_depth"] = int(
                values.get("address_fifo_depth", max(depth, 2))
            )
        elif "address_fifo_depth" in values:
            overrides["address_buffer_depth"] = int(values["address_fifo_depth"])
        if overrides:
            design = _with_streamer_overrides(design, fifo_ports, **overrides)

        features = base_features or FeatureSet.all_enabled()
        flags = {name: bool(values[name]) for name in FEATURE_AXES if name in values}
        if flags:
            features = features.with_updates(**flags)
        return design, features

    build.builder_name = "datamaestro"  # type: ignore[attr-defined]
    return build


# ----------------------------------------------------------------------
# The search space itself.
# ----------------------------------------------------------------------
class SearchSpace:
    """Named axes + constraints + a builder that materialises candidates."""

    def __init__(
        self,
        axes: Sequence[ParameterAxis],
        constraints: Sequence[Constraint] = (),
        builder: Optional[
            Callable[[Dict[str, AxisValue]], Tuple[AcceleratorSystemDesign, FeatureSet]]
        ] = None,
        name: str = "custom",
    ) -> None:
        if not axes:
            raise ValueError("a search space needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        self.axes = tuple(axes)
        self.constraints = tuple(constraints)
        self.builder = builder or datamaestro_builder()
        self.name = name

    # ------------------------------------------------------------------
    def axis(self, name: str) -> ParameterAxis:
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise KeyError(f"no axis named {name!r} in space {self.name!r}")

    def size(self) -> int:
        """Cartesian size of the space *before* constraint filtering."""
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def digest(self) -> str:
        """Stable identity of the space declaration (journal header field)."""
        payload = {
            "name": self.name,
            "axes": [[axis.name, list(axis.values)] for axis in self.axes],
            "constraints": [constraint.name for constraint in self.constraints],
            "builder": getattr(self.builder, "builder_name", "custom"),
        }
        return stable_digest(payload)

    # ------------------------------------------------------------------
    def is_valid(self, candidate: Candidate) -> bool:
        """Constraints hold and the candidate builds into a legal design.

        Only *per-candidate* illegality (a ``ValueError`` from the design
        model) reads as invalid; a ``KeyError`` for an axis the builder does
        not understand is a space-declaration error and propagates.
        """
        values = candidate.as_dict()
        if any(not constraint.holds(values) for constraint in self.constraints):
            return False
        try:
            self.build(candidate)
        except ValueError:
            return False
        return True

    def build(self, candidate: Candidate) -> Tuple[AcceleratorSystemDesign, FeatureSet]:
        """Materialise a candidate into a (design, features) pair."""
        return self.builder(candidate.as_dict())

    # ------------------------------------------------------------------
    def enumerate(self) -> Iterator[Candidate]:
        """All valid candidates, in deterministic axis-declaration order."""
        value_axes = [axis.values for axis in self.axes]
        names = [axis.name for axis in self.axes]
        for combo in itertools.product(*value_axes):
            candidate = Candidate.from_dict(dict(zip(names, combo)))
            if self.is_valid(candidate):
                yield candidate

    def sample(self, rng: random.Random, max_attempts: int = 64) -> Optional[Candidate]:
        """One valid candidate drawn uniformly per axis (rejection sampling)."""
        for _ in range(max_attempts):
            values = {axis.name: rng.choice(axis.values) for axis in self.axes}
            candidate = Candidate.from_dict(values)
            if self.is_valid(candidate):
                return candidate
        return None

    def mutate(
        self, candidate: Candidate, rng: random.Random, max_attempts: int = 64
    ) -> Optional[Candidate]:
        """A valid neighbour: one axis re-drawn to a different value."""
        mutable = [axis for axis in self.axes if len(axis.values) > 1]
        if not mutable:
            return None
        for _ in range(max_attempts):
            axis = rng.choice(mutable)
            current = candidate[axis.name]
            alternatives = [value for value in axis.values if value != current]
            values = candidate.as_dict()
            values[axis.name] = rng.choice(alternatives)
            mutated = Candidate.from_dict(values)
            if self.is_valid(mutated):
                return mutated
        return None

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "axes": {axis.name: list(axis.values) for axis in self.axes},
            "constraints": [constraint.name for constraint in self.constraints],
            "cartesian_size": self.size(),
            "digest": self.digest(),
        }


# ----------------------------------------------------------------------
# Named spaces exposed on the CLI.
# ----------------------------------------------------------------------
def default_search_space() -> SearchSpace:
    """Joint space over the paper's three design-time sweep axes."""
    return SearchSpace(
        axes=(
            ParameterAxis.make("data_fifo_depth", (2, 4, 8)),
            ParameterAxis.make("num_banks", (32, 64)),
            ParameterAxis.make("gima_group_size", (8, 16, 32)),
        ),
        constraints=(GROUP_DIVIDES_BANKS,),
        name="default",
    )


def fifo_depth_space(depths: Sequence[int] = (1, 2, 4, 8, 16)) -> SearchSpace:
    return SearchSpace(
        axes=(ParameterAxis.make("data_fifo_depth", tuple(int(d) for d in depths)),),
        name="fifo_depth",
    )


def bank_count_space(bank_counts: Sequence[int] = (32, 64, 128)) -> SearchSpace:
    return SearchSpace(
        axes=(ParameterAxis.make("num_banks", tuple(int(b) for b in bank_counts)),),
        name="bank_count",
    )


def gima_group_space(group_sizes: Sequence[int] = (8, 16, 32, 64)) -> SearchSpace:
    return SearchSpace(
        axes=(ParameterAxis.make("gima_group_size", tuple(int(g) for g in group_sizes)),),
        constraints=(GROUP_DIVIDES_BANKS,),
        name="gima_group",
    )


def feature_space() -> SearchSpace:
    """The 2^5 FeatureSet switchboard as a search space."""
    return SearchSpace(
        axes=tuple(ParameterAxis.make(name, (False, True)) for name in FEATURE_AXES),
        name="features",
    )


def named_search_spaces() -> Dict[str, Callable[[], SearchSpace]]:
    """Registry of the spaces selectable with ``repro explore --space``."""
    return {
        "default": default_search_space,
        "fifo_depth": fifo_depth_space,
        "bank_count": bank_count_space,
        "gima_group": gima_group_space,
        "features": feature_space,
    }


def search_space_by_name(name: str) -> SearchSpace:
    spaces = named_search_spaces()
    if name not in spaces:
        raise KeyError(f"unknown search space {name!r}; available: {sorted(spaces)}")
    return spaces[name]()
