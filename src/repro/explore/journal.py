"""JSONL run journal: checkpointing and resume for exploration runs.

The journal is an append-only JSON-lines file.  The first line is a header
describing the run configuration (space digest, strategy, seed, objectives,
workload digests, package version); every further line records one completed
candidate evaluation (assignment, metrics, job hashes).  Because lines are
flushed as they are appended, a killed run leaves a valid journal: at worst
the final line is truncated, and :meth:`RunJournal.load` simply ignores an
unparseable trailing line.

Resume contract: the engine replays journaled evaluations instead of
re-simulating them, but only when the header matches the current run
configuration exactly — a changed space, strategy, seed or objective list
raises :class:`JournalMismatchError` rather than silently mixing runs.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .objectives import Evaluation
from .space import Candidate

#: Journal format version; bump on incompatible record changes.
JOURNAL_FORMAT = 1


class JournalError(ValueError):
    """The journal file cannot be used at all (bad header, wrong format)."""


class JournalMismatchError(JournalError):
    """The journal belongs to a different run configuration."""


@dataclass
class JournalContents:
    """Parsed journal: the header plus every readable evaluation record."""

    header: Dict[str, object]
    evaluations: List[Evaluation] = field(default_factory=list)
    dropped_lines: int = 0


class RunJournal:
    """Append-only JSONL checkpoint of one exploration run."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file() and self.path.stat().st_size > 0

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    @staticmethod
    def _header_record(header: Dict[str, object]) -> str:
        record = {"type": "header", "format": JOURNAL_FORMAT, **header}
        return json.dumps(record, sort_keys=True) + "\n"

    @staticmethod
    def _evaluation_record(evaluation: Evaluation) -> str:
        record = {
            "type": "evaluation",
            "candidate": evaluation.candidate.as_dict(),
            "metrics": evaluation.metrics,
            "job_hashes": evaluation.job_hashes,
        }
        return json.dumps(record, sort_keys=True) + "\n"

    def start(self, header: Dict[str, object]) -> None:
        """Begin a fresh journal (truncates any previous file)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as handle:
            handle.write(self._header_record(header))

    def append(self, evaluation: Evaluation) -> None:
        """Append one evaluation record and flush it to disk."""
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(self._evaluation_record(evaluation))
            handle.flush()

    def _rewrite(self, contents: "JournalContents") -> None:
        """Replace the journal atomically (temp file + rename).

        Repair must use the same write-then-replace discipline as
        ``ResultCache.put``: a crash mid-repair leaves either the original
        journal or the fully repaired one on disk, never a half-written
        file that would lose evaluations and force re-simulation on the
        next resume.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            key: value
            for key, value in contents.header.items()
            if key not in ("type", "format")
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{self.path.name}-", suffix=".tmp", dir=str(self.path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self._header_record(header))
                for evaluation in contents.evaluations:
                    handle.write(self._evaluation_record(evaluation))
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def load(self) -> JournalContents:
        """Parse the journal, tolerating a truncated/garbled trailing line."""
        if not self.exists():
            raise JournalError(f"journal {self.path} does not exist or is empty")
        lines = self.path.read_text(encoding="utf-8").splitlines()
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as error:
            raise JournalError(f"journal {self.path}: unreadable header") from error
        if not isinstance(header, dict) or header.get("type") != "header":
            raise JournalError(f"journal {self.path}: first line is not a header")
        if header.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"journal {self.path}: format {header.get('format')!r} "
                f"!= {JOURNAL_FORMAT}"
            )

        contents = JournalContents(header=header)
        for position, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if record.get("type") != "evaluation":
                    raise ValueError("not an evaluation record")
                evaluation = Evaluation(
                    candidate=Candidate.from_dict(record["candidate"]),
                    metrics={str(k): float(v) for k, v in record["metrics"].items()},
                    job_hashes=[str(h) for h in record.get("job_hashes", [])],
                    from_journal=True,
                )
            except (ValueError, KeyError, TypeError, AttributeError):
                if position == len(lines):
                    # Interrupted mid-append: drop the partial final record.
                    contents.dropped_lines += 1
                    continue
                raise JournalError(
                    f"journal {self.path}: unreadable record on line {position}"
                )
            contents.evaluations.append(evaluation)
        return contents

    def resume(self, header: Dict[str, object]) -> JournalContents:
        """Load for resumption, verifying the header matches ``header``.

        If the previous run died mid-append, the partial trailing line is
        dropped *and* the file is atomically rewritten without it, so that
        records appended by the resumed run start on a clean line and a
        crash *during the repair itself* cannot lose any evaluation.
        """
        contents = self.load()
        if contents.dropped_lines:
            self._rewrite(contents)
            contents.dropped_lines = 0
        mismatched = {
            key: (contents.header.get(key), value)
            for key, value in header.items()
            if contents.header.get(key) != value
        }
        if mismatched:
            details = ", ".join(
                f"{key}: journal={old!r} vs run={new!r}"
                for key, (old, new) in sorted(mismatched.items())
            )
            raise JournalMismatchError(
                f"journal {self.path} belongs to a different run ({details})"
            )
        return contents

    def evaluation_map(
        self, contents: Optional[JournalContents] = None
    ) -> Dict[str, Evaluation]:
        """Journaled evaluations keyed by candidate key (first wins)."""
        contents = contents or self.load()
        replayed: Dict[str, Evaluation] = {}
        for evaluation in contents.evaluations:
            replayed.setdefault(evaluation.candidate.key(), evaluation)
        return replayed
