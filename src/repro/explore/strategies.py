"""Pluggable search strategies behind a common protocol.

A strategy decides *which* candidates to evaluate next; the engine decides
*how* (batched through the runtime, journaled, cached).  The contract that
makes runs reproducible and resumable:

* after :meth:`Strategy.reset`, the proposal sequence is a deterministic
  function of the space, the seed, and the evaluations the engine reports
  back — never of wall-clock time or process state;
* strategies deduplicate only against their **own** proposal history.  The
  engine may serve a proposed candidate from the journal or the result cache
  instead of simulating it; the strategy must not react to that, otherwise a
  resumed run would diverge from an uninterrupted one.

Three strategies are built in: exhaustive ``grid``, seeded ``random``
sampling, and a seeded ``evolutionary`` refiner (random warm-up population,
then mutation of the current Pareto parents).
"""

from __future__ import annotations

import random
import warnings
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from .objectives import Evaluation, ObjectiveSpec, pareto_frontier
from .space import Candidate, SearchSpace


class Strategy:
    """Base class / protocol for candidate-proposal strategies."""

    name = "strategy"

    #: Candidates the strategy wanted to propose but could not produce
    #: (``max_attempts_per_draw`` exhausted on a small or heavily
    #: constrained space), summed over every :meth:`propose` call.  A
    #: non-zero value means the engine under-spent its budget.  This is a
    #: per-draw diagnostic — the terminal empty batch also counts its full
    #: target, so it can exceed the budget under-spend; the exploration
    #: report's ``proposal_shortfall`` is the exact budget-level figure.
    draw_shortfall: int = 0

    def _note_shortfall(self, missing: int) -> None:
        if missing <= 0:
            return
        self.draw_shortfall += missing
        if not getattr(self, "_shortfall_warned", False):
            self._shortfall_warned = True
            warnings.warn(
                f"{self.name} strategy could not fill a proposal batch "
                f"({missing} candidate(s) short after exhausting its draw "
                f"attempts); the space is likely smaller than the budget "
                f"and the run will under-spend it",
                RuntimeWarning,
                stacklevel=3,
            )

    def reset(self, space: SearchSpace, seed: int) -> None:
        """Bind to a space and seed; must fully re-initialise all state."""
        raise NotImplementedError

    def propose(
        self,
        evaluated: Mapping[str, Evaluation],
        remaining: int,
    ) -> List[Candidate]:
        """Next batch of at most ``remaining`` candidates; ``[]`` ends the run.

        ``evaluated`` maps candidate key → evaluation for every candidate
        this strategy proposed earlier (journal replays included).
        """
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        return {"strategy": self.name}


class GridStrategy(Strategy):
    """Exhaustive enumeration in deterministic axis order."""

    name = "grid"

    def __init__(self) -> None:
        self._iterator: Optional[Iterator[Candidate]] = None

    def reset(self, space: SearchSpace, seed: int) -> None:
        self._iterator = space.enumerate()

    def propose(
        self, evaluated: Mapping[str, Evaluation], remaining: int
    ) -> List[Candidate]:
        assert self._iterator is not None, "reset() must be called first"
        batch: List[Candidate] = []
        for candidate in self._iterator:
            batch.append(candidate)
            if len(batch) >= remaining:
                break
        return batch


class RandomStrategy(Strategy):
    """Seeded uniform sampling without replacement (within one run)."""

    name = "random"

    def __init__(self, batch_size: int = 8, max_attempts_per_draw: int = 64) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self.max_attempts_per_draw = max_attempts_per_draw
        self._rng: Optional[random.Random] = None
        self._space: Optional[SearchSpace] = None
        self._proposed: set = set()

    def reset(self, space: SearchSpace, seed: int) -> None:
        self._rng = random.Random(f"random:{seed}")
        self._space = space
        self._proposed = set()
        self.draw_shortfall = 0
        self._shortfall_warned = False

    def propose(
        self, evaluated: Mapping[str, Evaluation], remaining: int
    ) -> List[Candidate]:
        assert self._rng is not None and self._space is not None
        batch: List[Candidate] = []
        target = min(self.batch_size, remaining)
        misses = 0
        while len(batch) < target and misses < self.max_attempts_per_draw:
            candidate = self._space.sample(self._rng)
            if candidate is None:
                break
            if candidate.key() in self._proposed:
                misses += 1
                continue
            self._proposed.add(candidate.key())
            batch.append(candidate)
        self._note_shortfall(target - len(batch))
        return batch

    def describe(self) -> Dict[str, object]:
        return {
            "strategy": self.name,
            "batch_size": self.batch_size,
            "draw_shortfall": self.draw_shortfall,
        }


class EvolutionaryStrategy(Strategy):
    """Seeded (μ+λ)-style refiner over the Pareto frontier.

    Generation zero is a random warm-up population; every later generation
    mutates parents drawn from the Pareto frontier of everything evaluated so
    far (parents sorted by candidate key, so selection is deterministic).
    Candidates never proposed twice; when the neighbourhood is exhausted the
    strategy falls back to fresh random samples, and gives up once no new
    candidate can be produced.
    """

    name = "evolutionary"

    def __init__(
        self,
        population: int = 8,
        objectives: Sequence[ObjectiveSpec] = (),
        max_attempts_per_draw: int = 64,
    ) -> None:
        if population <= 0:
            raise ValueError("population must be positive")
        self.population = population
        self.objectives = tuple(objectives)
        self.max_attempts_per_draw = max_attempts_per_draw
        self._rng: Optional[random.Random] = None
        self._space: Optional[SearchSpace] = None
        self._proposed: set = set()
        self._generation = 0

    def reset(self, space: SearchSpace, seed: int) -> None:
        self._rng = random.Random(f"evolutionary:{seed}")
        self._space = space
        self._proposed = set()
        self._generation = 0
        self.draw_shortfall = 0
        self._shortfall_warned = False

    # ------------------------------------------------------------------
    def _fresh(self, batch: List[Candidate]) -> Optional[Candidate]:
        """One never-proposed random candidate, or None when exhausted."""
        assert self._rng is not None and self._space is not None
        in_batch = {candidate.key() for candidate in batch}
        for _ in range(self.max_attempts_per_draw):
            candidate = self._space.sample(self._rng)
            if candidate is None:
                return None
            if candidate.key() not in self._proposed and candidate.key() not in in_batch:
                return candidate
        return None

    def propose(
        self, evaluated: Mapping[str, Evaluation], remaining: int
    ) -> List[Candidate]:
        assert self._rng is not None and self._space is not None
        target = min(self.population, remaining)
        batch: List[Candidate] = []

        if self._generation > 0 and evaluated:
            ours = [
                evaluation
                for key, evaluation in sorted(evaluated.items())
                if key in self._proposed
            ]
            objectives = self.objectives or (ObjectiveSpec("cycles", "min"),)
            parents = pareto_frontier(ours, objectives) or ours
            in_batch: set = set()
            for _ in range(target * self.max_attempts_per_draw):
                if len(batch) >= target:
                    break
                parent = self._rng.choice(parents)
                child = self._space.mutate(parent.candidate, self._rng)
                if (
                    child is not None
                    and child.key() not in self._proposed
                    and child.key() not in in_batch
                ):
                    in_batch.add(child.key())
                    batch.append(child)

        while len(batch) < target:
            candidate = self._fresh(batch)
            if candidate is None:
                break
            batch.append(candidate)

        for candidate in batch:
            self._proposed.add(candidate.key())
        self._generation += 1
        self._note_shortfall(target - len(batch))
        return batch

    def describe(self) -> Dict[str, object]:
        return {
            "strategy": self.name,
            "population": self.population,
            "objectives": [f"{spec.goal}:{spec.name}" for spec in self.objectives],
            "draw_shortfall": self.draw_shortfall,
        }


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
def available_strategies() -> List[str]:
    return ["grid", "random", "evolutionary"]


def make_strategy(
    name: str,
    objectives: Sequence[ObjectiveSpec] = (),
    population: int = 8,
) -> Strategy:
    """Instantiate a registered strategy by name."""
    if name == "grid":
        return GridStrategy()
    if name == "random":
        return RandomStrategy(batch_size=population)
    if name == "evolutionary":
        return EvolutionaryStrategy(population=population, objectives=objectives)
    raise KeyError(
        f"unknown strategy {name!r}; available: {available_strategies()}"
    )
