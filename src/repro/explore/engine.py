"""The exploration engine: strategy-driven, cached, journaled evaluation.

:class:`ExplorationEngine` closes the loop between a
:class:`~repro.explore.space.SearchSpace`, a
:class:`~repro.explore.strategies.Strategy` and the
:class:`~repro.runtime.simulator.Simulator`:

1. the strategy proposes a batch of candidates (bounded by the budget);
2. candidates already in the run journal are *replayed* (no simulation at
   all); the rest are materialised into :class:`~repro.runtime.job.SimJob`
   batches and pushed through ``Simulator.simulate_many`` — so the on-disk
   result cache and the process pool make repeated exploration incremental;
3. fresh evaluations are scored against the objective layer, appended to the
   journal, and reported back to the strategy for the next round.

Because every component is a deterministic function of (space, strategy,
seed, workloads), a fixed-seed run is exactly reproducible, a warm-cache
re-run performs zero new cycle simulations, and an interrupted run resumed
from its journal converges to the same Pareto frontier as an uninterrupted
one.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..engine import DEFAULT_ENGINE
from ..runtime.job import DATAMAESTRO_BACKEND, SimJob, stable_digest, canonical_encode
from ..runtime.simulator import Simulator
from ..sim.result import DEFAULT_CYCLE_BUDGET
from ..workloads.spec import GemmWorkload, Workload
from .journal import JournalError, RunJournal
from .objectives import (
    DEFAULT_OBJECTIVES,
    Evaluation,
    ObjectiveSpec,
    best_by_scalar,
    pareto_frontier,
    score_candidate,
)
from .space import Candidate, SearchSpace
from .strategies import Strategy


def default_exploration_workloads() -> List[Workload]:
    """The default evaluation kernel (the DSE GeMM of ``analysis.dse``)."""
    return [GemmWorkload(name="dse_gemm", m=64, n=64, k=96)]


@dataclass
class ExplorationReport:
    """Everything one exploration run produced."""

    space: Dict[str, object]
    strategy: str
    seed: int
    budget: int
    objectives: List[ObjectiveSpec]
    evaluations: List[Evaluation] = field(default_factory=list)
    frontier: List[Evaluation] = field(default_factory=list)
    simulated: int = 0
    cache_hits: int = 0
    replayed_from_journal: int = 0
    #: Proposals the run fell short of its budget (the strategy stopped
    #: producing candidates early) — a non-zero value explains an
    #: under-spent budget.
    proposal_shortfall: int = 0

    # ------------------------------------------------------------------
    def best(self, objective: Optional[ObjectiveSpec] = None) -> Evaluation:
        """Best evaluation on one objective (default: the first declared)."""
        return best_by_scalar(self.evaluations, objective or self.objectives[0])

    def objective_names(self) -> List[str]:
        return [spec.name for spec in self.objectives]

    def as_dict(self) -> Dict[str, object]:
        return {
            "space": self.space,
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "objectives": [f"{spec.goal}:{spec.name}" for spec in self.objectives],
            "num_evaluations": len(self.evaluations),
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "replayed_from_journal": self.replayed_from_journal,
            "proposal_shortfall": self.proposal_shortfall,
            "evaluations": [
                {
                    "candidate": evaluation.candidate.as_dict(),
                    "metrics": evaluation.metrics,
                    "on_frontier": evaluation in self.frontier,
                }
                for evaluation in self.evaluations
            ],
            "frontier": [
                {
                    "candidate": evaluation.candidate.as_dict(),
                    "metrics": evaluation.metrics,
                }
                for evaluation in self.frontier
            ],
        }

    def to_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def to_csv_text(self) -> str:
        """Flat CSV: one row per evaluation, axes then metrics then frontier."""
        axis_names = sorted(
            {name for e in self.evaluations for name, _ in e.candidate.assignment}
        )
        metric_names = sorted({name for e in self.evaluations for name in e.metrics})
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(axis_names + metric_names + ["on_frontier"])
        frontier_keys = {e.candidate.key() for e in self.frontier}
        for evaluation in self.evaluations:
            values = evaluation.candidate.as_dict()
            writer.writerow(
                [values.get(name, "") for name in axis_names]
                + [evaluation.metrics.get(name, "") for name in metric_names]
                + [evaluation.candidate.key() in frontier_keys]
            )
        return buffer.getvalue()

    def to_csv(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_csv_text(), encoding="utf-8")

    def frontier_rows(self) -> List[List[object]]:
        """Tabular frontier view: candidate key + objective values."""
        return [
            [evaluation.candidate.key()]
            + [evaluation.metrics[spec.name] for spec in self.objectives]
            for evaluation in self.frontier
        ]


class ExplorationEngine:
    """Runs one multi-objective exploration over a design space."""

    def __init__(
        self,
        space: SearchSpace,
        strategy: Strategy,
        objectives: Sequence[ObjectiveSpec] = DEFAULT_OBJECTIVES,
        workloads: Optional[Sequence[Workload]] = None,
        simulator: Optional[Simulator] = None,
        seed: int = 0,
        sim_seed: int = 0,
        backend: str = DATAMAESTRO_BACKEND,
        max_cycles: int = DEFAULT_CYCLE_BUDGET,
        sim_engine: str = DEFAULT_ENGINE,
        service: Optional[object] = None,
    ) -> None:
        """``service`` (a :class:`repro.serve.ServiceClient`) routes every
        candidate batch through the shared simulation service, so several
        concurrent explorations coalesce duplicate candidate evaluations
        and share one scheduler and cache (``docs/SERVE.md``).  Pass either
        ``service`` or a pre-configured ``simulator``, not both."""
        if not objectives:
            raise ValueError("at least one objective is required")
        if service is not None and simulator is not None:
            raise ValueError(
                "pass either simulator or service, not both "
                "(attach the service to the simulator instead: "
                "Simulator(service=...))"
            )
        self.space = space
        self.strategy = strategy
        self.objectives = list(objectives)
        self.workloads = list(workloads or default_exploration_workloads())
        self.simulator = simulator or Simulator(service=service)
        self.seed = seed
        self.sim_seed = sim_seed
        self.backend = backend
        self.max_cycles = max_cycles
        self.sim_engine = sim_engine

    # ------------------------------------------------------------------
    def journal_header(self, budget: int) -> Dict[str, object]:
        """Run identity written to (and checked against) the journal."""
        from .. import __version__

        return {
            "package_version": __version__,
            "space_digest": self.space.digest(),
            "strategy": self.strategy.name,
            # Hyperparameters too: resuming an evolutionary run with a
            # different population would silently change parent selection.
            "strategy_config": self.strategy.describe(),
            "seed": self.seed,
            "sim_seed": self.sim_seed,
            "backend": self.backend,
            "sim_engine": self.sim_engine,
            "objectives": [f"{spec.goal}:{spec.name}" for spec in self.objectives],
            "workloads": stable_digest(
                [canonical_encode(workload) for workload in self.workloads]
            ),
            "budget": budget,
        }

    def _evaluate_batch(self, batch: Sequence[Candidate]) -> List[Evaluation]:
        """Simulate a batch of candidates (all workloads, one runtime call)."""
        built = [self.space.build(candidate) for candidate in batch]
        jobs: List[SimJob] = []
        for candidate, (design, features) in zip(batch, built):
            for workload in self.workloads:
                jobs.append(
                    SimJob(
                        workload=workload,
                        design=design,
                        features=features,
                        backend=self.backend,
                        seed=self.sim_seed,
                        max_cycles=self.max_cycles,
                        engine=self.sim_engine,
                        label=f"explore:{candidate.key()}",
                    )
                )
        outcomes = self.simulator.simulate_many(jobs)
        evaluations = []
        stride = len(self.workloads)
        for index, (candidate, (design, features)) in enumerate(zip(batch, built)):
            chunk = outcomes[index * stride : (index + 1) * stride]
            evaluations.append(score_candidate(candidate, design, features, chunk))
        return evaluations

    @staticmethod
    def _record_metrics(
        evaluated: int, simulated: int, cache_hits: int, replayed: int
    ) -> None:
        """Fold one run() into the process-wide obs registry."""
        from ..obs.metrics import get_registry

        registry = get_registry()
        for name, help, amount in (
            (
                "repro_explore_evaluated_total",
                "Candidates scored across exploration runs.",
                evaluated,
            ),
            (
                "repro_explore_simulated_total",
                "Backend simulations performed for exploration.",
                simulated,
            ),
            (
                "repro_explore_cache_hits_total",
                "Exploration jobs resolved from the result cache.",
                cache_hits,
            ),
            (
                "repro_explore_replayed_total",
                "Evaluations replayed from a run journal.",
                replayed,
            ),
        ):
            if amount:
                registry.counter(name, help).inc(amount)

    # ------------------------------------------------------------------
    def run(
        self,
        budget: int,
        journal: Optional[Union[str, Path, RunJournal]] = None,
        resume: bool = False,
    ) -> ExplorationReport:
        """Explore until the strategy stops or ``budget`` proposals are spent.

        ``journal`` enables checkpointing; with ``resume=True`` an existing
        journal's evaluations are replayed (its header must match this run's
        configuration) and only never-journaled candidates are simulated.
        """
        if budget <= 0:
            raise ValueError("budget must be positive")
        if isinstance(journal, (str, Path)):
            journal = RunJournal(journal)

        # Reset before building the header: describe() contributes to the
        # journal identity and must reflect a pristine strategy (e.g. a
        # zero draw-shortfall) whether the object is fresh or reused.
        self.strategy.reset(self.space, self.seed)
        header = self.journal_header(budget)
        replayed: Dict[str, Evaluation] = {}
        if journal is not None:
            if resume:
                if not journal.exists():
                    raise JournalError(
                        f"nothing to resume: journal {journal.path} does not "
                        f"exist or is empty"
                    )
                contents = journal.resume(header)
                replayed = journal.evaluation_map(contents)
            elif journal.exists():
                raise JournalError(
                    f"journal {journal.path} already exists; pass resume=True "
                    f"(--resume) to continue it, or remove the file to start "
                    f"a fresh run"
                )
            else:
                journal.start(header)

        executed_before = self.simulator.stats.executed
        hits_before = self.simulator.stats.cache_hits

        evaluated: Dict[str, Evaluation] = {}
        order: List[str] = []
        proposed = 0
        while proposed < budget:
            batch = self.strategy.propose(evaluated, budget - proposed)
            if not batch:
                break
            batch = batch[: budget - proposed]
            proposed += len(batch)

            fresh: List[Candidate] = []
            fresh_keys: set = set()
            for candidate in batch:
                key = candidate.key()
                if key in evaluated or key in replayed or key in fresh_keys:
                    continue
                fresh_keys.add(key)
                fresh.append(candidate)
            fresh_map: Dict[str, Evaluation] = {}
            for evaluation in self._evaluate_batch(fresh) if fresh else []:
                fresh_map[evaluation.candidate.key()] = evaluation
                if journal is not None:
                    journal.append(evaluation)
            for candidate in batch:
                key = candidate.key()
                if key in evaluated:
                    continue  # defensive: strategy re-proposed a candidate
                evaluated[key] = replayed[key] if key in replayed else fresh_map[key]
                order.append(key)

        evaluations = [evaluated[key] for key in order]
        self._record_metrics(
            evaluated=len(evaluations),
            simulated=self.simulator.stats.executed - executed_before,
            cache_hits=self.simulator.stats.cache_hits - hits_before,
            replayed=sum(1 for e in evaluations if e.from_journal),
        )
        return ExplorationReport(
            space=self.space.describe(),
            strategy=self.strategy.name,
            seed=self.seed,
            budget=budget,
            objectives=self.objectives,
            evaluations=evaluations,
            frontier=pareto_frontier(evaluations, self.objectives),
            simulated=self.simulator.stats.executed - executed_before,
            cache_hits=self.simulator.stats.cache_hits - hits_before,
            replayed_from_journal=sum(1 for e in evaluations if e.from_journal),
            proposal_shortfall=budget - proposed,
        )
