"""Multi-objective design-space exploration over the simulation runtime.

``repro.explore`` turns the repository's reproduction into an exploration
tool: it searches the *design-time* parameter space the paper highlights
(FIFO depths, bank counts, bank-group sizes, feature switches) jointly, on
any workload suite, against multiple objectives at once.

* :mod:`repro.explore.space` — declarative :class:`SearchSpace` (axes,
  constraints, candidate materialisation) and the named CLI spaces;
* :mod:`repro.explore.objectives` — :class:`ObjectiveSpec`, candidate
  scoring via the cycle model + energy/area models, Pareto extraction;
* :mod:`repro.explore.strategies` — the :class:`Strategy` protocol with
  ``grid`` / ``random`` / ``evolutionary`` implementations;
* :mod:`repro.explore.journal` — JSONL checkpointing and resume;
* :mod:`repro.explore.engine` — :class:`ExplorationEngine`, the loop that
  batches candidates through :class:`~repro.runtime.simulator.Simulator`.

See ``docs/EXPLORE.md`` for concepts and a CLI walkthrough.
"""

from .engine import (
    ExplorationEngine,
    ExplorationReport,
    default_exploration_workloads,
)
from .journal import (
    JOURNAL_FORMAT,
    JournalContents,
    JournalError,
    JournalMismatchError,
    RunJournal,
)
from .objectives import (
    DEFAULT_OBJECTIVES,
    Evaluation,
    OBJECTIVE_DIRECTIONS,
    ObjectiveSpec,
    best_by_scalar,
    dominates,
    pareto_frontier,
    parse_objectives,
    score_candidate,
)
from .space import (
    Candidate,
    Constraint,
    GROUP_DIVIDES_BANKS,
    ParameterAxis,
    SearchSpace,
    bank_count_space,
    datamaestro_builder,
    default_search_space,
    feature_space,
    fifo_depth_space,
    gima_group_space,
    named_search_spaces,
    search_space_by_name,
)
from .strategies import (
    EvolutionaryStrategy,
    GridStrategy,
    RandomStrategy,
    Strategy,
    available_strategies,
    make_strategy,
)

__all__ = [
    "ExplorationEngine",
    "ExplorationReport",
    "default_exploration_workloads",
    "RunJournal",
    "JournalContents",
    "JournalError",
    "JournalMismatchError",
    "JOURNAL_FORMAT",
    "ObjectiveSpec",
    "Evaluation",
    "DEFAULT_OBJECTIVES",
    "OBJECTIVE_DIRECTIONS",
    "parse_objectives",
    "score_candidate",
    "dominates",
    "pareto_frontier",
    "best_by_scalar",
    "SearchSpace",
    "ParameterAxis",
    "Candidate",
    "Constraint",
    "GROUP_DIVIDES_BANKS",
    "datamaestro_builder",
    "default_search_space",
    "fifo_depth_space",
    "bank_count_space",
    "gima_group_space",
    "feature_space",
    "named_search_spaces",
    "search_space_by_name",
    "Strategy",
    "GridStrategy",
    "RandomStrategy",
    "EvolutionaryStrategy",
    "available_strategies",
    "make_strategy",
]
