"""Lifecycle and progress events emitted by the simulation service.

Every externally observable state change of a job inside
:class:`~repro.serve.service.SimulationService` is announced as one
:class:`ServiceEvent`.  Events carry no wall-clock timestamps — they are
ordered by a service-wide monotonic sequence number, which keeps event
streams deterministic enough to assert on in tests.

The expected lifecycle of one submission::

    submitted ─┬─ cache_hit ──────────────────────────── finished
               ├─ coalesced            (rides an in-flight entry's events)
               ├─ rejected             (queue full → QueueFullError)
               └─ queued ── started ── progress* ─┬───── finished
                                                  └───── failed

``cancelled`` replaces ``started`` for entries still queued when the
service closes without draining.

Consumers subscribe in two ways:

* **async** — :meth:`SimulationService.subscribe` returns an
  :class:`EventSubscription`, an async iterator fed from the event loop;
* **sync** — :meth:`SimulationService.add_listener` registers a plain
  callable invoked on the loop thread (the
  :class:`~repro.serve.client.ServiceClient` uses this to mirror events
  into a thread-safe buffer).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..obs.trace import get_tracer

#: Every event kind the service emits, in no particular order.
EVENT_KINDS = (
    "submitted",   # a job entered the service (every submission emits one)
    "coalesced",   # the submission attached to an identical in-flight job
    "cache_hit",   # resolved from the result cache without queueing
    "rejected",    # bounced by the admission queue (QueueFullError)
    "queued",      # admitted to the backlog, waiting for a worker
    "started",     # a worker began the backend simulation
    "progress",    # cooperative yield point: ``cycles`` simulated so far
    "finished",    # outcome available; ``waiters`` callers were served
    "failed",      # backend raised; ``error`` repeats the exception text
    "cancelled",   # still queued when the service closed without draining
)


@dataclass(frozen=True)
class ServiceEvent:
    """One observable state change of one job inside the service."""

    #: Which lifecycle edge fired (one of :data:`EVENT_KINDS`).
    kind: str
    #: Stable content hash of the job (:meth:`SimJob.job_hash`).
    job_hash: str
    #: Client name given at submission (fairness/accounting key).
    client: str
    #: Service-wide monotonic sequence number (total order of events).
    seq: int
    #: Workload name, for human-readable streams.
    workload: str = ""
    #: Cycles simulated so far (``progress`` events only).
    cycles: Optional[int] = None
    #: Number of coalesced callers served (``finished``/``failed`` only).
    waiters: Optional[int] = None
    #: Exception text (``failed`` events only).
    error: Optional[str] = None

    def describe(self) -> str:
        """One-line rendering used by ``repro serve --events``."""
        parts = [f"[{self.seq:04d}] {self.kind:<9}", self.workload or self.job_hash[:12]]
        if self.client:
            parts.append(f"client={self.client}")
        if self.cycles is not None:
            parts.append(f"cycles={self.cycles}")
        if self.waiters is not None:
            parts.append(f"waiters={self.waiters}")
        if self.error is not None:
            parts.append(f"error={self.error}")
        return " ".join(parts)


class EventSubscription:
    """Async-iterable view of the service's event stream.

    Obtained from :meth:`SimulationService.subscribe`.  Iteration ends when
    the service closes the stream (on shutdown) after delivering every
    event published before the close.
    """

    _CLOSE = object()

    def __init__(self) -> None:
        self._queue: "asyncio.Queue[object]" = asyncio.Queue()
        self._closed = False

    # -- producer side (service) ---------------------------------------
    def _publish(self, event: ServiceEvent) -> None:
        if not self._closed:
            self._queue.put_nowait(event)

    def _close(self) -> None:
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(self._CLOSE)

    # -- consumer side -------------------------------------------------
    def __aiter__(self) -> "EventSubscription":
        return self

    async def __anext__(self) -> ServiceEvent:
        item = await self._queue.get()
        if item is self._CLOSE:
            raise StopAsyncIteration
        assert isinstance(item, ServiceEvent)
        return item


class EventBus:
    """Fans events out to async subscriptions and sync listeners.

    All publishing happens on the event-loop thread; worker threads hand
    events over via ``loop.call_soon_threadsafe`` (the service does this
    for engine progress callbacks).
    """

    def __init__(self) -> None:
        self._seq = 0
        self._subscriptions: List[EventSubscription] = []
        self._listeners: List[Callable[[ServiceEvent], None]] = []

    # ------------------------------------------------------------------
    def subscribe(self) -> EventSubscription:
        subscription = EventSubscription()
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: EventSubscription) -> None:
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)
            subscription._close()

    def add_listener(self, listener: Callable[[ServiceEvent], None]) -> None:
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    def publish(self, kind: str, job_hash: str, client: str, **extra) -> ServiceEvent:
        """Build, sequence and deliver one event; returns it.

        Delivery is isolated per consumer: a raising listener (e.g. a
        ``print`` callback whose pipe closed) must never propagate into the
        service's submit/worker paths — that would strand futures and
        deadlock shutdown.
        """
        event = ServiceEvent(
            kind=kind, job_hash=job_hash, client=client, seq=self._seq, **extra
        )
        self._seq += 1
        # The one tracing hook of the whole thread service: every lifecycle
        # edge flows through here, so the span timeline costs exactly one
        # None check per event when tracing is off.
        tracer = get_tracer()
        if tracer is not None:
            try:
                tracer.record_service_event(event)
            except Exception:  # noqa: BLE001 — tracing cannot break the service
                pass
        for subscription in self._subscriptions:
            subscription._publish(event)
        for listener in self._listeners:
            try:
                listener(event)
            except Exception:  # noqa: BLE001 — observers cannot break the service
                pass
        return event

    def close(self) -> None:
        """End every subscription (sync listeners just stop firing)."""
        for subscription in self._subscriptions:
            subscription._close()
        self._subscriptions.clear()
