"""The asyncio simulation service: coalescing, fair admission, workers.

:class:`SimulationService` is the long-lived front door the ROADMAP's
"serves heavy traffic" goal asks for.  One service instance owns:

* a **coalescing map** — identical in-flight requests (same
  :meth:`SimJob.job_hash`) share one future, so a duplicate burst performs
  exactly one backend simulation and every caller receives the *same*
  :class:`~repro.runtime.outcome.SimOutcome` object;
* a **fair bounded admission queue** (:class:`~repro.serve.queue.FairQueue`)
  — priority first, round-robin across clients within a priority, FIFO
  within a client; a full backlog raises the typed
  :class:`~repro.serve.queue.QueueFullError` (or, on the ``submit_wait``
  path, cooperatively waits for capacity);
* a **cache-aware worker pool** — submissions are probed against the
  :class:`~repro.runtime.cache.ResultCache` *before* they are scheduled, so
  cache hits never occupy a worker, and every fresh result is written back
  through the same cache;
* a **streaming event bus** (:mod:`repro.serve.events`) — submitted /
  coalesced / cache_hit / queued / started / progress / finished / failed /
  cancelled lifecycle events, with ``progress`` fed by the simulation
  engines' cooperative yield points (see ``docs/ENGINE.md``).

The service is single-loop: every public method must be called on the
event-loop thread (the sync :class:`~repro.serve.client.ServiceClient`
wraps that for threads, scripts and tests).  Backend simulations run on a
thread pool; pure-Python cycle simulation holds the GIL, so the win is
coalescing + caching + overlap with I/O rather than parallel speedup —
``docs/SERVE.md`` discusses when to use the service vs the bare
``Simulator``.
"""

from __future__ import annotations

import asyncio
import functools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
)
from ..obs.trace import get_tracer
from ..runtime.batch import execute_job_with_progress
from ..runtime.cache import ResultCache
from ..runtime.job import SimJob
from ..runtime.outcome import SimOutcome
from .events import EventBus, EventSubscription, ServiceEvent
from .queue import FairQueue, QueueFullError

__all__ = [
    "LatencyHistogram",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceStats",
    "JobTicket",
    "SimulationService",
]


class ServiceClosedError(RuntimeError):
    """Raised when submitting to (or waiting on) a closed service."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SimulationService`.

    Parameters
    ----------
    max_workers:
        Concurrent backend simulations (worker tasks and executor threads).
    max_backlog:
        Bound on *queued* (admitted, not yet started) jobs; exceeding it is
        explicit backpressure: :class:`QueueFullError`.
    max_backlog_per_client:
        Optional per-client share of the backlog (``None`` = no extra bound).
    progress_interval:
        Cycle cadence of streaming ``progress`` events, forwarded to the
        simulation engine's cooperative yield points.
    """

    max_workers: int = 2
    max_backlog: int = 64
    max_backlog_per_client: Optional[int] = None
    progress_interval: int = 250_000

    def __post_init__(self) -> None:
        if self.max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if self.progress_interval <= 0:
            raise ValueError("progress_interval must be positive")


#: Upper bucket bounds (seconds) of :class:`LatencyHistogram` — the
#: package-wide latency bounds of the obs layer (roughly logarithmic from
#: 1 ms to 30 s, which brackets every workload the repo's cycle engines
#: simulate).  The implicit final bucket is +inf.
LATENCY_BUCKETS: Tuple[float, ...] = DEFAULT_LATENCY_BOUNDS


class LatencyHistogram(Histogram):
    """Fixed-bucket latency histogram (Prometheus-style cumulative bounds).

    Since the telemetry layer landed this is the obs
    :class:`~repro.obs.metrics.Histogram` specialised to the package-wide
    latency bounds and the ``repro_latency_seconds`` exposition name — the
    historical API (``observe`` / ``mean`` / ``quantile`` / ``as_dict``)
    is unchanged, ``observe`` stays a counter bump cheap enough for the
    completion path, and the quantile edge cases (empty, single sample,
    q=0, overflow) are pinned down in ``tests/obs/test_metrics.py``.
    """

    def __init__(self, bounds: Tuple[float, ...] = LATENCY_BUCKETS) -> None:
        super().__init__(
            bounds,
            name="repro_latency_seconds",
            help="Admission-to-completion latency of executed jobs.",
        )


class ServiceStats:
    """Counters of one service instance (monotonic over its lifetime).

    The named counters are backed by :class:`~repro.obs.metrics.Counter`
    objects in a per-service :class:`~repro.obs.metrics.MetricsRegistry`
    (per-service so parallel services in one process never merge counts).
    Attribute access keeps the historical dataclass feel: reads return
    plain ints, and the ``stats.executed += 1`` idiom still works —
    assignment routes the delta into the backing counter, which also
    enforces monotonicity (a decrease raises ``ValueError``).
    """

    _COUNTERS = {
        "submitted": ("repro_submitted_total", "Jobs submitted to the service."),
        "coalesced": (
            "repro_coalesced_total",
            "Submissions that rode an identical in-flight job.",
        ),
        "cache_hits": (
            "repro_cache_hits_total",
            "Submissions resolved from the result cache.",
        ),
        "executed": ("repro_executed_total", "Jobs actually simulated by a backend."),
        "failed": ("repro_failed_total", "Jobs whose backend raised."),
        "rejected": (
            "repro_rejected_total",
            "Submissions bounced by the admission queue.",
        ),
        "cancelled": (
            "repro_cancelled_total",
            "Queued jobs cancelled by a non-draining close.",
        ),
    }

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            attr: self.registry.counter(name, help)
            for attr, (name, help) in self._COUNTERS.items()
        }
        #: Jobs completed per worker slot — skew here means unfair pop
        #: order or one worker pinned on a long simulation.
        self.per_worker_executed: Dict[int, int] = {}
        #: Admission-to-completion latency of executed jobs.
        self.latency = LatencyHistogram()
        self.registry.register(self.latency)
        #: Macro-step engine totals accumulated from executed outcomes.
        self.macro: Dict[str, int] = {"jumps": 0, "cycles_skipped": 0}
        self.registry.add_callback(
            "repro_worker_executed_total", self._worker_families
        )

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters and name in counters:
            return counters[name].value
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            counters[name].inc(value - counters[name].value)
            return
        object.__setattr__(self, name, value)

    def _worker_families(self) -> List[MetricFamily]:
        per_worker = dict(self.per_worker_executed)
        if not per_worker:
            return []
        return [
            MetricFamily(
                "repro_worker_executed_total",
                "counter",
                "Jobs completed per worker slot.",
                tuple(
                    Sample(labels={"worker": worker}, value=count)
                    for worker, count in sorted(per_worker.items())
                ),
            )
        ]

    @property
    def coalescing_hit_rate(self) -> float:
        """Fraction of submissions served by riding an in-flight duplicate."""
        return self.coalesced / self.submitted if self.submitted else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.submitted if self.submitted else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": self.failed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "coalescing_hit_rate": self.coalescing_hit_rate,
            "cache_hit_rate": self.cache_hit_rate,
        }


@dataclass
class JobTicket:
    """Receipt for one submission; ``await ticket.outcome()`` for the result."""

    job: SimJob
    job_hash: str
    client: str
    #: This submission attached to an identical in-flight job.
    coalesced: bool
    #: Resolved instantly from the result cache (never queued).
    cache_hit: bool
    future: "asyncio.Future[SimOutcome]"

    async def outcome(self) -> SimOutcome:
        return await self.future


@dataclass
class _Entry:
    """One unique in-flight job (the unit the queue and workers see)."""

    job: SimJob
    key: str
    client: str
    priority: int
    future: "asyncio.Future[SimOutcome]"
    waiters: int = 1
    started: bool = False
    #: Monotonic admission time; completion observes the latency.
    enqueued_at: float = 0.0


class SimulationService:
    """Async simulation front door: submit, coalesce, stream, drain.

    Use as an async context manager, or call :meth:`start` / :meth:`close`
    explicitly::

        async with SimulationService(cache=ResultCache(path)) as service:
            ticket = service.submit(job, client="alice")
            outcome = await ticket.outcome()
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.cache = cache
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        #: The per-service metrics registry backing :attr:`stats`; the
        #: depth/inflight gauges read the live structures on collection.
        self.metrics = self.stats.registry
        self.metrics.gauge(
            "repro_queue_depth",
            "Jobs admitted but not yet picked up by a worker.",
            fn=self.backlog,
        )
        self.metrics.gauge(
            "repro_inflight",
            "Unique jobs between admission and completion.",
            fn=self.inflight,
        )
        self.events = EventBus()
        self._queue: FairQueue[_Entry] = FairQueue(
            self.config.max_backlog,
            self.config.max_backlog_per_client,
            on_depth=self._on_queue_depth,
        )
        self._inflight: Dict[str, _Entry] = {}
        self._workers: List[asyncio.Task] = []
        self._work_available: Optional[asyncio.Semaphore] = None
        self._space_freed: Optional[asyncio.Condition] = None
        self._executor = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> "SimulationService":
        """Spawn the worker pool (idempotent)."""
        if self._started:
            return self
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._work_available = asyncio.Semaphore(0)
        self._space_freed = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_workers, thread_name_prefix="repro-serve"
        )
        self._workers = [
            asyncio.ensure_future(self._worker_loop(index))
            for index in range(self.config.max_workers)
        ]
        self._started = True
        return self

    async def __aenter__(self) -> "SimulationService":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    async def close(self, drain: bool = True) -> None:
        """Shut down: refuse new work, settle in-flight work, stop workers.

        With ``drain=True`` (the default) every admitted job — queued or
        executing — runs to completion and resolves its waiters.  With
        ``drain=False`` queued-but-unstarted entries are *cancelled* (their
        waiters receive :class:`ServiceClosedError`) while entries already
        executing on a worker still finish and resolve normally.
        """
        if not self._started or self._closed:
            self._closed = True
            self.events.close()
            return
        self._closed = True
        # Wake any submit_wait callers parked on backpressure.
        async with self._space_freed:
            self._space_freed.notify_all()
        if not drain:
            for entry, client, _priority in self._queue.drain():
                self._inflight.pop(entry.key, None)
                self.stats.cancelled += 1
                self.events.publish(
                    "cancelled", entry.key, client, workload=entry.job.workload.name
                )
                if not entry.future.done():
                    entry.future.set_exception(
                        ServiceClosedError(
                            f"service closed before job {entry.key[:12]} started"
                        )
                    )
        # Wait for every remaining in-flight entry (queued ones too, when
        # draining) to settle — exceptions included.
        pending = [entry.future for entry in self._inflight.values()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.events.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(self, job: SimJob, client: str = "anon", priority: int = 0) -> JobTicket:
        """Submit one job; never blocks.

        Returns a :class:`JobTicket` whose future resolves to the outcome.
        Raises :class:`QueueFullError` when the backlog bound is hit (use
        :meth:`submit_wait` for cooperative backpressure instead) and
        :class:`ServiceClosedError` after :meth:`close`.

        Submissions made within one event-loop turn are atomic with respect
        to the workers, so a burst of identical jobs submitted back-to-back
        deterministically coalesces onto a single backend execution.
        """
        return self._submit(job, client, priority, record_rejection=True)

    def _submit(
        self, job: SimJob, client: str, priority: int, record_rejection: bool
    ) -> JobTicket:
        if self._closed:
            raise ServiceClosedError("service is closed")
        if not self._started:
            raise ServiceClosedError("service not started (use 'async with' or start())")
        key = job.job_hash()
        workload = job.workload.name

        # 1. Coalesce onto an identical in-flight job.
        entry = self._inflight.get(key)
        if entry is not None:
            entry.waiters += 1
            self.stats.submitted += 1
            self.stats.coalesced += 1
            self.events.publish("submitted", key, client, workload=workload)
            self.events.publish("coalesced", key, client, workload=workload)
            return JobTicket(job, key, client, True, False, entry.future)

        # 2. Probe the result cache before scheduling anything.  The probe
        # runs synchronously on the loop thread on purpose: submit() must
        # stay await-free so one-turn bursts coalesce atomically, and a
        # hit must resolve its ticket before the caller regains control.
        # Entries are small pickles; the expensive side (the post-execution
        # write-back) happens on the worker thread instead.
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self.stats.submitted += 1
                self.stats.cache_hits += 1
                future: "asyncio.Future[SimOutcome]" = self._loop.create_future()
                future.set_result(hit)
                self.events.publish("submitted", key, client, workload=workload)
                self.events.publish("cache_hit", key, client, workload=workload)
                self.events.publish(
                    "finished", key, client, workload=workload, waiters=1
                )
                return JobTicket(job, key, client, False, True, future)

        # 3. Admit to the bounded queue (explicit backpressure on overflow).
        entry = _Entry(
            job=job,
            key=key,
            client=client,
            priority=priority,
            future=self._loop.create_future(),
            enqueued_at=time.monotonic(),
        )
        # Failures are also reported via events; retrieving the exception
        # here keeps abandoned tickets from warning at garbage collection.
        entry.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        try:
            self._queue.push(entry, client, priority)
        except QueueFullError:
            # Fail-fast submissions record the bounce; the waiting path
            # (submit_wait) retries instead — that is backpressure, not a
            # rejection, and it must not double-count the submission.
            if record_rejection:
                self.stats.submitted += 1
                self.stats.rejected += 1
                self.events.publish("submitted", key, client, workload=workload)
                self.events.publish("rejected", key, client, workload=workload)
            raise
        self._inflight[key] = entry
        self.stats.submitted += 1
        self.events.publish("submitted", key, client, workload=workload)
        self.events.publish("queued", key, client, workload=workload)
        self._work_available.release()
        return JobTicket(job, key, client, False, False, entry.future)

    def _has_capacity(self, client: str) -> bool:
        if len(self._queue) >= self.config.max_backlog:
            return False
        limit = self.config.max_backlog_per_client
        return limit is None or self._queue.client_backlog(client) < limit

    async def submit_wait(
        self, job: SimJob, client: str = "anon", priority: int = 0
    ) -> JobTicket:
        """Like :meth:`submit`, but waits for backlog capacity instead of
        raising :class:`QueueFullError` (coalesced and cached submissions
        never wait)."""
        while True:
            try:
                return self._submit(job, client, priority, record_rejection=False)
            except QueueFullError:
                async with self._space_freed:
                    while not self._has_capacity(client) and not self._closed:
                        await self._space_freed.wait()
                if self._closed:
                    raise ServiceClosedError("service closed while waiting for capacity")

    async def run(
        self,
        jobs: Sequence[SimJob],
        client: str = "anon",
        priority: int = 0,
    ) -> List[SimOutcome]:
        """Submit a batch and await every outcome, in submission order.

        Duplicates *within the batch* always coalesce (each unique job is
        submitted before any other coroutine can run), and unique jobs use
        the waiting submission path, so arbitrarily large batches flow
        through the bounded backlog without rejection.
        """
        tickets: List[JobTicket] = []
        for job in jobs:
            tickets.append(await self.submit_wait(job, client=client, priority=priority))
        return [await ticket.outcome() for ticket in tickets]

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def subscribe(self) -> EventSubscription:
        """Async-iterable stream of every subsequent service event."""
        return self.events.subscribe()

    def add_listener(self, listener) -> None:
        """Register a sync callback invoked (on the loop thread) per event."""
        self.events.add_listener(listener)

    def backlog(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        return len(self._queue)

    def _on_queue_depth(self, depth: int) -> None:
        """Queue depth change → tracer counter track (when tracing)."""
        tracer = get_tracer()
        if tracer is not None:
            tracer.counter("queue_depth", {"jobs": depth})

    def inflight(self) -> int:
        """Unique jobs somewhere between admission and completion."""
        return len(self._inflight)

    def snapshot(self) -> Dict[str, object]:
        """Structured ops snapshot: depth, rates, skew, latency.

        Everything an operator (or the cluster supervisor's pong frames)
        wants in one picklable dict: current queue depth and in-flight
        count, the coalescing / cache hit rates, per-worker executed
        counts, and the admission-to-completion latency histogram.
        """
        return {
            "queue_depth": self.backlog(),
            "inflight": self.inflight(),
            "submitted": self.stats.submitted,
            "executed": self.stats.executed,
            "coalesced": self.stats.coalesced,
            "cache_hits": self.stats.cache_hits,
            "failed": self.stats.failed,
            "rejected": self.stats.rejected,
            "cancelled": self.stats.cancelled,
            "coalescing_hit_rate": self.stats.coalescing_hit_rate,
            "cache_hit_rate": self.stats.cache_hit_rate,
            "per_worker_executed": dict(self.stats.per_worker_executed),
            "latency": self.stats.latency.as_dict(),
            "macro": dict(self.stats.macro),
            "cache": self.cache.stats() if self.cache is not None else None,
        }

    def describe(self) -> Dict[str, object]:
        return {
            "config": {
                "max_workers": self.config.max_workers,
                "max_backlog": self.config.max_backlog,
                "max_backlog_per_client": self.config.max_backlog_per_client,
                "progress_interval": self.config.progress_interval,
            },
            "cache": self.cache.stats() if self.cache is not None else None,
            "backlog": self.backlog(),
            "inflight": self.inflight(),
            "stats": self.stats.as_dict(),
        }

    # ------------------------------------------------------------------
    # Workers.
    # ------------------------------------------------------------------
    async def _worker_loop(self, index: int) -> None:
        assert self._work_available is not None
        while True:
            await self._work_available.acquire()
            popped = self._queue.pop()
            async with self._space_freed:
                self._space_freed.notify_all()
            if popped is None:
                continue  # entry was drained by a non-draining close
            entry, _client, _priority = popped
            entry.started = True
            await self._execute_entry(entry, index)

    async def _execute_entry(self, entry: _Entry, worker_index: int = 0) -> None:
        self.events.publish(
            "started", entry.key, entry.client, workload=entry.job.workload.name
        )
        progress = functools.partial(self._post_progress, entry)

        def run_and_write_back() -> SimOutcome:
            # Executed on the worker thread: the cache write-back happens
            # here too, so pickle/disk latency never blocks the event loop
            # (ResultCache.put is atomic, so a concurrent loop-thread probe
            # sees either nothing or the complete entry).  A failing
            # write-back is demoted to a warning — the simulation result
            # exists and must reach its waiters.
            outcome = execute_job_with_progress(
                entry.job,
                progress_callback=progress,
                progress_interval=self.config.progress_interval,
            )
            if self.cache is not None:
                tracer = get_tracer()
                if tracer is not None:
                    tracer.begin("write_back", entry.key, cat="job")
                try:
                    self.cache.put(entry.key, outcome)
                except Exception as error:  # noqa: BLE001 — best-effort cache
                    import warnings

                    warnings.warn(
                        f"result-cache write-back failed for "
                        f"{entry.key[:12]}: {error}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                finally:
                    if tracer is not None:
                        tracer.maybe_end("write_back", entry.key, cat="job")
            return outcome

        try:
            outcome = await self._loop.run_in_executor(
                self._executor, run_and_write_back
            )
        except Exception as error:  # noqa: BLE001 — surfaced to every waiter
            self.stats.failed += 1
            self._inflight.pop(entry.key, None)
            self.events.publish(
                "failed",
                entry.key,
                entry.client,
                workload=entry.job.workload.name,
                waiters=entry.waiters,
                error=f"{type(error).__name__}: {error}",
            )
            if not entry.future.done():
                entry.future.set_exception(error)
            return
        self.stats.executed += 1
        self.stats.per_worker_executed[worker_index] = (
            self.stats.per_worker_executed.get(worker_index, 0) + 1
        )
        macro = outcome.metrics.get("macro_stats")
        if isinstance(macro, dict):
            self.stats.macro["jumps"] += int(macro.get("jumps", 0))
            self.stats.macro["cycles_skipped"] += int(macro.get("cycles_skipped", 0))
        if entry.enqueued_at:
            self.stats.latency.observe(time.monotonic() - entry.enqueued_at)
        self._inflight.pop(entry.key, None)
        self.events.publish(
            "finished",
            entry.key,
            entry.client,
            workload=entry.job.workload.name,
            waiters=entry.waiters,
        )
        if not entry.future.done():
            entry.future.set_result(outcome)

    def _post_progress(self, entry: _Entry, cycles: int) -> None:
        """Engine yield point → event bus; called from an executor thread."""
        self._loop.call_soon_threadsafe(self._emit_progress, entry, cycles)

    def _emit_progress(self, entry: _Entry, cycles: int) -> None:
        if not entry.future.done():
            self.events.publish(
                "progress",
                entry.key,
                entry.client,
                workload=entry.job.workload.name,
                cycles=cycles,
            )
