"""Admission queue of the simulation service: priority + per-client fairness.

:class:`FairQueue` is the bounded backlog behind
:class:`~repro.serve.service.SimulationService`.  It orders work by

1. **priority** — lower numbers pop first (``0`` is the default);
2. **per-client round-robin** — among clients with queued work at the same
   priority, pops rotate client-by-client, so one client flooding the
   backlog cannot starve the others;
3. **FIFO within one client** — a client's own submissions keep their
   submission order.

The backlog is bounded: pushing beyond ``max_backlog`` entries (or beyond
``max_per_client`` for one client) raises the typed :class:`QueueFullError`
— *explicit backpressure* rather than unbounded memory growth.  Callers
that prefer waiting to failing use the service's ``submit_wait()`` path
(which ``service.run()`` and the client's batch ``run()`` build on): it
retries the push when capacity frees up.

The queue is a plain single-threaded data structure; the service only
touches it from the event-loop thread.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """The service backlog (or one client's share of it) is full.

    Attributes
    ----------
    client:
        The client whose submission was rejected.
    backlog:
        Entries queued at rejection time (service-wide or per-client,
        whichever bound tripped).
    limit:
        The bound that was exceeded.
    scope:
        ``"service"`` or ``"client"`` — which bound tripped.
    """

    def __init__(self, client: str, backlog: int, limit: int, scope: str = "service") -> None:
        self.client = client
        self.backlog = backlog
        self.limit = limit
        self.scope = scope
        where = "service backlog" if scope == "service" else f"backlog share of client {client!r}"
        super().__init__(
            f"{where} is full ({backlog}/{limit}); retry later, use the "
            f"waiting submission path (submit_wait/run), or raise max_backlog"
        )


class FairQueue(Generic[T]):
    """Bounded priority queue with round-robin fairness across clients."""

    def __init__(
        self,
        max_backlog: int,
        max_per_client: Optional[int] = None,
        on_depth: Optional[Callable[[int], None]] = None,
    ) -> None:
        if max_backlog <= 0:
            raise ValueError("max_backlog must be positive")
        if max_per_client is not None and max_per_client <= 0:
            raise ValueError("max_per_client must be positive")
        self.max_backlog = max_backlog
        self.max_per_client = max_per_client
        #: Optional observer called with the new depth after every size
        #: change (the service feeds the tracer's queue-depth counter
        #: track from here); observer failures never affect the queue.
        self.on_depth = on_depth
        # priority -> (client -> FIFO of items); OrderedDict gives the
        # round-robin rotation via move_to_end on every pop.
        self._levels: Dict[int, "OrderedDict[str, Deque[T]]"] = {}
        self._size = 0
        self._per_client: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def client_backlog(self, client: str) -> int:
        """Entries currently queued for ``client``."""
        return self._per_client.get(client, 0)

    def _notify_depth(self) -> None:
        if self.on_depth is not None:
            try:
                self.on_depth(self._size)
            except Exception:  # noqa: BLE001 — observers cannot break admission
                pass

    # ------------------------------------------------------------------
    def push(self, item: T, client: str, priority: int = 0) -> None:
        """Admit ``item``; raise :class:`QueueFullError` when over a bound."""
        if self._size >= self.max_backlog:
            raise QueueFullError(client, self._size, self.max_backlog, scope="service")
        mine = self._per_client.get(client, 0)
        if self.max_per_client is not None and mine >= self.max_per_client:
            raise QueueFullError(client, mine, self.max_per_client, scope="client")
        level = self._levels.setdefault(priority, OrderedDict())
        if client not in level:
            level[client] = deque()
        level[client].append(item)
        self._size += 1
        self._per_client[client] = mine + 1
        self._notify_depth()

    def pop(self) -> Optional[Tuple[T, str, int]]:
        """Remove and return ``(item, client, priority)``; ``None`` if empty.

        Picks the lowest priority level, then the least-recently-served
        client at that level, then that client's oldest entry.
        """
        if self._size == 0:
            return None
        priority = min(self._levels)
        level = self._levels[priority]
        client, fifo = next(iter(level.items()))
        item = fifo.popleft()
        if fifo:
            level.move_to_end(client)  # round-robin: others go first next time
        else:
            del level[client]
        if not level:
            del self._levels[priority]
        self._size -= 1
        remaining = self._per_client[client] - 1
        if remaining:
            self._per_client[client] = remaining
        else:
            del self._per_client[client]
        self._notify_depth()
        return item, client, priority

    def drain(self) -> List[Tuple[T, str, int]]:
        """Remove and return every queued entry (used on non-draining close)."""
        drained: List[Tuple[T, str, int]] = []
        while self._size:
            entry = self.pop()
            assert entry is not None
            drained.append(entry)
        return drained
