"""Synchronous facade over the asyncio simulation service.

:class:`ServiceClient` owns a private event loop on a daemon thread and
proxies the :class:`~repro.serve.service.SimulationService` API into plain
blocking calls, so scripts, tests, the CLI and the runtime integration
(``Simulator(service=...)``) can use the service without touching
``asyncio``::

    from repro.serve import ServiceClient

    with ServiceClient(cache_dir=path) as client:
        ticket = client.submit(job, client_name="alice")
        outcome = client.result(ticket)            # blocks
        outcomes = client.run(jobs)                # batch, order preserved

Semantics mirror the async service exactly: duplicate in-flight
submissions coalesce, cache hits resolve without queueing, a full backlog
raises :class:`~repro.serve.queue.QueueFullError` from :meth:`submit`
(while :meth:`run` applies cooperative backpressure instead), and
:meth:`close` drains by default.  Events are mirrored into a thread-safe
buffer readable via :meth:`events`; pass ``on_event=`` to stream them as
they happen (the callback runs on the service's loop thread).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from collections import deque

from ..runtime.cache import ResultCache
from ..runtime.job import SimJob
from ..runtime.outcome import SimOutcome
from .events import ServiceEvent
from .service import ServiceConfig, SimulationService

__all__ = ["ClientTicket", "ServiceClient"]


@dataclass
class ClientTicket:
    """Sync receipt for one submission (see :meth:`ServiceClient.result`)."""

    job: SimJob
    job_hash: str
    client: str
    coalesced: bool
    cache_hit: bool
    _future: "object"  # concurrent.futures.Future[SimOutcome]

    def result(self, timeout: Optional[float] = None) -> SimOutcome:
        """Block until the outcome is available (re-raises backend errors)."""
        return self._future.result(timeout)

    def done(self) -> bool:
        return self._future.done()

    def add_done_callback(self, callback) -> None:
        """Invoke ``callback(ticket)`` when the outcome settles.

        Runs on the completing thread (or immediately when already done);
        the replay harness uses this to timestamp completions without a
        waiter thread per request.
        """
        self._future.add_done_callback(lambda _future: callback(self))


class ServiceClient:
    """Blocking wrapper that runs a :class:`SimulationService` on a thread.

    Parameters
    ----------
    cache:
        A ready-made :class:`ResultCache`, or ``None``.
    cache_dir:
        Convenience alternative to ``cache`` (ignored when ``cache`` given).
        When both are ``None`` the service runs uncached.
    config:
        Service tunables (worker count, backlog bound, progress cadence).
    on_event:
        Optional callback streamed every :class:`ServiceEvent` as it is
        published (invoked on the loop thread — keep it cheap).
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        config: Optional[ServiceConfig] = None,
        on_event: Optional[Callable[[ServiceEvent], None]] = None,
    ) -> None:
        if cache is None and cache_dir is not None:
            cache = ResultCache(Path(cache_dir).expanduser())
        self._events: "deque[ServiceEvent]" = deque()
        # Validate the whole configuration (ServiceConfig bounds, queue
        # bounds) *before* starting the loop thread, so a bad config raises
        # cleanly instead of leaking a running daemon thread.
        self.service = SimulationService(cache=cache, config=config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-client", daemon=True
        )
        self._thread.start()
        self._closed = False

        async def _start() -> None:
            await self.service.start()
            self.service.add_listener(self._events.append)
            if on_event is not None:
                self.service.add_listener(on_event)

        self._call(_start())

    # ------------------------------------------------------------------
    def _call(self, coroutine):
        """Run ``coroutine`` on the service loop and return its result."""
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    def _ensure_open(self) -> None:
        """Mirror the async API: submissions to a closed client raise the
        typed error, not an opaque 'event loop is closed' RuntimeError."""
        if self._closed:
            from .service import ServiceClosedError

            raise ServiceClosedError("client is closed")

    # ------------------------------------------------------------------
    def submit(
        self, job: SimJob, client_name: str = "anon", priority: int = 0
    ) -> ClientTicket:
        """Submit one job; raises :class:`QueueFullError` on a full backlog
        and :class:`~repro.serve.service.ServiceClosedError` after close."""
        self._ensure_open()

        async def _submit():
            return self.service.submit(job, client=client_name, priority=priority)

        ticket = self._call(_submit())

        async def _await_outcome():
            return await ticket.future

        future = asyncio.run_coroutine_threadsafe(_await_outcome(), self._loop)
        return ClientTicket(
            job=job,
            job_hash=ticket.job_hash,
            client=client_name,
            coalesced=ticket.coalesced,
            cache_hit=ticket.cache_hit,
            _future=future,
        )

    def result(self, ticket: ClientTicket, timeout: Optional[float] = None) -> SimOutcome:
        return ticket.result(timeout)

    def run(
        self,
        jobs: Sequence[SimJob],
        client_name: str = "anon",
        priority: int = 0,
    ) -> List[SimOutcome]:
        """Submit a batch and block for every outcome, in submission order.

        Uses the waiting submission path: oversized batches flow through
        the bounded backlog with cooperative backpressure, never rejection.
        Duplicates within the batch deterministically coalesce.
        """
        self._ensure_open()
        return self._call(
            self.service.run(list(jobs), client=client_name, priority=priority)
        )

    # ------------------------------------------------------------------
    def events(self, clear: bool = False) -> List[ServiceEvent]:
        """Snapshot of every event observed so far (optionally clearing)."""
        snapshot = list(self._events)
        if clear:
            for _ in range(len(snapshot)):
                try:
                    self._events.popleft()
                except IndexError:  # pragma: no cover — single consumer
                    break
        return snapshot

    def stats(self) -> Dict[str, object]:
        """Service counters (coalescing/cache hit rates included).

        Remains readable after :meth:`close` — the loop is stopped then,
        so a direct read cannot race the service.
        """
        if self._closed:
            return self.service.stats.as_dict()

        async def _stats():
            return self.service.stats.as_dict()

        return self._call(_stats())

    def snapshot(self) -> Dict[str, object]:
        """Structured ops snapshot (queue depth, hit rates, per-worker
        executed counts, latency histogram) — see
        :meth:`SimulationService.snapshot`.  Readable after close."""
        if self._closed:
            return self.service.snapshot()

        async def _snapshot():
            return self.service.snapshot()

        return self._call(_snapshot())

    def describe(self) -> Dict[str, object]:
        if self._closed:
            return self.service.describe()

        async def _describe():
            return self.service.describe()

        return self._call(_describe())

    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Shut the service down (see :meth:`SimulationService.close`) and
        stop the loop thread.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._call(self.service.close(drain=drain))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
