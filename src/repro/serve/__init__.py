"""``repro.serve`` — the asynchronous simulation service.

PR 1–4 built the ingredients of a production-scale simulation system —
hashable :class:`~repro.runtime.job.SimJob` descriptions, the on-disk
:class:`~repro.runtime.cache.ResultCache`, batched execution and the
event-driven engine.  This package is the front door that turns them into
a *service*: a long-lived asyncio component that

* **coalesces** identical in-flight requests onto one future (keyed by the
  job hash), so a duplicate burst costs one simulation;
* **admits** work through a bounded priority queue with per-client
  fairness, rejecting overflow with the typed
  :class:`~repro.serve.queue.QueueFullError` (explicit backpressure);
* **probes the result cache before scheduling** and writes fresh results
  back through it;
* **streams** lifecycle and progress events
  (:class:`~repro.serve.events.ServiceEvent`), with progress fed by the
  simulation engines' cooperative yield points.

Entry points:

* :class:`SimulationService` — the asyncio core (``async with``);
* :class:`ServiceClient` — blocking facade for scripts, tests and the CLI;
* ``python -m repro.cli serve …`` — the CLI daemon;
* ``Simulator(service=client)`` / ``BatchRunner(service=client)`` /
  ``ExplorationEngine(service=client)`` — route existing call sites
  through one shared scheduler and cache;
* :func:`replay_trace` / ``python -m repro.cli replay`` — drive the
  service with realistic arrival traces (Poisson, diurnal, bursty,
  hot-key-skewed, or recorded JSONL) and report per-regime latency and
  avoidance (:mod:`repro.serve.replay`, ``docs/SCENARIOS.md``).

See ``docs/SERVE.md`` for the full guide (including when to prefer the
bare :class:`~repro.runtime.simulator.Simulator`) and
``docs/ARCHITECTURE.md`` for where this layer sits in the package map.
"""

from .client import ClientTicket, ServiceClient
from .events import EVENT_KINDS, EventSubscription, ServiceEvent
from .queue import FairQueue, QueueFullError
from .replay import (
    REGIMES,
    ReplayRegime,
    ReplayReport,
    TraceEvent,
    build_trace,
    load_trace,
    replay_trace,
    save_trace,
)
from .service import (
    JobTicket,
    LatencyHistogram,
    ServiceClosedError,
    ServiceConfig,
    ServiceStats,
    SimulationService,
)

__all__ = [
    "ClientTicket",
    "EVENT_KINDS",
    "EventSubscription",
    "FairQueue",
    "JobTicket",
    "LatencyHistogram",
    "QueueFullError",
    "REGIMES",
    "ReplayRegime",
    "ReplayReport",
    "TraceEvent",
    "build_trace",
    "load_trace",
    "replay_trace",
    "save_trace",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceEvent",
    "ServiceStats",
    "SimulationService",
]
