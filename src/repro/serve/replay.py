"""Arrival-trace replay: realistic traffic regimes for the service layer.

``repro serve`` was built for millions-of-users traffic — coalescing for
duplicate bursts, the result cache for repeat offenders, bounded admission
for overload — but until this module nothing *drove* it that way.  Replay
closes the loop: it synthesises (or loads) an **arrival trace** — a list of
``(arrival time, workload)`` events — and plays it against a live
:class:`~repro.serve.client.ServiceClient` or
:class:`~repro.cluster.service.ClusterService` in real (scaled) time,
measuring what the hand-written throughput benchmarks cannot: latency
percentiles and avoidance rates *under a specific traffic shape*.

Four built-in regimes (see :data:`REGIMES`):

``poisson``
    memoryless arrivals, keys uniform over the pool — the neutral baseline;
``diurnal``
    a day-night load curve (non-homogeneous Poisson via thinning) — long
    quiet valleys then sustained peaks;
``bursty``
    correlated bursts: geometric-size clumps of near-simultaneous arrivals
    separated by idle gaps — the retry-storm / fan-out shape coalescing
    was built for;
``hotkey``
    Poisson arrivals with Zipf-skewed key choice — a few viral workloads
    dominate, exactly the cache + coalescing sweet spot.

Traces round-trip through JSONL (:func:`save_trace` / :func:`load_trace`),
so a production trace can be replayed in CI and a synthetic regime can be
archived as a regression artifact.  ``python -m repro.cli replay`` is the
command-line front door; ``benchmarks/test_replay_regimes.py`` writes the
per-regime report into the ``regimes`` section of ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..runtime.job import SimJob
from ..workloads.generate import WorkloadGenerator, zipf_weights
from ..workloads.spec import ConvWorkload, GemmWorkload, Workload

__all__ = [
    "REGIMES",
    "ReplayRegime",
    "ReplayReport",
    "TraceEvent",
    "build_trace",
    "load_trace",
    "replay_trace",
    "save_trace",
]


# ----------------------------------------------------------------------
# Trace model + JSONL round-trip.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceEvent:
    """One arrival: a workload requested at ``at`` seconds into the trace."""

    at: float
    workload: Workload

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("arrival time must be non-negative")


def _workload_to_record(workload: Workload) -> Dict[str, object]:
    if isinstance(workload, GemmWorkload):
        return {
            "kind": "gemm",
            "name": workload.name,
            "m": workload.m,
            "n": workload.n,
            "k": workload.k,
            "transposed_a": workload.transposed_a,
            "with_bias": workload.with_bias,
            "quantize": workload.quantize,
        }
    return {
        "kind": "conv",
        "name": workload.name,
        "in_height": workload.in_height,
        "in_width": workload.in_width,
        "in_channels": workload.in_channels,
        "out_channels": workload.out_channels,
        "kernel_h": workload.kernel_h,
        "kernel_w": workload.kernel_w,
        "stride": workload.stride,
        "padding": workload.padding,
        "with_bias": workload.with_bias,
        "quantize": workload.quantize,
    }


def _workload_from_record(record: Dict[str, object]) -> Workload:
    fields = dict(record)
    kind = fields.pop("kind", None)
    if kind == "gemm":
        return GemmWorkload(**fields)
    if kind == "conv":
        return ConvWorkload(**fields)
    raise ValueError(f"trace record has unknown workload kind {kind!r}")


def save_trace(path: Path, trace: Sequence[TraceEvent]) -> None:
    """Write ``trace`` as JSONL: one ``{"at": ..., "workload": ...}`` per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for event in trace:
            record = {"at": event.at, "workload": _workload_to_record(event.workload)}
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_trace(path: Path) -> List[TraceEvent]:
    """Load a JSONL trace written by :func:`save_trace` (order preserved)."""
    events: List[TraceEvent] = []
    path = Path(path)
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            events.append(
                TraceEvent(
                    at=float(record["at"]),
                    workload=_workload_from_record(record["workload"]),
                )
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"{path}:{lineno}: bad trace record: {error}") from error
    return events


# ----------------------------------------------------------------------
# Arrival processes.  Each returns `count` non-decreasing times (seconds).
# ----------------------------------------------------------------------
def _poisson_arrivals(rng: random.Random, count: int, rate: float) -> List[float]:
    now, times = 0.0, []
    for _ in range(count):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def _diurnal_arrivals(rng: random.Random, count: int, rate: float) -> List[float]:
    """Non-homogeneous Poisson via thinning: intensity follows a day curve
    ``rate * (0.1 + 0.9 * (1 + sin) / 2)`` with a period sized so the trace
    spans about two "days" — deep valleys, sustained peaks."""
    period = 2.0 * count / rate / 2.0  # two periods across the nominal span
    now, times = 0.0, []
    while len(times) < count:
        now += rng.expovariate(rate)  # candidate from the max intensity
        phase = math.sin(2.0 * math.pi * now / period)
        acceptance = 0.1 + 0.9 * (1.0 + phase) / 2.0
        if rng.random() < acceptance:
            times.append(now)
    return times


def _burst_arrivals(rng: random.Random, count: int, rate: float) -> List[float]:
    """Correlated bursts: geometric clump sizes (mean 4) of near-simultaneous
    arrivals, separated by exponential idle gaps sized to keep the long-run
    rate at ``rate``."""
    mean_burst = 4.0
    gap_rate = rate / mean_burst
    now, times = 0.0, []
    while len(times) < count:
        now += rng.expovariate(gap_rate)
        burst = min(1 + int(rng.expovariate(1.0 / (mean_burst - 1.0))), count - len(times))
        for _ in range(burst):
            times.append(now)
            now += rng.expovariate(rate * 50.0)  # intra-burst jitter
    return times


# ----------------------------------------------------------------------
# Key samplers.  Each returns `count` indices into the workload pool.
# ----------------------------------------------------------------------
def _uniform_keys(rng: random.Random, count: int, pool_size: int) -> List[int]:
    return [rng.randrange(pool_size) for _ in range(count)]


def _zipf_keys(
    rng: random.Random, count: int, pool_size: int, exponent: float = 1.4
) -> List[int]:
    weights = zipf_weights(pool_size, exponent)
    indices = list(range(pool_size))
    return rng.choices(indices, weights=weights, k=count)


@dataclass(frozen=True)
class ReplayRegime:
    """A named traffic shape: an arrival process plus a key distribution."""

    name: str
    description: str
    arrivals: Callable[[random.Random, int, float], List[float]]
    keys: Callable[[random.Random, int, int], List[int]]


#: The built-in regimes (docs/SCENARIOS.md documents each row).
REGIMES: Dict[str, ReplayRegime] = {
    "poisson": ReplayRegime(
        name="poisson",
        description="Memoryless arrivals, uniform keys — the neutral baseline.",
        arrivals=_poisson_arrivals,
        keys=_uniform_keys,
    ),
    "diurnal": ReplayRegime(
        name="diurnal",
        description="Day-night intensity curve (thinned Poisson), uniform keys.",
        arrivals=_diurnal_arrivals,
        keys=_uniform_keys,
    ),
    "bursty": ReplayRegime(
        name="bursty",
        description="Correlated bursts of near-simultaneous arrivals.",
        arrivals=_burst_arrivals,
        keys=_uniform_keys,
    ),
    "hotkey": ReplayRegime(
        name="hotkey",
        description="Poisson arrivals with Zipf hot-key skew over the pool.",
        arrivals=_poisson_arrivals,
        keys=_zipf_keys,
    ),
}


def build_trace(
    regime: str,
    requests: int,
    rate: float,
    pool: Sequence[Workload],
    seed: int = 0,
) -> List[TraceEvent]:
    """Synthesise a trace: ``requests`` arrivals at nominal ``rate``/s drawn
    from ``regime``'s arrival process, keyed into ``pool`` by its sampler."""
    if regime not in REGIMES:
        raise ValueError(
            f"unknown regime {regime!r}; choose from {sorted(REGIMES)}"
        )
    if requests <= 0:
        raise ValueError("requests must be positive")
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not pool:
        raise ValueError("workload pool must not be empty")
    shape = REGIMES[regime]
    rng = random.Random(seed)
    times = shape.arrivals(rng, requests, rate)
    keys = shape.keys(rng, requests, len(pool))
    return [TraceEvent(at=at, workload=pool[key]) for at, key in zip(times, keys)]


def default_pool(size: int = 24, seed: int = 0) -> List[Workload]:
    """The replay harness's default key space: small distinct GeMM/conv
    workloads from the seeded generator (milliseconds each to simulate)."""
    generator = WorkloadGenerator(
        seed=seed,
        families=("gemm", "transposed_gemm", "decode", "prefill"),
        max_gemm_m=16,
        max_gemm_n=16,
        max_gemm_k=24,
    )
    return generator.workload_pool(size)


# ----------------------------------------------------------------------
# The replay driver.
# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """What one replay run measured, ready for JSON and the bench report."""

    regime: str
    requests: int
    duration_s: float
    pool_size: int
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    throughput_rps: float
    submitted: int
    coalesced: int
    cache_hits: int
    executed: int
    failed: int
    coalesce_rate: float
    cache_hit_rate: float
    #: Fraction of submissions that never reached a backend simulation.
    avoided_fraction: float
    extra_counters: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        payload = {
            "regime": self.regime,
            "requests": self.requests,
            "duration_s": round(self.duration_s, 6),
            "pool_size": self.pool_size,
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "latency_mean_ms": round(self.latency_mean_ms, 3),
            "throughput_rps": round(self.throughput_rps, 3),
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": self.failed,
            "coalesce_rate": round(self.coalesce_rate, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "avoided_fraction": round(self.avoided_fraction, 4),
        }
        if self.extra_counters:
            payload["extra_counters"] = dict(self.extra_counters)
        return payload

    def summary_line(self) -> str:
        return (
            f"regime={self.regime} requests={self.requests} "
            f"p50={self.latency_p50_ms:.1f}ms p99={self.latency_p99_ms:.1f}ms "
            f"coalesce={self.coalesce_rate:.0%} cache={self.cache_hit_rate:.0%} "
            f"avoided={self.avoided_fraction:.0%} "
            f"throughput={self.throughput_rps:.1f}/s"
        )


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile on an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[rank]


def _stats_snapshot(service: object) -> Dict[str, object]:
    """Counter snapshot of either service flavour (thread or cluster)."""
    if hasattr(service, "stats_dict"):
        return service.stats_dict()  # ClusterService
    stats = service.stats
    if callable(stats):
        return stats()  # ServiceClient
    return stats.as_dict()  # bare SimulationService.stats object


def _counter_delta(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, int]:
    deltas: Dict[str, int] = {}
    for key, value in after.items():
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        previous = before.get(key, 0)
        deltas[key] = value - (previous if isinstance(previous, int) else 0)
    return deltas


def replay_trace(
    service: object,
    trace: Sequence[TraceEvent],
    *,
    regime: str = "trace",
    backend: str = "datamaestro",
    engine: str = "event",
    seed: int = 0,
    time_scale: float = 1.0,
    client_name: str = "replay",
    timeout: float = 300.0,
) -> ReplayReport:
    """Play ``trace`` against ``service`` in scaled real time and measure it.

    ``service`` is anything with the submission protocol shared by
    :class:`~repro.serve.client.ServiceClient` and
    :class:`~repro.cluster.service.ClusterService`:
    ``submit(job, client_name=...) -> ticket`` with ``ticket.result()`` and
    ``ticket.add_done_callback()``.  Arrival gaps are multiplied by
    ``time_scale`` (use < 1 to compress a long trace into a short test run).

    Latency is measured per request from its (scheduled) submission to its
    completion callback; the avoidance counters come from the *delta* of the
    service's registry-backed stats across the run, so a shared long-lived
    service still reports per-run rates.
    """
    if not trace:
        raise ValueError("cannot replay an empty trace")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    before = _stats_snapshot(service)
    completions: List[Tuple[int, float]] = []
    submit_times: List[float] = []
    lock = threading.Lock()
    done = threading.Event()
    expected = len(trace)

    def stamp(index: int) -> Callable[[object], None]:
        def _cb(_ticket: object) -> None:
            now = time.monotonic()
            with lock:
                completions.append((index, now))
                if len(completions) == expected:
                    done.set()

        return _cb

    tickets = []
    start = time.monotonic()
    for index, event in enumerate(trace):
        target = start + event.at * time_scale
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        job = SimJob(
            workload=event.workload,
            backend=backend,
            engine=engine,
            seed=seed,
        )
        submit_times.append(time.monotonic())
        ticket = service.submit(job, client_name=client_name)
        ticket.add_done_callback(stamp(index))
        tickets.append(ticket)
    if not done.wait(timeout):
        raise TimeoutError(
            f"replay incomplete: {expected - len(completions)} of {expected} "
            f"requests still pending after {timeout}s"
        )
    end = time.monotonic()
    failures = 0
    for ticket in tickets:
        try:
            ticket.result(timeout=timeout)
        except Exception:
            failures += 1
    after = _stats_snapshot(service)
    deltas = _counter_delta(before, after)

    latency_by_index = dict(completions)
    latencies_ms = sorted(
        (latency_by_index[i] - submit_times[i]) * 1000.0 for i in range(expected)
    )
    duration = max(end - start, 1e-9)
    submitted = deltas.get("submitted", expected)
    coalesced = deltas.get("coalesced", 0)
    cache_hits = deltas.get("cache_hits", 0) + deltas.get("journal_hits", 0)
    executed = deltas.get("executed", 0)
    known = {
        "submitted",
        "coalesced",
        "cache_hits",
        "journal_hits",
        "executed",
        "failed",
    }
    extra = {
        key: value
        for key, value in deltas.items()
        if key not in known and value
    }
    denominator = max(submitted, 1)
    return ReplayReport(
        regime=regime,
        requests=expected,
        duration_s=duration,
        pool_size=len({event.workload for event in trace}),
        latency_p50_ms=_percentile(latencies_ms, 0.50),
        latency_p95_ms=_percentile(latencies_ms, 0.95),
        latency_p99_ms=_percentile(latencies_ms, 0.99),
        latency_mean_ms=sum(latencies_ms) / len(latencies_ms),
        throughput_rps=expected / duration,
        submitted=submitted,
        coalesced=coalesced,
        cache_hits=cache_hits,
        executed=executed,
        failed=deltas.get("failed", failures),
        coalesce_rate=coalesced / denominator,
        cache_hit_rate=cache_hits / denominator,
        avoided_fraction=1.0 - executed / denominator,
        extra_counters=extra,
    )
