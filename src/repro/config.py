"""Typed runtime configuration: one home for every environment knob.

Before this module, the runtime knobs were scattered ``os.environ`` reads —
the cache picked its root from ``REPRO_CACHE_DIR``, the ablation suite
checked ``REPRO_FULL_SUITE``, the benchmarks checked ``REPRO_STRICT_BENCH``
and ``REPRO_BENCH_OUT`` — each with its own parsing and defaults.
:class:`RuntimeConfig` centralizes them: one frozen dataclass with typed
fields, one env-var parser, and explicit override hooks for tests and
embedders.

Usage::

    from repro.config import get_config

    cache_root = get_config().cache_dir       # honours REPRO_CACHE_DIR
    if get_config().full_suite: ...           # honours REPRO_FULL_SUITE

``get_config()`` re-reads the environment on every call (the reads are
cheap), so ``monkeypatch.setenv`` keeps working in tests; a process that
wants a pinned configuration installs one with :func:`set_config` /
:func:`reset_config` (or the :func:`override` context manager).

The knob table in ``docs/ARCHITECTURE.md`` documents every field here, and
``tests/test_docs.py`` fails the build when the two drift apart.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional

__all__ = [
    "ENV_BENCH_OUT",
    "ENV_CACHE_DIR",
    "ENV_FULL_SUITE",
    "ENV_FUZZ_SEED",
    "ENV_JOURNAL_DIR",
    "ENV_METRICS_PORT",
    "ENV_SERVE_SHARDS",
    "ENV_STRICT_BENCH",
    "ENV_TRACE",
    "RuntimeConfig",
    "config_report",
    "get_config",
    "override",
    "reset_config",
    "set_config",
]

#: Result-cache root directory (``ResultCache`` / ``--cache-dir`` default).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
#: Run the full synthetic suite / per-layer network sets instead of subsets.
ENV_FULL_SUITE = "REPRO_FULL_SUITE"
#: Enforce the CI benchmark bars (speedups, shard scaling) strictly.
ENV_STRICT_BENCH = "REPRO_STRICT_BENCH"
#: Default shard count of ``repro serve`` (0 = in-process thread service).
ENV_SERVE_SHARDS = "REPRO_SERVE_SHARDS"
#: Directory for durable job journals (``repro serve --journal`` default).
ENV_JOURNAL_DIR = "REPRO_JOURNAL_DIR"
#: Directory where the benchmark JSON reports land (default: repo root).
ENV_BENCH_OUT = "REPRO_BENCH_OUT"
#: Default port of the serve telemetry endpoint (0 = exporter disabled).
ENV_METRICS_PORT = "REPRO_METRICS_PORT"
#: Chrome trace-event JSON output path (unset = tracing disabled).
ENV_TRACE = "REPRO_TRACE"
#: Base seed of every randomised test/fuzz run (reproduce CI failures).
ENV_FUZZ_SEED = "REPRO_FUZZ_SEED"


def _parse_bool(value: Optional[str]) -> bool:
    """The package-wide truthiness convention for env flags.

    Matches the historical scattered readers exactly: unset, empty, ``0``,
    ``false`` and ``False`` are off; anything else is on.
    """
    return value not in (None, "", "0", "false", "False")


def _default_cache_dir() -> Path:
    return Path.home() / ".cache" / "repro-datamaestro"


@dataclass(frozen=True)
class RuntimeConfig:
    """Every environment-tunable runtime knob, as typed fields.

    Parameters
    ----------
    cache_dir:
        Result-cache root used when no explicit ``cache_dir`` is given
        (``$REPRO_CACHE_DIR``).
    journal_dir:
        Directory for durable serve/cluster job journals
        (``$REPRO_JOURNAL_DIR``; defaults to ``<cache_dir>/journal``).
    full_suite:
        Run the full 260-workload synthetic suite and the complete
        per-layer network parity set (``$REPRO_FULL_SUITE``).
    strict_bench:
        Enforce the CI performance bars — engine speedups, shard-scaling
        throughput — instead of recording them (``$REPRO_STRICT_BENCH``).
    serve_shards:
        Default worker-process shard count for ``repro serve``; ``0`` keeps
        the single-process thread service (``$REPRO_SERVE_SHARDS``).
    bench_out:
        Directory the ``BENCH_*.json`` reports are written to; ``None``
        means the repository root (``$REPRO_BENCH_OUT``).
    metrics_port:
        Default port for the serve telemetry endpoint; ``0`` keeps the
        exporter off unless ``--metrics-port`` asks for one
        (``$REPRO_METRICS_PORT``).
    trace_path:
        When set, ``repro serve`` records a per-job span timeline and
        exports it as Chrome trace-event JSON at this path on exit
        (``$REPRO_TRACE``).
    fuzz_seed:
        Base seed of every randomised test — the parity fuzz suite, the
        replay soak — so one env var reproduces any CI failure exactly
        (``$REPRO_FUZZ_SEED``).
    """

    cache_dir: Path = field(default_factory=_default_cache_dir)
    journal_dir: Optional[Path] = None
    full_suite: bool = False
    strict_bench: bool = False
    serve_shards: int = 0
    bench_out: Optional[Path] = None
    metrics_port: int = 0
    trace_path: Optional[Path] = None
    fuzz_seed: int = 0

    def __post_init__(self) -> None:
        if self.serve_shards < 0:
            raise ValueError("serve_shards must be non-negative")
        if not 0 <= self.metrics_port <= 65535:
            raise ValueError("metrics_port must be in [0, 65535]")
        if self.journal_dir is None:
            object.__setattr__(self, "journal_dir", self.cache_dir / "journal")

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "RuntimeConfig":
        """Build a configuration from ``environ`` (default: ``os.environ``)."""
        env = os.environ if environ is None else environ
        cache_dir = (
            Path(env[ENV_CACHE_DIR]) if env.get(ENV_CACHE_DIR) else _default_cache_dir()
        )
        journal_dir = Path(env[ENV_JOURNAL_DIR]) if env.get(ENV_JOURNAL_DIR) else None
        shards_text = env.get(ENV_SERVE_SHARDS, "")
        try:
            serve_shards = int(shards_text) if shards_text else 0
        except ValueError as error:
            raise ValueError(
                f"{ENV_SERVE_SHARDS}={shards_text!r} is not an integer"
            ) from error
        bench_out = Path(env[ENV_BENCH_OUT]) if env.get(ENV_BENCH_OUT) else None
        port_text = env.get(ENV_METRICS_PORT, "")
        try:
            metrics_port = int(port_text) if port_text else 0
        except ValueError as error:
            raise ValueError(
                f"{ENV_METRICS_PORT}={port_text!r} is not an integer"
            ) from error
        trace_path = Path(env[ENV_TRACE]) if env.get(ENV_TRACE) else None
        seed_text = env.get(ENV_FUZZ_SEED, "")
        try:
            fuzz_seed = int(seed_text) if seed_text else 0
        except ValueError as error:
            raise ValueError(
                f"{ENV_FUZZ_SEED}={seed_text!r} is not an integer"
            ) from error
        return cls(
            cache_dir=cache_dir,
            journal_dir=journal_dir,
            full_suite=_parse_bool(env.get(ENV_FULL_SUITE)),
            strict_bench=_parse_bool(env.get(ENV_STRICT_BENCH)),
            serve_shards=serve_shards,
            bench_out=bench_out,
            metrics_port=metrics_port,
            trace_path=trace_path,
            fuzz_seed=fuzz_seed,
        )

    def with_overrides(self, **changes: object) -> "RuntimeConfig":
        """Copy with selected fields replaced (mirrors ``SimJob`` idiom)."""
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        """Flat summary for reports and the CLI stats dump."""
        summary: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            summary[spec.name] = str(value) if isinstance(value, Path) else value
        return summary


# ----------------------------------------------------------------------
# Process-wide access: env-backed by default, pinnable for tests/embedders.
# ----------------------------------------------------------------------
_PINNED: Optional[RuntimeConfig] = None


def get_config() -> RuntimeConfig:
    """The active configuration: the pinned one, else a fresh env read."""
    if _PINNED is not None:
        return _PINNED
    return RuntimeConfig.from_env()


def set_config(config: RuntimeConfig) -> None:
    """Pin ``config`` as the process-wide configuration."""
    global _PINNED
    _PINNED = config


def reset_config() -> None:
    """Drop any pinned configuration; ``get_config`` reads the env again."""
    global _PINNED
    _PINNED = None


#: Field name → environment variable, for :func:`config_report`.
_FIELD_ENV = {
    "cache_dir": ENV_CACHE_DIR,
    "journal_dir": ENV_JOURNAL_DIR,
    "full_suite": ENV_FULL_SUITE,
    "strict_bench": ENV_STRICT_BENCH,
    "serve_shards": ENV_SERVE_SHARDS,
    "bench_out": ENV_BENCH_OUT,
    "metrics_port": ENV_METRICS_PORT,
    "trace_path": ENV_TRACE,
    "fuzz_seed": ENV_FUZZ_SEED,
}


def config_report() -> Dict[str, object]:
    """Defaults vs runtime values, per field — the ``/config`` payload.

    Each field row carries the dataclass default, the value the active
    configuration resolves to, the backing environment variable, and an
    ``overridden`` flag (true when the runtime value differs from the
    default — whether it came from the environment or a pinned config).
    """
    defaults = RuntimeConfig()
    active = get_config()
    rows: Dict[str, object] = {}
    for spec in fields(RuntimeConfig):
        default_value = getattr(defaults, spec.name)
        active_value = getattr(active, spec.name)
        rows[spec.name] = {
            "env": _FIELD_ENV.get(spec.name),
            "default": str(default_value) if isinstance(default_value, Path) else default_value,
            "value": str(active_value) if isinstance(active_value, Path) else active_value,
            "overridden": active_value != default_value,
        }
    return {"pinned": _PINNED is not None, "fields": rows}


@contextmanager
def override(**changes: object) -> Iterator[RuntimeConfig]:
    """Temporarily pin the current configuration with ``changes`` applied."""
    global _PINNED
    previous = _PINNED
    pinned = get_config().with_overrides(**changes)
    set_config(pinned)
    try:
        yield pinned
    finally:
        _PINNED = previous
