"""Byte-level packing helpers shared by accelerators, compiler and tests.

The streaming engines move raw bytes (``numpy.uint8`` vectors); the
accelerator datapaths and the compiler's layout code interpret those bytes as
typed tiles.  These helpers centralise the conversion so every component uses
the same little-endian, row-major convention.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def tile_to_bytes(tile: np.ndarray) -> np.ndarray:
    """Flatten a typed tile into its row-major little-endian byte image."""
    array = np.ascontiguousarray(tile)
    return array.view(np.uint8).reshape(-1).copy()


def bytes_to_tile(
    data: np.ndarray, shape: Sequence[int], dtype: np.dtype
) -> np.ndarray:
    """Reinterpret a byte vector as a typed row-major tile of ``shape``."""
    dtype = np.dtype(dtype)
    expected = int(np.prod(shape)) * dtype.itemsize
    payload = np.ascontiguousarray(np.asarray(data, dtype=np.uint8)).reshape(-1)
    if payload.size != expected:
        raise ValueError(
            f"byte buffer has {payload.size} bytes, expected {expected} for "
            f"shape {tuple(shape)} of {dtype}"
        )
    return payload.view(dtype).reshape(tuple(shape)).copy()


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)


def pad_to_multiple(array: np.ndarray, multiples: Tuple[int, ...]) -> np.ndarray:
    """Zero-pad each dimension of ``array`` up to a multiple of ``multiples``."""
    if array.ndim != len(multiples):
        raise ValueError(
            f"array has {array.ndim} dimensions but {len(multiples)} multiples given"
        )
    pad_width = []
    for size, multiple in zip(array.shape, multiples):
        if multiple <= 0:
            raise ValueError("padding multiples must be positive")
        target = ceil_div(size, multiple) * multiple
        pad_width.append((0, target - size))
    if all(after == 0 for _, after in pad_width):
        return array
    return np.pad(array, pad_width, mode="constant")
