"""Small shared utilities (byte packing of tiles, integer helpers)."""

from .packing import (
    bytes_to_tile,
    ceil_div,
    pad_to_multiple,
    tile_to_bytes,
)

__all__ = ["bytes_to_tile", "tile_to_bytes", "ceil_div", "pad_to_multiple"]
