"""The :class:`Simulator` facade — the single front door for simulation.

Callers describe *what* to simulate as :class:`~repro.runtime.job.SimJob`
values; the simulator decides *how*: which backend executes it, whether the
result comes from the on-disk cache, and whether batches fan out over a
process pool.  All experiment modules, the analysis drivers and the CLI go
through this facade.

Typical use::

    from repro.runtime import SimJob, Simulator

    sim = Simulator(cache_dir="~/.cache/repro-datamaestro", max_workers=4)
    outcome = sim.simulate(SimJob(workload=my_gemm))
    outcomes = sim.simulate_many([SimJob(workload=w) for w in suite])
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from ..core.params import FeatureSet
from ..engine import DEFAULT_ENGINE
from ..system.design import AcceleratorSystemDesign
from ..workloads.spec import Workload
from .backends import get_backend
from .batch import BatchRunner, BatchStats
from .cache import ResultCache
from .job import DATAMAESTRO_BACKEND, SimJob
from .outcome import SimOutcome


class Simulator:
    """Compiles, runs and caches simulation jobs behind one uniform API.

    Parameters
    ----------
    cache:
        A ready-made :class:`ResultCache`, or ``None``.
    cache_dir:
        Convenience alternative to ``cache``: directory for a new result
        cache.  Ignored when ``cache`` is given.  When both are ``None``
        (the default) nothing is cached.
    max_workers:
        Default process-pool width for :meth:`simulate_many` /
        :meth:`sweep`; ``None`` or ``1`` runs in-process.
    service:
        Optional :class:`repro.serve.ServiceClient`.  When set, batch
        execution routes through the shared asynchronous simulation
        service — one scheduler and one cache across DSE runs, sweeps and
        ad-hoc calls, with duplicate in-flight requests coalesced — instead
        of a private process pool (``max_workers`` is then ignored for
        execution).  See ``docs/SERVE.md``.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        max_workers: Optional[int] = None,
        service: Optional[object] = None,
    ) -> None:
        if cache is None and cache_dir is not None:
            cache = ResultCache(Path(cache_dir).expanduser())
        self.cache = cache
        self.max_workers = max_workers
        self.service = service
        self.stats = BatchStats()

    # ------------------------------------------------------------------
    def simulate(self, job: SimJob) -> SimOutcome:
        """Execute one job (through the cache when one is configured).

        With a ``service`` attached, the miss path submits to the shared
        simulation service (coalescing with any identical in-flight
        request) instead of executing in-process.
        """
        if self.cache is not None:
            hit = self.cache.get(job.job_hash())
            if hit is not None:
                self.stats.cache_hits += 1
                return hit
            self.stats.cache_misses += 1
        if self.service is not None:
            outcome = self.service.run([job])[0]
            if outcome.cache_hit:
                self.stats.service_cache_hits += 1
            else:
                self.stats.executed += 1
        else:
            outcome = get_backend(job.backend).execute(job)
            self.stats.executed += 1
        if self.cache is not None:
            self.cache.put(job.job_hash(), outcome)
        return outcome

    def simulate_many(
        self,
        jobs: Iterable[SimJob],
        max_workers: Optional[int] = None,
    ) -> List[SimOutcome]:
        """Execute a batch; outcome order always equals submission order."""
        runner = BatchRunner(
            cache=self.cache,
            max_workers=self.max_workers if max_workers is None else max_workers,
            service=self.service,
        )
        outcomes = runner.run(jobs)
        self.stats.merge(runner.stats)
        return outcomes

    # ------------------------------------------------------------------
    def sweep(
        self,
        workloads: Sequence[Workload],
        features: Optional[Sequence[FeatureSet]] = None,
        designs: Optional[Sequence[Optional[AcceleratorSystemDesign]]] = None,
        backends: Sequence[str] = (DATAMAESTRO_BACKEND,),
        seed: int = 0,
        max_workers: Optional[int] = None,
        engine: str = DEFAULT_ENGINE,
    ) -> List[SimOutcome]:
        """Cartesian sweep: workloads × features × designs × backends.

        Returns outcomes in the deterministic nesting order
        ``for backend / for design / for feature-set / for workload``.
        ``engine`` selects the simulation engine for every job of the sweep.
        """
        feature_axis: Sequence[Optional[FeatureSet]] = features or [None]
        design_axis = designs or [None]
        jobs = [
            SimJob(
                workload=workload,
                design=design,
                features=feature_set,
                backend=backend,
                seed=seed,
                engine=engine,
            )
            for backend in backends
            for design in design_axis
            for feature_set in feature_axis
            for workload in workloads
        ]
        return self.simulate_many(jobs, max_workers=max_workers)


# ----------------------------------------------------------------------
# Module-level default simulator (uncached, in-process).
# ----------------------------------------------------------------------
_DEFAULT_SIMULATOR: Optional[Simulator] = None


def default_simulator() -> Simulator:
    """Shared uncached, in-process simulator for one-off calls."""
    global _DEFAULT_SIMULATOR
    if _DEFAULT_SIMULATOR is None:
        _DEFAULT_SIMULATOR = Simulator()
    return _DEFAULT_SIMULATOR


def simulate(job: SimJob) -> SimOutcome:
    """Convenience wrapper: run one job on the default simulator."""
    return default_simulator().simulate(job)
