"""On-disk content-addressed result cache.

Outcomes are stored one-per-file under ``<root>/v<package-version>/`` with
the job hash as the filename, so:

* a cache entry is valid for exactly one (workload, design, features,
  backend, seed, budget) combination — any change produces a new key;
* bumping the package version invalidates every previous entry without
  touching the files (old versions keep their own subdirectory);
* concurrent writers are safe: entries are written to a temporary file and
  atomically renamed into place.

The cache stores :class:`~repro.runtime.outcome.SimOutcome` records via
pickle.  Unreadable entries (corrupt files, entries written by incompatible
code) are treated as misses and removed.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .outcome import SimOutcome

#: Environment variable overriding the default cache location (the read
#: itself lives in :mod:`repro.config`; the name is re-exported here for
#: backwards compatibility).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Default cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-datamaestro``.

    Delegates to the typed :func:`repro.config.get_config`, the single
    place environment knobs are read.
    """
    from ..config import get_config

    return get_config().cache_dir


class ResultCache:
    """Content-addressed store of simulation outcomes, keyed by job hash."""

    def __init__(self, root: Union[str, Path], version: Optional[str] = None) -> None:
        if version is None:
            from .. import __version__ as version
        self.root = Path(root)
        self.version = str(version)
        self.directory = self.root / f"v{self.version}"
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        """Uncounted existence probe.

        This deliberately bypasses the :attr:`hits`/:attr:`misses` counters
        (it answers "is there a file", not "was a lookup served"), so cache
        *screening* must never use it — :meth:`get` is the one counted
        lookup path, and the runtime's batch statistics are asserted
        against it in the test suite.
        """
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[SimOutcome]:
        """Return the cached outcome for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                outcome = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, EOFError, pickle.UnpicklingError, AttributeError, TypeError):
            # Corrupt or incompatible entry: drop it and report a miss.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        if not isinstance(outcome, SimOutcome):
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        outcome.cache_hit = True
        self.hits += 1
        # Touch the entry so prune()'s LRU-by-mtime ordering reflects *use*,
        # not just creation (best-effort: a losing race with a concurrent
        # prune only skips the touch).
        try:
            os.utime(path)
        except OSError:
            pass
        return outcome

    def put(self, key: str, outcome: SimOutcome) -> None:
        """Store ``outcome`` under ``key`` (atomic replace).

        Multi-process safe: the entry is staged in a uniquely named temp
        file and renamed into place, so concurrent writers racing on the
        same key each install a complete entry and the last rename wins —
        readers only ever observe nothing or a whole pickle.  A cache
        directory deleted underneath us (an external ``rm -rf`` between
        construction and write-back) is recreated and the write retried
        once rather than failing the simulation's result delivery.
        """
        for attempt in (0, 1):
            try:
                self._put_once(key, outcome)
                return
            except FileNotFoundError:
                if attempt:
                    raise
                self.directory.mkdir(parents=True, exist_ok=True)

    def _put_once(self, key: str, outcome: SimOutcome) -> None:
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=str(self.directory)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(outcome, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> "PruneReport":
        """Evict least-recently-used entries until both bounds hold.

        Recency is mtime: entries are touched on every counted ``get``, so
        eviction order is least-recently-*served* first.  At least one
        bound is required; ``max_entries`` caps the entry count and
        ``max_bytes`` the total on-disk size of this version's directory.
        A long-running service prunes periodically (or via ``python -m
        repro.cli cache prune``) to keep unbounded on-disk growth — a real
        deployment blocker — in check.

        Entries that vanish mid-scan (concurrent prune/clear) are skipped.
        """
        if max_entries is None and max_bytes is None:
            raise ValueError("prune needs max_entries and/or max_bytes")
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        entries = []
        for path in self.directory.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
        entries.sort()  # oldest mtime first = least recently used first
        total_bytes = sum(size for _, _, size in entries)
        removed = 0
        bytes_freed = 0
        while entries and (
            (max_entries is not None and len(entries) > max_entries)
            or (max_bytes is not None and total_bytes > max_bytes)
        ):
            _mtime, path, size = entries.pop(0)
            path.unlink(missing_ok=True)
            removed += 1
            bytes_freed += size
            total_bytes -= size
        return PruneReport(
            removed=removed,
            remaining=len(entries),
            bytes_freed=bytes_freed,
            bytes_remaining=total_bytes,
        )

    def size_bytes(self) -> int:
        """Total on-disk size of this version's entries."""
        total = 0
        for path in self.directory.glob("*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every entry of this version; return how many were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict:
        return {
            "directory": str(self.directory),
            "entries": len(self),
            "size_bytes": self.size_bytes(),
            "hits": self.hits,
            "misses": self.misses,
        }

    def register_metrics(self, registry=None) -> None:
        """Expose this cache through an obs registry (idempotent).

        Registers a named callback producing the ``repro_result_cache_*``
        families from :meth:`stats` on every scrape; ``registry`` defaults
        to the process-wide one.  Re-registering (a fresh cache object at
        the same directory, repeated CLI runs in one process) replaces the
        previous producer instead of duplicating rows.
        """
        from ..obs.exposition import cache_families
        from ..obs.metrics import get_registry

        target = registry if registry is not None else get_registry()
        target.add_callback("repro_result_cache", lambda: cache_families(self.stats()))


@dataclass(frozen=True)
class PruneReport:
    """What one :meth:`ResultCache.prune` call did."""

    removed: int
    remaining: int
    bytes_freed: int
    bytes_remaining: int
