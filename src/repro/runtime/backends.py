"""Simulation backends and the backend registry.

A backend turns a :class:`~repro.runtime.job.SimJob` into a
:class:`~repro.runtime.outcome.SimOutcome`.  Two families ship with the
repository:

* ``"datamaestro"`` — compiles the workload and executes it on the
  cycle-level :class:`~repro.system.system.AcceleratorSystem`.  This is the
  **only** place in the package that drives the system model directly; every
  experiment, analysis driver and CLI command goes through the runtime.
* ``"baseline:<slug>"`` — one backend per comparator model in
  :mod:`repro.baselines` that implements a performance model (Gemmini
  OS/WS, BitWave, FEATHER).  These produce analytic outcomes without a
  cycle simulation, but with the same :class:`SimOutcome` shape, so sweeps
  can mix measured and modelled systems freely.

Custom backends register through :func:`register_backend`; see
``docs/RUNTIME.md`` for a walk-through.

To keep the import graph acyclic (``repro.baselines`` may itself consult the
runtime), the default registry is populated lazily on first lookup and this
module never imports :mod:`repro.baselines` at module level.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..compiler.mapper import compile_workload
from ..sim.runner import DEFAULT_PROGRESS_INTERVAL
from ..system.system import AcceleratorSystem
from .job import DATAMAESTRO_BACKEND, SimJob
from .outcome import SimOutcome

#: Prefix of every baseline-model backend name.
BASELINE_BACKEND_PREFIX = "baseline:"


class SimulationBackend:
    """Interface every backend implements."""

    #: Registry name of the backend.
    name: str = "unnamed"

    def execute(self, job: SimJob) -> SimOutcome:
        raise NotImplementedError

    def execute_with_progress(
        self,
        job: SimJob,
        progress_callback: Optional[Callable[[int], None]] = None,
        progress_interval: int = DEFAULT_PROGRESS_INTERVAL,
    ) -> SimOutcome:
        """Execute ``job``, streaming cooperative progress where supported.

        ``progress_callback`` receives the current cycle count roughly
        every ``progress_interval`` simulated cycles (the simulation
        engines' yield points — see ``docs/ENGINE.md``).  The base
        implementation ignores the callback and just executes: backends
        without a cycle loop (the analytic baselines, custom closed-form
        models) have no meaningful progress to report.
        """
        return self.execute(job)

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "kind": type(self).__name__}


class DataMaestroBackend(SimulationBackend):
    """Cycle-level simulation on the DataMaestro evaluation system."""

    name = DATAMAESTRO_BACKEND

    def execute(self, job: SimJob) -> SimOutcome:
        return self.execute_with_progress(job)

    def execute_with_progress(
        self,
        job: SimJob,
        progress_callback: Optional[Callable[[int], None]] = None,
        progress_interval: int = DEFAULT_PROGRESS_INTERVAL,
    ) -> SimOutcome:
        program = compile_workload(job.workload, job.design, job.features, seed=job.seed)
        system = AcceleratorSystem(job.design)
        result = system.run(
            program,
            max_cycles=job.max_cycles,
            engine=job.engine,
            progress_callback=progress_callback,
            progress_interval=progress_interval,
        )
        functional = system.verify_outputs(result)
        # Surface the macro-step engine's engagement (jumps, bulk-advanced
        # cycles) through the outcome so the serve/cluster snapshots can
        # aggregate it; absent (lockstep, pure next-event) stays absent.
        macro = system.steady_stats()
        if macro:
            return SimOutcome.from_result(
                job, result, functional_match=functional, macro_stats=macro
            )
        return SimOutcome.from_result(job, result, functional_match=functional)


class BaselineModelBackend(SimulationBackend):
    """Analytic outcome from one :mod:`repro.baselines` performance model."""

    def __init__(self, slug: str, factory: Callable[[], object]) -> None:
        self.name = f"{BASELINE_BACKEND_PREFIX}{slug}"
        self.slug = slug
        self._factory = factory
        self._model = None

    @property
    def model(self):
        if self._model is None:
            self._model = self._factory()
        return self._model

    def execute(self, job: SimJob) -> SimOutcome:
        design = job.design
        ideal = job.workload.ideal_compute_cycles(
            design.gemm_mu, design.gemm_nu, design.gemm_ku
        )
        utilization = self.model.utilization(job.workload)
        # The comparator models adopt the next-event protocol in its extreme
        # form — a closed-form model's only event is completion — so the
        # estimate is driven through the shared CycleRunner like every other
        # cycle-level target.  The event engine finishes it in two real
        # steps regardless of kernel size (lockstep would grind through
        # every estimated cycle, so analytic jobs always schedule
        # event-driven); the count it returns is what the outcome reports.
        driver_cycles = None
        if utilization > 0:
            from ..sim.runner import CycleRunner

            target = self.model.analytic_cycle_model(
                job.workload,
                design.gemm_mu,
                design.gemm_nu,
                design.gemm_ku,
                utilization=utilization,
            )
            driver_cycles = CycleRunner(
                max_cycles=max(job.max_cycles, target.total_cycles),
                engine="event",
            ).run(target)
        return SimOutcome.analytic(
            job, utilization=utilization, ideal_compute_cycles=ideal,
            model=self.model.name, driver_cycles=driver_cycles,
        )

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["model"] = self.model.name
        return info


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, SimulationBackend] = {}
_DEFAULTS_LOADED = False


def register_backend(backend: SimulationBackend, overwrite: bool = False) -> None:
    """Add ``backend`` to the registry under its ``name``."""
    if not overwrite and backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend


def _ensure_default_backends() -> None:
    """Populate the registry with the built-in backends (idempotent)."""
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    _DEFAULTS_LOADED = True
    register_backend(DataMaestroBackend(), overwrite=True)
    # Imported here, not at module level: repro.baselines consults the
    # runtime for the DataMaestro profile, so a top-level import would cycle.
    from ..baselines import BASELINE_REGISTRY, DataMaestroSolution

    for slug, factory in BASELINE_REGISTRY.items():
        model = factory()
        if isinstance(model, DataMaestroSolution):
            continue  # that *is* the "datamaestro" backend
        if not model.has_performance_model:
            continue
        register_backend(
            BaselineModelBackend(slug, factory), overwrite=True
        )


def get_backend(name: str) -> SimulationBackend:
    """Look up a registered backend by name."""
    _ensure_default_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> List[str]:
    """Names of every registered backend, defaults included."""
    _ensure_default_backends()
    return sorted(_REGISTRY)
