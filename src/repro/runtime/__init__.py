"""Unified simulation-service layer: declarative jobs, batching, caching.

This package is the single front door for running simulations in the
repository.  It mirrors the paper's decoupled access/execute idea at the
Python API level: a :class:`SimJob` *describes* a simulation (workload,
design, features, backend) and the runtime decides *how* to execute it —
which backend, in-process or across a worker pool, freshly simulated or
served from the on-disk result cache.

* :mod:`repro.runtime.job` — :class:`SimJob`, the hashable job spec;
* :mod:`repro.runtime.outcome` — :class:`SimOutcome`, the uniform result;
* :mod:`repro.runtime.backends` — backend protocol + registry (the
  cycle-level DataMaestro system and the analytic baseline models);
* :mod:`repro.runtime.cache` — content-addressed on-disk result cache;
* :mod:`repro.runtime.batch` — :class:`BatchRunner` with process-pool
  fan-out, dedup and deterministic ordering;
* :mod:`repro.runtime.simulator` — the :class:`Simulator` facade.

See ``docs/RUNTIME.md`` for the job model, caching semantics and how to add
a backend; ``docs/ENGINE.md`` covers the ``engine`` job field (event-driven
vs lockstep simulation).
"""

from ..engine import DEFAULT_ENGINE, EVENT_ENGINE, LOCKSTEP_ENGINE, available_engines
from .backends import (
    BASELINE_BACKEND_PREFIX,
    BaselineModelBackend,
    DataMaestroBackend,
    SimulationBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .batch import BatchRunner, BatchStats, execute_job, execute_job_with_progress
from .cache import CACHE_DIR_ENV, PruneReport, ResultCache, default_cache_dir
from .job import DATAMAESTRO_BACKEND, SimJob, canonical_encode, stable_digest
from .outcome import SimOutcome
from .simulator import Simulator, default_simulator, simulate

__all__ = [
    "SimJob",
    "SimOutcome",
    "Simulator",
    "BatchRunner",
    "BatchStats",
    "ResultCache",
    "SimulationBackend",
    "DataMaestroBackend",
    "BaselineModelBackend",
    "PruneReport",
    "simulate",
    "default_simulator",
    "execute_job",
    "execute_job_with_progress",
    "get_backend",
    "register_backend",
    "available_backends",
    "default_cache_dir",
    "canonical_encode",
    "stable_digest",
    "DATAMAESTRO_BACKEND",
    "BASELINE_BACKEND_PREFIX",
    "CACHE_DIR_ENV",
    "DEFAULT_ENGINE",
    "EVENT_ENGINE",
    "LOCKSTEP_ENGINE",
    "available_engines",
]
