"""Uniform simulation outcomes returned by every runtime backend.

Whatever executes a :class:`~repro.runtime.job.SimJob` — the cycle-level
DataMaestro system or an analytic baseline model — callers receive the same
:class:`SimOutcome` record: the headline metrics every experiment consumes
(utilization, cycles, memory activity), the full cycle-level
:class:`~repro.sim.result.SimulationResult` when one exists, and provenance
describing exactly how the numbers were produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..sim.result import SimulationResult
from .job import SimJob


def _job_provenance(job: SimJob) -> Dict[str, Any]:
    from .. import __version__

    return {
        "package_version": __version__,
        "backend": job.backend,
        "engine": job.engine,
        "design": job.design.name,
        "features": job.features.as_dict(),
        "seed": job.seed,
        "label": job.label,
    }


@dataclass
class SimOutcome:
    """Result of one simulation job, uniform across backends."""

    job_hash: str
    backend: str
    workload_name: str
    workload_group: str
    utilization: float
    kernel_cycles: int
    ideal_compute_cycles: int
    prepass_cycles: int = 0
    memory_accesses: int = 0
    bank_conflicts: int = 0
    #: Derived / backend-specific metrics (e.g. ``functional_match``).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Full cycle-level result; ``None`` for analytic backends.
    result: Optional[SimulationResult] = None
    #: How the numbers were produced (package version, backend, seed, ...).
    provenance: Dict[str, Any] = field(default_factory=dict)
    #: Set by the runtime when the outcome was served from the result cache.
    cache_hit: bool = field(default=False, compare=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        job: SimJob,
        result: SimulationResult,
        **metrics: Any,
    ) -> "SimOutcome":
        """Wrap a cycle-level :class:`SimulationResult` for ``job``."""
        return cls(
            job_hash=job.job_hash(),
            backend=job.backend,
            workload_name=job.workload.name,
            workload_group=job.workload.group.value,
            utilization=result.utilization,
            kernel_cycles=result.kernel_cycles,
            ideal_compute_cycles=result.ideal_compute_cycles,
            prepass_cycles=result.prepass_cycles,
            memory_accesses=result.memory_accesses,
            bank_conflicts=result.bank_conflicts,
            metrics=dict(metrics),
            result=result,
            provenance=_job_provenance(job),
        )

    @classmethod
    def analytic(
        cls,
        job: SimJob,
        utilization: float,
        ideal_compute_cycles: int,
        **metrics: Any,
    ) -> "SimOutcome":
        """Build an outcome from an analytic utilization estimate."""
        kernel_cycles = (
            round(ideal_compute_cycles / utilization) if utilization > 0 else 0
        )
        return cls(
            job_hash=job.job_hash(),
            backend=job.backend,
            workload_name=job.workload.name,
            workload_group=job.workload.group.value,
            utilization=utilization,
            kernel_cycles=kernel_cycles,
            ideal_compute_cycles=ideal_compute_cycles,
            metrics={"analytic": True, **metrics},
            result=None,
            provenance=_job_provenance(job),
        )

    # ------------------------------------------------------------------
    def throughput_gops(self, num_pes: int, frequency_ghz: float = 1.0) -> float:
        """Normalized throughput in GOPS (2 ops per MAC), Figure 10 style."""
        return 2.0 * num_pes * frequency_ghz * self.utilization

    @property
    def functional_match(self) -> Optional[bool]:
        """Outputs-vs-oracle verdict, if the backend verified them."""
        return self.metrics.get("functional_match")

    def as_dict(self) -> Dict[str, Any]:
        """Flatten the headline metrics for tabular reports."""
        return {
            "workload": self.workload_name,
            "group": self.workload_group,
            "backend": self.backend,
            "utilization": self.utilization,
            "kernel_cycles": self.kernel_cycles,
            "ideal_compute_cycles": self.ideal_compute_cycles,
            "prepass_cycles": self.prepass_cycles,
            "memory_accesses": self.memory_accesses,
            "bank_conflicts": self.bank_conflicts,
            "cache_hit": self.cache_hit,
            "job_hash": self.job_hash,
        }
