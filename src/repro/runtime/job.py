"""Declarative simulation jobs: the unit of work of :mod:`repro.runtime`.

A :class:`SimJob` is a complete, self-contained description of one
simulation — *what* workload to run, on *which* hardware design, with *which*
feature switches, through *which* backend — without saying anything about
*how* it is executed.  The runtime (``Simulator`` / ``BatchRunner``) decides
that: in-process or on a worker pool, freshly simulated or served from the
result cache.

Jobs are frozen dataclasses, hence hashable and picklable, and expose a
*stable* content hash (:meth:`SimJob.job_hash`) built from a canonical
encoding of every behaviour-affecting field.  The hash is identical across
processes and interpreter restarts (unlike built-in ``hash()``), which makes
it usable as an on-disk cache key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..core.params import FeatureSet
from ..engine import DEFAULT_ENGINE, validate_engine
from ..sim.result import DEFAULT_CYCLE_BUDGET
from ..system.design import AcceleratorSystemDesign, datamaestro_evaluation_system
from ..workloads.spec import Workload

#: Name of the cycle-level DataMaestro system backend (the default).
DATAMAESTRO_BACKEND = "datamaestro"


def canonical_encode(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serialisable structure with a stable layout.

    Dataclasses become ``[type-name, [[field, value], ...]]`` with fields in
    declaration order, enums become their value, tuples become lists and
    mappings are sorted by key — so two structurally equal objects always
    produce the same encoding regardless of process or insertion order.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = [
            [f.name, canonical_encode(getattr(obj, f.name))]
            for f in dataclasses.fields(obj)
        ]
        return [type(obj).__name__, fields]
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.value]
    if isinstance(obj, (tuple, list)):
        return [canonical_encode(item) for item in obj]
    if isinstance(obj, dict):
        return [[canonical_encode(k), canonical_encode(v)] for k, v in sorted(obj.items())]
    if isinstance(obj, float):
        return repr(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    raise TypeError(f"cannot canonically encode {type(obj)!r} for job hashing")


def stable_digest(obj: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``."""
    encoded = json.dumps(canonical_encode(obj), separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SimJob:
    """One declarative simulation request.

    Parameters
    ----------
    workload:
        The GeMM/convolution kernel to simulate.
    design:
        Hardware design point; ``None`` selects the paper's evaluation
        system (resolved eagerly so the job hash covers the real design).
    features:
        DataMaestro feature switchboard; ``None`` means all enabled.
    backend:
        Registered backend name (``"datamaestro"`` for the cycle-level
        system, ``"baseline:<slug>"`` for the analytic comparator models).
    seed:
        Operand-data seed forwarded to the compiler.
    max_cycles:
        Cycle budget for cycle-level backends.
    engine:
        Simulation engine for cycle-level backends: ``"event"`` (the
        next-event scheduler, the default) or ``"lockstep"`` (the legacy
        per-cycle loop).  Part of the job hash, so outcomes produced by
        different engines never collide in the result cache — the engines
        are parity-tested to agree, but a cached cross-engine answer would
        silently mask any divergence.
    label:
        Free-form tag for reports; *excluded* from the job hash.
    """

    workload: Workload
    design: Optional[AcceleratorSystemDesign] = None
    features: Optional[FeatureSet] = None
    backend: str = DATAMAESTRO_BACKEND
    seed: int = 0
    max_cycles: int = DEFAULT_CYCLE_BUDGET
    engine: str = DEFAULT_ENGINE
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.design is None:
            object.__setattr__(self, "design", datamaestro_evaluation_system())
        if self.features is None:
            object.__setattr__(self, "features", FeatureSet.all_enabled())
        if not self.backend:
            raise ValueError("backend name must be non-empty")
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")
        validate_engine(self.engine)

    # ------------------------------------------------------------------
    def job_hash(self) -> str:
        """Stable content hash of every behaviour-affecting field."""
        payload = {
            "workload": canonical_encode(self.workload),
            "design": canonical_encode(self.design),
            "features": canonical_encode(self.features),
            "backend": self.backend,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
            "engine": self.engine,
        }
        return stable_digest(payload)

    def with_updates(self, **changes: object) -> "SimJob":
        """Copy with selected fields replaced (mirrors the spec idiom)."""
        return replace(self, **changes)

    def describe(self) -> Dict[str, object]:
        """Provenance-friendly summary of the job."""
        return {
            "workload": self.workload.name,
            "group": self.workload.group.value,
            "design": self.design.name,
            "features": self.features.as_dict(),
            "backend": self.backend,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
            "engine": self.engine,
            "label": self.label,
            "job_hash": self.job_hash(),
        }
