"""Batched job execution: cache screening, deduplication, worker fan-out.

:class:`BatchRunner` executes a list of jobs with three guarantees:

* **deterministic ordering** — the i-th outcome always corresponds to the
  i-th submitted job, whether it was served from cache, deduplicated or
  computed on a worker process;
* **incrementality** — jobs whose hash is already in the
  :class:`~repro.runtime.cache.ResultCache` are never re-simulated, and
  duplicate jobs inside one batch are simulated once;
* **isolation** — worker processes receive the pickled job and resolve the
  backend themselves, so backends keep no shared mutable state.

With ``max_workers`` ≤ 1 (``0`` and ``None`` included) everything runs
in-process — the fan-out path never hands a zero worker count to the
``ProcessPoolExecutor``; larger values fan the cache misses out over a
process pool.  Alternatively, pass ``service=`` (a
:class:`repro.serve.ServiceClient`) to execute the misses through the
shared asynchronous simulation service (``docs/SERVE.md``) instead of a
private pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from .backends import DEFAULT_PROGRESS_INTERVAL, get_backend
from .cache import ResultCache
from .job import SimJob
from .outcome import SimOutcome


def execute_job(job: SimJob) -> SimOutcome:
    """Run one job through its backend (module-level so pools can pickle it)."""
    return get_backend(job.backend).execute(job)


def execute_job_with_progress(
    job: SimJob,
    progress_callback: Optional[Callable[[int], None]] = None,
    progress_interval: int = DEFAULT_PROGRESS_INTERVAL,
) -> SimOutcome:
    """Like :func:`execute_job`, streaming engine progress where supported.

    The simulation service's workers use this to turn the engines'
    cooperative yield points into streaming ``progress`` events; backends
    without a cycle loop silently ignore the callback.
    """
    return get_backend(job.backend).execute_with_progress(
        job, progress_callback=progress_callback, progress_interval=progress_interval
    )


@dataclass
class BatchStats:
    """Execution counters of one runner (accumulated across ``run`` calls).

    ``cache_hits``/``cache_misses`` mirror the :class:`ResultCache` counters
    exactly: every screening lookup goes through the cache's counted
    ``get`` path, so after any number of runs against one fresh cache,
    ``cache.hits == stats.cache_hits`` and ``cache.misses ==
    stats.cache_misses == stats.executed + stats.deduplicated +
    stats.service_cache_hits``.

    ``service_cache_hits`` only moves on the service path: local misses
    that the shared service resolved from *its* cache (``outcome.cache_hit``
    on the returned outcome) are counted there, not as ``executed`` — so
    ``executed`` never claims simulations the service did not run for this
    batch.  (A job coalesced onto another caller's in-flight simulation
    still counts as ``executed``: it was simulated, once, on this batch's
    behalf.)
    """

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    deduplicated: int = 0
    service_cache_hits: int = 0

    def merge(self, other: "BatchStats") -> None:
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.deduplicated += other.deduplicated
        self.service_cache_hits += other.service_cache_hits


class BatchRunner:
    """Runs many jobs with caching, dedup and optional process-pool fan-out.

    ``service`` (a :class:`repro.serve.ServiceClient`) reroutes the
    execution stage through the shared simulation service instead of a
    private process pool: unique cache misses are submitted as one batch
    (with cooperative backpressure) so concurrent runners coalesce
    duplicate work and share the service's scheduler and cache.  Screening,
    dedup, ordering and the :class:`BatchStats` counters are unchanged.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        max_workers: Optional[int] = None,
        service: Optional[object] = None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError("max_workers must be non-negative")
        self.cache = cache
        self.max_workers = max_workers
        self.service = service
        self.stats = BatchStats()

    # ------------------------------------------------------------------
    def run(self, jobs: Iterable[SimJob]) -> List[SimOutcome]:
        """Execute ``jobs``; outcome order equals submission order."""
        jobs = list(jobs)
        outcomes: List[Optional[SimOutcome]] = [None] * len(jobs)
        keys = [job.job_hash() for job in jobs]

        # 1. Screen against the cache and deduplicate within the batch.
        # Screening goes through the cache's single counted lookup path
        # (get, never __contains__), so BatchStats and ResultCache counters
        # stay in lockstep: one hit or one miss per screened job.
        first_index: Dict[str, int] = {}
        pending: List[int] = []
        for index, (job, key) in enumerate(zip(jobs, keys)):
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    outcomes[index] = hit
                    self.stats.cache_hits += 1
                    continue
                self.stats.cache_misses += 1
            if key in first_index:
                self.stats.deduplicated += 1
                continue
            first_index[key] = index
            pending.append(index)

        # 2. Execute the unique misses (in submission order).
        if pending:
            fresh = self._execute([jobs[i] for i in pending])
            for index, outcome in zip(pending, fresh):
                outcomes[index] = outcome
                if self.cache is not None:
                    self.cache.put(keys[index], outcome)
            if self.service is not None:
                # Outcomes the shared service pulled from its own cache were
                # not simulated for this batch — keep `executed` honest.
                served = sum(1 for outcome in fresh if outcome.cache_hit)
                self.stats.service_cache_hits += served
                self.stats.executed += len(pending) - served
            else:
                self.stats.executed += len(pending)

        # 3. Fan deduplicated / late cache consumers back out.
        for index, (key, outcome) in enumerate(zip(keys, outcomes)):
            if outcome is None:
                source = outcomes[first_index[key]]
                assert source is not None
                outcomes[index] = source
        return [outcome for outcome in outcomes if outcome is not None]

    # ------------------------------------------------------------------
    def _execute(self, jobs: List[SimJob]) -> List[SimOutcome]:
        if self.service is not None:
            # One waiting batch through the shared service; order preserved.
            return self.service.run(jobs)
        # 0 and None both normalize to in-process execution: the pool path
        # below must never see a non-positive worker count.
        workers = self.max_workers or 1
        workers = min(workers, len(jobs))
        if workers <= 1:
            return [execute_job(job) for job in jobs]
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Executor.map preserves input order, giving deterministic output.
            return list(pool.map(execute_job, jobs))
