"""Tensor data layouts (paper §II-A and Fig. 3).

The compiler places every operand in the scratchpad using a *blocked* layout
matched to the PE-array tiling, so that each wide word the streamers fetch is
one contiguous ``Mu×Ku`` / ``Ku×Nu`` / ``Mu×Nu`` tile:

* GeMM left operand ``A[M, K]`` — block-row-major ``[m2][k2][m1][k1]``
  (Fig. 3(c));
* transposed-GeMM left operand — the memory holds ``A^T`` blocked as
  ``[k2][m2][k1][m1]``, which the Transposer extension turns back into
  ``[m1][k1]`` tiles on the fly;
* GeMM right operand ``B[K, N]`` — blocked ``[k2][n2][k1][n1]``;
* accumulator / output tiles ``[m2][n2][m1][n1]`` in int32;
* convolution input — channel-blocked ``C/Ku · H · W · Ku`` (Fig. 3(d));
* convolution weights — ``[fy][fx][c2][n2][c1][n1]`` so each reduction step
  reads one contiguous ``Ku×Nu`` tile.

Every ``pack_*`` function zero-pads the logical tensor up to the tile grid
and returns the flat byte image plus enough shape information for the
matching ``unpack_*`` function (used to read results back and to express the
explicit data-manipulation pre-passes of feature-disabled configurations).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..utils.packing import ceil_div, pad_to_multiple, tile_to_bytes


# ----------------------------------------------------------------------
# GeMM operand layouts.
# ----------------------------------------------------------------------
def pack_gemm_a(a: np.ndarray, mu: int, ku: int) -> np.ndarray:
    """Block-row-major layout of ``A[M, K]`` (int8): ``[m2][k2][m1][k1]``."""
    a = np.asarray(a, dtype=np.int8)
    if a.ndim != 2:
        raise ValueError("A must be a 2-D matrix")
    padded = pad_to_multiple(a, (mu, ku))
    tiles_m, tiles_k = padded.shape[0] // mu, padded.shape[1] // ku
    blocked = padded.reshape(tiles_m, mu, tiles_k, ku).transpose(0, 2, 1, 3)
    return tile_to_bytes(blocked)


def pack_gemm_a_transposed(a: np.ndarray, mu: int, ku: int) -> np.ndarray:
    """Layout holding ``A^T`` blocked as ``[k2][m2][k1][m1]`` (int8).

    ``a`` is still passed in its logical ``[M, K]`` orientation; this function
    stores its transpose, which is what a framework would hand the
    accelerator for attention-style ``Q·K^T`` operands.
    """
    a = np.asarray(a, dtype=np.int8)
    if a.ndim != 2:
        raise ValueError("A must be a 2-D matrix")
    at = np.ascontiguousarray(a.T)
    padded = pad_to_multiple(at, (ku, mu))
    tiles_k, tiles_m = padded.shape[0] // ku, padded.shape[1] // mu
    blocked = padded.reshape(tiles_k, ku, tiles_m, mu).transpose(0, 2, 1, 3)
    return tile_to_bytes(blocked)


def pack_gemm_b(b: np.ndarray, ku: int, nu: int) -> np.ndarray:
    """Blocked layout of ``B[K, N]`` (int8): ``[k2][n2][k1][n1]``."""
    b = np.asarray(b, dtype=np.int8)
    if b.ndim != 2:
        raise ValueError("B must be a 2-D matrix")
    padded = pad_to_multiple(b, (ku, nu))
    tiles_k, tiles_n = padded.shape[0] // ku, padded.shape[1] // nu
    blocked = padded.reshape(tiles_k, ku, tiles_n, nu).transpose(0, 2, 1, 3)
    return tile_to_bytes(blocked)


def pack_acc_tiles(c: np.ndarray, mu: int, nu: int) -> np.ndarray:
    """Blocked int32 accumulator layout ``[m2][n2][m1][n1]``."""
    c = np.asarray(c, dtype=np.int32)
    if c.ndim != 2:
        raise ValueError("accumulator tensor must be a 2-D matrix")
    padded = pad_to_multiple(c, (mu, nu))
    tiles_m, tiles_n = padded.shape[0] // mu, padded.shape[1] // nu
    blocked = padded.reshape(tiles_m, mu, tiles_n, nu).transpose(0, 2, 1, 3)
    return tile_to_bytes(blocked)


def unpack_acc_tiles(
    data: np.ndarray, rows: int, cols: int, mu: int, nu: int
) -> np.ndarray:
    """Inverse of :func:`pack_acc_tiles`, cropped to ``rows × cols``."""
    tiles_m, tiles_n = ceil_div(rows, mu), ceil_div(cols, nu)
    payload = np.asarray(data, dtype=np.uint8).view(np.int32)
    expected = tiles_m * tiles_n * mu * nu
    if payload.size != expected:
        raise ValueError(
            f"expected {expected} int32 values, got {payload.size}"
        )
    blocked = payload.reshape(tiles_m, tiles_n, mu, nu).transpose(0, 2, 1, 3)
    full = blocked.reshape(tiles_m * mu, tiles_n * nu)
    return full[:rows, :cols].copy()


def pack_int8_tiles(x: np.ndarray, mu: int, nu: int) -> np.ndarray:
    """Blocked int8 layout ``[m2][n2][m1][n1]`` (quantized outputs)."""
    x = np.asarray(x, dtype=np.int8)
    padded = pad_to_multiple(x, (mu, nu))
    tiles_m, tiles_n = padded.shape[0] // mu, padded.shape[1] // nu
    blocked = padded.reshape(tiles_m, mu, tiles_n, nu).transpose(0, 2, 1, 3)
    return tile_to_bytes(blocked)


def unpack_int8_tiles(
    data: np.ndarray, rows: int, cols: int, mu: int, nu: int
) -> np.ndarray:
    """Inverse of :func:`pack_int8_tiles`, cropped to ``rows × cols``."""
    tiles_m, tiles_n = ceil_div(rows, mu), ceil_div(cols, nu)
    payload = np.asarray(data, dtype=np.uint8).view(np.int8)
    expected = tiles_m * tiles_n * mu * nu
    if payload.size != expected:
        raise ValueError(f"expected {expected} int8 values, got {payload.size}")
    blocked = payload.reshape(tiles_m, tiles_n, mu, nu).transpose(0, 2, 1, 3)
    full = blocked.reshape(tiles_m * mu, tiles_n * nu)
    return full[:rows, :cols].copy()


# ----------------------------------------------------------------------
# Accumulator-initialisation (bias) layouts.
# ----------------------------------------------------------------------
def pack_bias_rows(bias: np.ndarray, nu: int) -> np.ndarray:
    """Per-output-channel bias stored once per tile column: ``[n2][n1]`` int32.

    This is the compact layout used when the Broadcaster extension is
    enabled: one ``nu``-wide int32 row per output tile column, duplicated
    across PE rows on the fly.
    """
    bias = np.asarray(bias, dtype=np.int32).reshape(-1)
    padded = pad_to_multiple(bias, (nu,))
    return tile_to_bytes(padded.reshape(-1, nu))


def pack_bias_full(bias: np.ndarray, rows: int, cols: int, mu: int, nu: int) -> np.ndarray:
    """Bias materialised as full ``Mu×Nu`` init tiles (Broadcaster disabled).

    Every output tile stores the bias row replicated across its ``mu`` rows —
    the redundant-memory situation the Broadcaster avoids.
    """
    bias = np.asarray(bias, dtype=np.int32).reshape(-1)
    if bias.size < cols:
        raise ValueError(f"bias has {bias.size} entries, need at least {cols}")
    full = np.tile(bias[:cols], (rows, 1))
    return pack_acc_tiles(full, mu, nu)


# ----------------------------------------------------------------------
# Convolution layouts.
# ----------------------------------------------------------------------
def pack_conv_input(feature_map: np.ndarray, ku: int) -> Tuple[np.ndarray, Tuple[int, int, int]]:
    """Channel-blocked input layout ``[c2][h][w][c1]`` (int8).

    Returns the byte image plus the padded ``(height, width, channels)`` so
    the caller can compute AGU strides.  ``feature_map`` has shape
    ``[H, W, C]`` and is expected to already include any spatial zero padding
    the convolution requires.
    """
    feature_map = np.asarray(feature_map, dtype=np.int8)
    if feature_map.ndim != 3:
        raise ValueError("convolution input must have shape [H, W, C]")
    padded = pad_to_multiple(feature_map, (1, 1, ku))
    height, width, channels = padded.shape
    tiles_c = channels // ku
    blocked = padded.reshape(height, width, tiles_c, ku).transpose(2, 0, 1, 3)
    return tile_to_bytes(blocked), (height, width, channels)


def pack_conv_weights(weights: np.ndarray, ku: int, nu: int) -> np.ndarray:
    """Blocked weight layout ``[fy][fx][c2][n2][c1][n1]`` (int8).

    ``weights`` has shape ``[FH, FW, C, K]``; each reduction step of the
    implicit GeMM reads one contiguous ``ku × nu`` tile.
    """
    weights = np.asarray(weights, dtype=np.int8)
    if weights.ndim != 4:
        raise ValueError("convolution weights must have shape [FH, FW, C, K]")
    padded = pad_to_multiple(weights, (1, 1, ku, nu))
    kernel_h, kernel_w, channels, out_channels = padded.shape
    tiles_c = channels // ku
    tiles_n = out_channels // nu
    blocked = padded.reshape(
        kernel_h, kernel_w, tiles_c, ku, tiles_n, nu
    ).transpose(0, 1, 2, 4, 3, 5)
    return tile_to_bytes(blocked)


def unpack_conv_output(
    data: np.ndarray,
    out_height: int,
    out_width: int,
    out_channels: int,
    mu: int,
    nu: int,
) -> np.ndarray:
    """Recover ``O[y, x, k]`` (int32) from the blocked output layout.

    The output is written as ``[y][x2][n2][m1][n1]`` tiles where ``m1``
    indexes ``mu`` consecutive output columns ``x`` of row ``y``.
    """
    tiles_x = ceil_div(out_width, mu)
    tiles_n = ceil_div(out_channels, nu)
    payload = np.asarray(data, dtype=np.uint8).view(np.int32)
    expected = out_height * tiles_x * tiles_n * mu * nu
    if payload.size != expected:
        raise ValueError(f"expected {expected} int32 values, got {payload.size}")
    blocked = payload.reshape(out_height, tiles_x, tiles_n, mu, nu)
    # -> [y][x2][m1][n2][n1] -> [y, x, k]
    full = blocked.transpose(0, 1, 3, 2, 4).reshape(
        out_height, tiles_x * mu, tiles_n * nu
    )
    return full[:, :out_width, :out_channels].copy()


def unpack_conv_output_int8(
    data: np.ndarray,
    out_height: int,
    out_width: int,
    out_channels: int,
    mu: int,
    nu: int,
) -> np.ndarray:
    """Recover the quantized ``O[y, x, k]`` (int8) from the blocked layout."""
    tiles_x = ceil_div(out_width, mu)
    tiles_n = ceil_div(out_channels, nu)
    payload = np.asarray(data, dtype=np.uint8).view(np.int8)
    expected = out_height * tiles_x * tiles_n * mu * nu
    if payload.size != expected:
        raise ValueError(f"expected {expected} int8 values, got {payload.size}")
    blocked = payload.reshape(out_height, tiles_x, tiles_n, mu, nu)
    full = blocked.transpose(0, 1, 3, 2, 4).reshape(
        out_height, tiles_x * mu, tiles_n * nu
    )
    return full[:, :out_width, :out_channels].copy()


# ----------------------------------------------------------------------
# Size helpers (used by the allocator and the pre-pass cost model).
# ----------------------------------------------------------------------
def gemm_a_bytes(m: int, k: int, mu: int, ku: int) -> int:
    return ceil_div(m, mu) * mu * ceil_div(k, ku) * ku


def gemm_b_bytes(k: int, n: int, ku: int, nu: int) -> int:
    return ceil_div(k, ku) * ku * ceil_div(n, nu) * nu


def acc_tile_bytes(m: int, n: int, mu: int, nu: int) -> int:
    return ceil_div(m, mu) * mu * ceil_div(n, nu) * nu * 4


def int8_tile_bytes(m: int, n: int, mu: int, nu: int) -> int:
    return ceil_div(m, mu) * mu * ceil_div(n, nu) * nu


def bias_rows_bytes(n: int, nu: int) -> int:
    return ceil_div(n, nu) * nu * 4


def conv_input_bytes(height: int, width: int, channels: int, ku: int) -> int:
    return height * width * ceil_div(channels, ku) * ku


def conv_weight_bytes(
    kernel_h: int, kernel_w: int, channels: int, out_channels: int, ku: int, nu: int
) -> int:
    return (
        kernel_h
        * kernel_w
        * ceil_div(channels, ku)
        * ku
        * ceil_div(out_channels, nu)
        * nu
    )
