"""Layer tiling: split large DNN layers into scratchpad-resident kernels.

The evaluation system's scratchpad holds 128 KiB, so real network layers
(Table III) are executed as a sequence of tiles the host DMA double-buffers —
the paper's compiler performs this tiling before emitting CSR programs.  This
module provides that front-end step for the reproduction:

* :func:`tile_gemm` splits a GeMM along M/N (and optionally K, producing
  partial-sum accumulation passes) so every tile's operands fit a byte
  budget;
* :func:`tile_convolution` splits a convolution along output rows and output
  channels, keeping whole kernel windows per tile (halo rows are re-fetched);
* :func:`tile_workload` dispatches on the workload type and returns a
  :class:`TilingPlan` whose tiles are ordinary workload objects that can be
  compiled and simulated individually.

The tiling preserves the total number of ideal compute cycles (up to the
padding the PE-array tiling already implies), which the tests check, and the
network-level estimator remains consistent with simulating each tile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..utils.packing import ceil_div
from ..workloads.spec import ConvWorkload, GemmWorkload, Workload

#: Default per-kernel operand budget: stay under the 128 KiB scratchpad with
#: headroom for the fully-materialised operands of feature-off configurations.
DEFAULT_TILE_BUDGET_BYTES = 96 * 1024


class TilingError(ValueError):
    """Raised when a layer cannot be tiled under the given constraints."""


@dataclass(frozen=True)
class TileSlice:
    """Where one tile's results land inside the full layer output."""

    workload: Workload
    row_offset: int
    col_offset: int
    accumulation_pass: int = 0


@dataclass
class TilingPlan:
    """A layer split into scratchpad-resident tiles."""

    layer: Workload
    tiles: List[TileSlice] = field(default_factory=list)
    budget_bytes: int = DEFAULT_TILE_BUDGET_BYTES

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def is_single_tile(self) -> bool:
        return len(self.tiles) == 1

    def workloads(self) -> List[Workload]:
        return [tile.workload for tile in self.tiles]

    def total_ideal_cycles(self, mu: int, nu: int, ku: int) -> int:
        return sum(
            tile.workload.ideal_compute_cycles(mu, nu, ku) for tile in self.tiles
        )

    def requires_accumulation(self) -> bool:
        """True when the reduction dimension was split (partial-sum passes)."""
        return any(tile.accumulation_pass > 0 for tile in self.tiles)


# ----------------------------------------------------------------------
# Footprint estimates (mirror the compiler's worst-case operand sizes).
# ----------------------------------------------------------------------
def gemm_tile_footprint(m: int, n: int, k: int) -> int:
    """Worst-case scratchpad bytes of one GeMM tile (Broadcaster disabled)."""
    return m * k + k * n + 8 * m * n + 4 * n


def conv_tile_footprint(workload: ConvWorkload) -> int:
    """Worst-case scratchpad bytes of one convolution tile."""
    tiles_m = workload.out_height * ceil_div(workload.out_width, 8)
    tiles_n = ceil_div(workload.out_channels, 8)
    weights = (
        workload.kernel_h
        * workload.kernel_w
        * max(workload.in_channels, 8)
        * max(workload.out_channels, 8)
    )
    input_bytes = (
        (workload.in_height + 2 * workload.padding)
        * (workload.in_width + 2 * workload.padding + 8)
        * max(workload.in_channels, 8)
    )
    return input_bytes + weights + 2 * tiles_m * tiles_n * 256


# ----------------------------------------------------------------------
# GeMM tiling.
# ----------------------------------------------------------------------
def _split(extent: int, parts: int) -> List[int]:
    """Split ``extent`` into ``parts`` chunks of near-equal multiple-of-8 size."""
    base = ceil_div(ceil_div(extent, parts), 8) * 8
    sizes = []
    remaining = extent
    while remaining > 0:
        chunk = min(base, remaining)
        sizes.append(chunk)
        remaining -= chunk
    return sizes


def tile_gemm(
    workload: GemmWorkload,
    budget_bytes: int = DEFAULT_TILE_BUDGET_BYTES,
    allow_k_split: bool = True,
) -> TilingPlan:
    """Split a GeMM so every tile's operands fit ``budget_bytes``."""
    plan = TilingPlan(layer=workload, budget_bytes=budget_bytes)
    if gemm_tile_footprint(workload.m, workload.n, workload.k) <= budget_bytes:
        plan.tiles.append(TileSlice(workload=workload, row_offset=0, col_offset=0))
        return plan

    # Grow the number of splits along M and N (keeping tiles roughly square)
    # until the footprint fits; split K only if still necessary.
    for total_splits in range(2, 4096):
        parts_m = min(total_splits, ceil_div(workload.m, 8))
        parts_n = min(total_splits, ceil_div(workload.n, 8))
        m_sizes = _split(workload.m, parts_m)
        n_sizes = _split(workload.n, parts_n)
        k_sizes = [workload.k]
        if gemm_tile_footprint(max(m_sizes), max(n_sizes), workload.k) > budget_bytes:
            if not allow_k_split:
                continue
            for parts_k in range(2, ceil_div(workload.k, 8) + 1):
                k_sizes = _split(workload.k, parts_k)
                if (
                    gemm_tile_footprint(max(m_sizes), max(n_sizes), max(k_sizes))
                    <= budget_bytes
                ):
                    break
            else:
                continue
        if gemm_tile_footprint(max(m_sizes), max(n_sizes), max(k_sizes)) > budget_bytes:
            continue

        row = 0
        for m_size in m_sizes:
            col = 0
            for n_size in n_sizes:
                for k_index, k_size in enumerate(k_sizes):
                    tile = workload.scaled(
                        name=f"{workload.name}__tile_m{row}_n{col}_k{k_index}",
                        m=m_size,
                        n=n_size,
                        k=k_size,
                        # Only the first reduction pass consumes the bias; the
                        # rest accumulate onto partial sums.
                        with_bias=workload.with_bias and k_index == 0,
                        # Only the last pass may requantize.
                        quantize=workload.quantize and k_index == len(k_sizes) - 1,
                    )
                    plan.tiles.append(
                        TileSlice(
                            workload=tile,
                            row_offset=row,
                            col_offset=col,
                            accumulation_pass=k_index,
                        )
                    )
                col += n_size
            row += m_size
        return plan
    raise TilingError(
        f"{workload.name}: cannot tile M={workload.m} N={workload.n} K={workload.k} "
        f"under {budget_bytes} bytes"
    )


# ----------------------------------------------------------------------
# Convolution tiling.
# ----------------------------------------------------------------------
def tile_convolution(
    workload: ConvWorkload,
    budget_bytes: int = DEFAULT_TILE_BUDGET_BYTES,
) -> TilingPlan:
    """Split a convolution along output rows and output channels."""
    plan = TilingPlan(layer=workload, budget_bytes=budget_bytes)
    if conv_tile_footprint(workload) <= budget_bytes:
        plan.tiles.append(TileSlice(workload=workload, row_offset=0, col_offset=0))
        return plan

    # A tile consumes a pre-padded slice of the input: ``rows`` output rows
    # need ``(rows-1)*stride + kernel_h`` input rows (the DMA stages the halo
    # rows with the slice), and the full padded width.  The tile itself is
    # therefore expressed with padding = 0 so its output shape is exact.
    padded_width = workload.in_width + 2 * workload.padding

    def make_tile(name: str, rows: int, channels: int) -> ConvWorkload:
        in_rows = (rows - 1) * workload.stride + workload.kernel_h
        return workload.scaled(
            name=name,
            in_height=in_rows,
            in_width=padded_width,
            out_channels=channels,
            padding=0,
        )

    max_row_parts = workload.out_height
    max_channel_parts = ceil_div(workload.out_channels, 8)
    for channel_parts in range(1, max_channel_parts + 1):
        channel_sizes = _split(workload.out_channels, channel_parts)
        for row_parts in range(1, max_row_parts + 1):
            rows_per_tile = ceil_div(workload.out_height, row_parts)
            probe = make_tile(
                f"{workload.name}__probe", rows_per_tile, max(channel_sizes)
            )
            if conv_tile_footprint(probe) > budget_bytes:
                continue
            # Emit the tiles.
            out_row = 0
            while out_row < workload.out_height:
                rows = min(rows_per_tile, workload.out_height - out_row)
                col = 0
                for channels in channel_sizes:
                    tile = make_tile(
                        f"{workload.name}__tile_y{out_row}_c{col}", rows, channels
                    )
                    plan.tiles.append(
                        TileSlice(workload=tile, row_offset=out_row, col_offset=col)
                    )
                    col += channels
                out_row += rows
            return plan
    raise TilingError(
        f"{workload.name}: cannot tile the convolution under {budget_bytes} bytes"
    )


def tile_workload(
    workload: Workload, budget_bytes: int = DEFAULT_TILE_BUDGET_BYTES
) -> TilingPlan:
    """Tile any supported workload type."""
    if isinstance(workload, GemmWorkload):
        return tile_gemm(workload, budget_bytes)
    if isinstance(workload, ConvWorkload):
        return tile_convolution(workload, budget_bytes)
    raise TypeError(f"unsupported workload type {type(workload)!r}")
