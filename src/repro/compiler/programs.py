"""Compiled kernel programs: what the compiler hands to the host/system.

A :class:`KernelProgram` bundles everything one kernel launch needs:

* the initial tensor images to place in the scratchpad (via DMA, uncounted —
  identical for every architecture configuration);
* the explicit data-manipulation *pre-passes* a feature-disabled
  configuration requires (software transpose, software im2col, bias
  materialisation), with their word-access and cycle costs;
* the runtime configuration of every DataMaestro port, in both structured
  (:class:`~repro.core.params.StreamerRuntimeConfig`) and CSR-write form;
* the GeMM-core job and optional quantizer configuration;
* where to read results back from and what the numpy oracle expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..accelerators.gemm_core import GemmJob
from ..accelerators.quantizer import QuantizationConfig
from ..core.params import FeatureSet, StreamerRuntimeConfig
from ..workloads.spec import Workload


@dataclass(frozen=True)
class TensorLoad:
    """One tensor image to place into the scratchpad before launch."""

    name: str
    base_address: int
    data: np.ndarray
    group_size: int

    @property
    def size_bytes(self) -> int:
        return int(self.data.size)


@dataclass(frozen=True)
class PrePass:
    """An explicit data-manipulation pass required when a feature is off.

    The pass is executed by the DMA through the scratchpad before streaming
    starts; its cost is charged to the kernel (cycles and word accesses),
    which is exactly the overhead the corresponding on-the-fly DataMaestro
    feature eliminates.
    """

    name: str
    word_reads: int
    word_writes: int
    cycles: int

    def __post_init__(self) -> None:
        if self.word_reads < 0 or self.word_writes < 0 or self.cycles < 0:
            raise ValueError("pre-pass costs must be non-negative")

    @property
    def word_accesses(self) -> int:
        return self.word_reads + self.word_writes


@dataclass(frozen=True)
class ReadbackSpec:
    """Where an output tensor lives in the scratchpad after the kernel."""

    name: str
    base_address: int
    size_bytes: int
    group_size: int


@dataclass
class KernelProgram:
    """A fully lowered kernel, ready to run on the evaluation system."""

    workload: Workload
    features: FeatureSet
    job: GemmJob
    streamer_configs: Dict[str, StreamerRuntimeConfig]
    csr_writes: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)
    tensor_loads: List[TensorLoad] = field(default_factory=list)
    prepasses: List[PrePass] = field(default_factory=list)
    quant_config: Optional[QuantizationConfig] = None
    readbacks: Dict[str, ReadbackSpec] = field(default_factory=dict)
    expected_outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def ideal_compute_cycles(self) -> int:
        return self.job.ideal_compute_cycles

    @property
    def uses_quantizer(self) -> bool:
        return self.quant_config is not None

    @property
    def prepass_cycles(self) -> int:
        return sum(prepass.cycles for prepass in self.prepasses)

    @property
    def prepass_word_accesses(self) -> int:
        return sum(prepass.word_accesses for prepass in self.prepasses)

    def active_ports(self) -> List[str]:
        """The DataMaestro ports this program uses, in canonical order."""
        return sorted(self.streamer_configs.keys())

    def total_load_bytes(self) -> int:
        return sum(load.size_bytes for load in self.tensor_loads)

    def describe(self) -> Dict[str, object]:
        """Human-readable summary used by examples and reports."""
        return {
            "workload": self.workload.name,
            "group": self.workload.group.value,
            "features": self.features.as_dict(),
            "tiles": (self.job.tiles_m, self.job.tiles_n, self.job.tiles_k),
            "ideal_compute_cycles": self.ideal_compute_cycles,
            "active_ports": self.active_ports(),
            "prepasses": [prepass.name for prepass in self.prepasses],
            "quantized": self.uses_quantizer,
            "scratchpad_bytes_loaded": self.total_load_bytes(),
        }
