"""Compiler: layouts, allocation and workload-to-CSR lowering."""

from .allocator import (
    AllocationError,
    AllocationPlan,
    MemoryAllocator,
    RegionAllocation,
)
from .mapper import compile_conv, compile_gemm, compile_workload, extract_outputs
from .programs import KernelProgram, PrePass, ReadbackSpec, TensorLoad
from .reference import conv2d_reference, gemm_reference, im2col_reference
from .tiling import (
    TileSlice,
    TilingError,
    TilingPlan,
    tile_convolution,
    tile_gemm,
    tile_workload,
)

__all__ = [
    "MemoryAllocator",
    "AllocationPlan",
    "AllocationError",
    "RegionAllocation",
    "compile_workload",
    "compile_gemm",
    "compile_conv",
    "extract_outputs",
    "KernelProgram",
    "TensorLoad",
    "PrePass",
    "ReadbackSpec",
    "gemm_reference",
    "conv2d_reference",
    "im2col_reference",
    "TilingPlan",
    "TileSlice",
    "TilingError",
    "tile_gemm",
    "tile_convolution",
    "tile_workload",
]
