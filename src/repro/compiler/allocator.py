"""Scratchpad data allocation and addressing-mode selection.

The allocator decides where every operand lives in the scratchpad and which
addressing mode each DataMaestro uses to access it:

* with **addressing-mode switching enabled** (§III-D), each operand region is
  placed in its own group of banks under grouped-interleaved addressing
  (GIMA), so the per-cycle A/B streams never fight over banks and the burst
  C/D/E streams are isolated from them;
* with the feature **disabled** (ablation architectures ①–⑤), every operand
  shares one fully-interleaved (FIMA) address space, allocated contiguously —
  whether streams collide then depends on how their bank windows happen to
  line up, which is exactly the bank-conflict exposure the feature removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.params import MemoryDesign
from ..utils.packing import ceil_div

#: Alignment of every allocated region, in bytes (one bank word).
REGION_ALIGNMENT = 64


class AllocationError(RuntimeError):
    """Raised when the operands of a kernel do not fit the scratchpad."""


@dataclass(frozen=True)
class RegionAllocation:
    """One allocated operand region."""

    name: str
    base_address: int
    size_bytes: int
    group_size: int

    @property
    def end_address(self) -> int:
        return self.base_address + self.size_bytes


@dataclass
class AllocationPlan:
    """All regions of one kernel plus the addressing mode they use."""

    regions: Dict[str, RegionAllocation] = field(default_factory=dict)

    def add(self, region: RegionAllocation) -> None:
        self.regions[region.name] = region

    def __getitem__(self, name: str) -> RegionAllocation:
        return self.regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.regions

    def total_bytes(self) -> int:
        return sum(region.size_bytes for region in self.regions.values())


def _align(value: int, alignment: int) -> int:
    return ceil_div(value, alignment) * alignment


class MemoryAllocator:
    """Places operand regions into the scratchpad for one kernel."""

    def __init__(
        self,
        memory: MemoryDesign,
        use_addressing_mode_switching: bool,
        gima_group_size: Optional[int] = None,
    ) -> None:
        self.memory = memory
        self.use_switching = bool(use_addressing_mode_switching)
        options = memory.resolved_group_options()
        if gima_group_size is None:
            # Prefer the largest proper group (i.e. not full interleaving),
            # which gives the most groups while keeping intra-group
            # interleaving wide enough for a whole channel bundle.
            proper = [opt for opt in options if opt not in (memory.num_banks, 1)]
            gima_group_size = proper[0] if proper else memory.num_banks
        if gima_group_size not in options:
            raise ValueError(
                f"GIMA group size {gima_group_size} is not an instantiated "
                f"option {options}"
            )
        self.gima_group_size = gima_group_size
        self._fima_cursor = 0
        self._group_cursor = 0
        self._group_tail: List[int] = []
        group_bytes = self.group_bytes
        self._num_groups = memory.capacity_bytes // group_bytes if group_bytes else 0
        self._group_tail = [g * group_bytes for g in range(self._num_groups)]

    # ------------------------------------------------------------------
    @property
    def group_bytes(self) -> int:
        """Capacity of one GIMA bank group in bytes."""
        return (
            self.gima_group_size
            * self.memory.bank_depth
            * self.memory.bank_width_bytes
        )

    @property
    def capacity_bytes(self) -> int:
        return self.memory.capacity_bytes

    # ------------------------------------------------------------------
    def allocate(self, name: str, size_bytes: int) -> RegionAllocation:
        """Allocate ``size_bytes`` for operand ``name``."""
        if size_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        size_bytes = max(size_bytes, REGION_ALIGNMENT)
        if self.use_switching:
            return self._allocate_grouped(name, size_bytes)
        return self._allocate_flat(name, size_bytes)

    def _allocate_flat(self, name: str, size_bytes: int) -> RegionAllocation:
        base = _align(self._fima_cursor, REGION_ALIGNMENT)
        end = base + size_bytes
        if end > self.capacity_bytes:
            raise AllocationError(
                f"operand {name!r} ({size_bytes} B) does not fit: "
                f"{end} > {self.capacity_bytes} B scratchpad"
            )
        self._fima_cursor = end
        return RegionAllocation(
            name=name,
            base_address=base,
            size_bytes=size_bytes,
            group_size=self.memory.num_banks,
        )

    def _allocate_grouped(self, name: str, size_bytes: int) -> RegionAllocation:
        groups_needed = ceil_div(size_bytes, self.group_bytes)
        # First choice: a run of completely fresh groups, so this operand's
        # bank group is disjoint from every previously allocated operand.
        start_group = self._first_fresh_run(groups_needed)
        if start_group is not None:
            base = start_group * self.group_bytes
            self._mark_used(start_group, groups_needed, size_bytes)
            return RegionAllocation(
                name=name,
                base_address=base,
                size_bytes=size_bytes,
                group_size=self.gima_group_size,
            )
        # Fallback: share the group with the most remaining space (small,
        # rarely-accessed operands such as bias rows end up here when the
        # kernel uses more operands than there are bank groups).
        best_group = None
        best_free = -1
        for group in range(self._num_groups):
            group_end = (group + 1) * self.group_bytes
            free = group_end - self._group_tail[group]
            if free > best_free:
                best_free = free
                best_group = group
        if best_group is None or best_free < size_bytes:
            raise AllocationError(
                f"operand {name!r} ({size_bytes} B) does not fit in any bank "
                f"group (largest free span {best_free} B)"
            )
        base = _align(self._group_tail[best_group], REGION_ALIGNMENT)
        if base + size_bytes > (best_group + 1) * self.group_bytes:
            raise AllocationError(
                f"operand {name!r} ({size_bytes} B) does not fit in bank group "
                f"{best_group} after alignment"
            )
        self._group_tail[best_group] = base + size_bytes
        return RegionAllocation(
            name=name,
            base_address=base,
            size_bytes=size_bytes,
            group_size=self.gima_group_size,
        )

    # ------------------------------------------------------------------
    def _is_fresh(self, group: int) -> bool:
        return self._group_tail[group] == group * self.group_bytes

    def _first_fresh_run(self, length: int) -> Optional[int]:
        """First index of ``length`` consecutive completely-unused groups."""
        for start in range(self._num_groups - length + 1):
            if all(self._is_fresh(start + offset) for offset in range(length)):
                return start
        return None

    def _mark_used(self, start_group: int, groups: int, size_bytes: int) -> None:
        base = start_group * self.group_bytes
        end = base + size_bytes
        for group in range(start_group, start_group + groups):
            group_start = group * self.group_bytes
            group_end = (group + 1) * self.group_bytes
            self._group_tail[group] = min(max(end, group_start), group_end)

    def plan(self, sizes: Dict[str, int]) -> AllocationPlan:
        """Allocate every operand of ``sizes`` (in iteration order)."""
        plan = AllocationPlan()
        for name, size in sizes.items():
            plan.add(self.allocate(name, size))
        return plan
