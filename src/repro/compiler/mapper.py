"""Workload-to-system mapping: the "customized compiler" of the paper (§IV-A).

``compile_workload`` lowers a workload specification onto a
:class:`~repro.system.design.AcceleratorSystemDesign`:

1. deterministic int8 operand data and the numpy oracle result are produced;
2. operands are packed into their blocked data layouts and placed in the
   scratchpad by the :class:`~repro.compiler.allocator.MemoryAllocator`
   (choosing per-operand bank groups when addressing-mode switching is
   enabled);
3. the runtime configuration of every DataMaestro port — AGU bounds/strides,
   spatial strides, addressing mode, extension enables — is derived from the
   dataflow and the data layout, and also lowered to CSR writes;
4. any explicit data-manipulation pre-pass a disabled feature requires
   (software transpose, software im2col) is recorded with its cost;
5. the GeMM-core job, optional quantizer configuration, result read-back
   locations and expected outputs complete the
   :class:`~repro.compiler.programs.KernelProgram`.

The mapping implemented here is the output-stationary dataflow of Fig. 3:
``for m2 / for n2 / for k2`` with an ``Mu × Nu × Ku`` spatial tile, and the
6-D implicit-im2col walk for convolutions.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..accelerators.gemm_core import GemmJob
from ..accelerators.quantizer import QuantizationConfig, rescale_tile
from ..core.csr import encode_runtime_config
from ..core.params import FeatureSet, StreamerRuntimeConfig
from ..memory.subsystem import MemorySubsystem
from ..utils.packing import ceil_div
from ..workloads.spec import ConvWorkload, GemmWorkload, Workload
from . import layout
from .allocator import MemoryAllocator
from .programs import KernelProgram, PrePass, ReadbackSpec, TensorLoad
from .reference import conv2d_reference, gemm_reference

# The system design lives in repro.system but only as plain data; importing
# it here does not create a dependency cycle (repro.system.system imports
# compiler.programs, not this module).
from ..system.design import AcceleratorSystemDesign


# ----------------------------------------------------------------------
# Deterministic operand generation.
# ----------------------------------------------------------------------
def _workload_rng(workload: Workload, seed: int) -> np.random.Generator:
    digest = zlib.crc32(workload.name.encode("utf-8"))
    return np.random.default_rng((digest ^ (seed * 0x9E3779B1)) & 0xFFFFFFFF)


def _random_int8(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    return rng.integers(-64, 64, size=shape, dtype=np.int64).astype(np.int8)


def _random_bias(rng: np.random.Generator, size: int) -> np.ndarray:
    return rng.integers(-512, 512, size=size, dtype=np.int64).astype(np.int32)


def _quantization_for(expected: np.ndarray) -> QuantizationConfig:
    """Pick a shift so the rescaled output spans (but fits) the int8 range."""
    max_abs = int(np.max(np.abs(expected))) if expected.size else 0
    shift = 0
    while (max_abs >> shift) > 127:
        shift += 1
    return QuantizationConfig(multiplier=1, shift=shift, zero_point=0)


# ----------------------------------------------------------------------
# Shared helpers.
# ----------------------------------------------------------------------
def _acc_spatial_strides(system: AcceleratorSystemDesign, port: str) -> Tuple[int, ...]:
    """Spatial strides giving channel ``ch`` the byte range ``[8ch, 8ch+8)``."""
    design = system.streamer(port)
    width = design.bank_width_bytes
    strides: List[int] = []
    running = width
    for bound in design.spatial_bounds:
        strides.append(running)
        running *= bound
    return tuple(strides)


def _encode_all(
    system: AcceleratorSystemDesign,
    configs: Dict[str, StreamerRuntimeConfig],
) -> Dict[str, List[Tuple[int, int]]]:
    options = list(system.group_size_options())
    return {
        port: encode_runtime_config(system.streamer(port), runtime, options)
        for port, runtime in configs.items()
    }


def _prepass_cycles(word_accesses: int, system: AcceleratorSystemDesign) -> int:
    """Cycles of an explicit DMA pre-pass moving ``word_accesses`` words.

    The DMA is modelled as sustaining ``dma_words_per_cycle`` word transfers
    per cycle, with read and write of the same word counted as one transfer
    (the DMA pipeline overlaps them).
    """
    return ceil_div(word_accesses, 2 * system.dma_words_per_cycle)


# ----------------------------------------------------------------------
# GeMM / transposed-GeMM compilation.
# ----------------------------------------------------------------------
def compile_gemm(
    workload: GemmWorkload,
    system: AcceleratorSystemDesign,
    features: FeatureSet,
    seed: int = 0,
) -> KernelProgram:
    """Lower a (transposed-)GeMM workload onto the evaluation system."""
    mu, nu, ku = system.gemm_mu, system.gemm_nu, system.gemm_ku
    word = system.memory.bank_width_bytes
    tiles_m, tiles_n, tiles_k = workload.tile_counts(mu, nu, ku)
    tile_a = mu * ku
    tile_b = ku * nu
    tile_acc = mu * nu * 4
    tile_e = mu * nu

    rng = _workload_rng(workload, seed)
    a = _random_int8(rng, (workload.m, workload.k))
    b = _random_int8(rng, (workload.k, workload.n))
    bias = _random_bias(rng, workload.n) if workload.with_bias else None
    expected_d = gemm_reference(a, b, bias)

    use_transposer = workload.transposed_a and features.transposer
    transpose_prepass = workload.transposed_a and not features.transposer
    use_broadcaster = workload.with_bias and features.broadcaster

    # ------------------------------------------------------------------
    # Operand byte images and sizes.
    # ------------------------------------------------------------------
    if use_transposer:
        a_image = layout.pack_gemm_a_transposed(a, mu, ku)
    else:
        a_image = layout.pack_gemm_a(a, mu, ku)
    b_image = layout.pack_gemm_b(b, ku, nu)
    sizes: Dict[str, int] = {}
    if workload.with_bias:
        if use_broadcaster:
            c_image = layout.pack_bias_rows(bias, nu)
        else:
            c_image = layout.pack_bias_full(
                bias, tiles_m * mu, workload.n, mu, nu
            )
        sizes["C"] = int(c_image.size)
    else:
        c_image = None
    sizes["A"] = int(a_image.size)
    sizes["B"] = int(b_image.size)
    if workload.quantize:
        sizes["E"] = tiles_m * tiles_n * tile_e
    else:
        sizes["D"] = tiles_m * tiles_n * tile_acc

    allocator = MemoryAllocator(system.memory, features.addressing_mode_switching)
    # Allocate the largest regions first so multi-group operands always find
    # a fresh run of bank groups.
    plan = allocator.plan(
        {name: sizes[name] for name in sorted(sizes, key=sizes.get, reverse=True)}
    )

    # ------------------------------------------------------------------
    # Streamer runtime configurations.
    # ------------------------------------------------------------------
    configs: Dict[str, StreamerRuntimeConfig] = {}

    if use_transposer:
        a_strides = (tiles_m * tile_a, 0, tile_a)
    else:
        a_strides = (tile_a, 0, tiles_k * tile_a)
    a_ext_enables = (True,) if use_transposer else (False,)
    a_ext_params = (
        (
            (
                "transposer",
                (("cols", mu), ("element_bytes", 1), ("rows", ku)),
            ),
        )
        if use_transposer
        else ()
    )
    configs["A"] = StreamerRuntimeConfig(
        base_address=plan["A"].base_address,
        temporal_bounds=(tiles_k, tiles_n, tiles_m),
        temporal_strides=a_strides,
        spatial_strides=(ku,),
        bank_group_size=plan["A"].group_size,
        extension_enables=a_ext_enables,
        extension_params=a_ext_params,
        label=f"{workload.name}.A",
    )

    configs["B"] = StreamerRuntimeConfig(
        base_address=plan["B"].base_address,
        temporal_bounds=(tiles_k, tiles_n, tiles_m),
        temporal_strides=(tiles_n * tile_b, tile_b, 0),
        spatial_strides=(nu,),
        bank_group_size=plan["B"].group_size,
        label=f"{workload.name}.B",
    )

    if workload.with_bias:
        c_spatial = _acc_spatial_strides(system, "C")
        if use_broadcaster:
            c_bounds = (tiles_n, tiles_m)
            c_strides = (nu * 4, 0)
            active = (nu * 4) // word
            c_ext_enables = (True,)
            c_ext_params = (("broadcaster", (("factor", mu),)),)
        else:
            c_bounds = (tiles_n, tiles_m)
            c_strides = (tile_acc, tiles_n * tile_acc)
            active = None
            c_ext_enables = (False,)
            c_ext_params = ()
        configs["C"] = StreamerRuntimeConfig(
            base_address=plan["C"].base_address,
            temporal_bounds=c_bounds,
            temporal_strides=c_strides,
            spatial_strides=c_spatial,
            bank_group_size=plan["C"].group_size,
            active_channels=active,
            extension_enables=c_ext_enables,
            extension_params=c_ext_params,
            label=f"{workload.name}.C",
        )

    if workload.quantize:
        configs["E"] = StreamerRuntimeConfig(
            base_address=plan["E"].base_address,
            temporal_bounds=(tiles_n, tiles_m),
            temporal_strides=(tile_e, tiles_n * tile_e),
            spatial_strides=(word,),
            bank_group_size=plan["E"].group_size,
            label=f"{workload.name}.E",
        )
    else:
        configs["D"] = StreamerRuntimeConfig(
            base_address=plan["D"].base_address,
            temporal_bounds=(tiles_n, tiles_m),
            temporal_strides=(tile_acc, tiles_n * tile_acc),
            spatial_strides=_acc_spatial_strides(system, "D"),
            bank_group_size=plan["D"].group_size,
            label=f"{workload.name}.D",
        )

    # ------------------------------------------------------------------
    # Tensor loads, pre-passes, readbacks, oracle.
    # ------------------------------------------------------------------
    loads = [
        TensorLoad("A", plan["A"].base_address, a_image, plan["A"].group_size),
        TensorLoad("B", plan["B"].base_address, b_image, plan["B"].group_size),
    ]
    if c_image is not None:
        loads.append(
            TensorLoad("C", plan["C"].base_address, c_image, plan["C"].group_size)
        )

    prepasses: List[PrePass] = []
    if transpose_prepass:
        a_words = int(a_image.size) // word
        prepasses.append(
            PrePass(
                name="software_transpose_A",
                word_reads=a_words,
                word_writes=a_words,
                cycles=_prepass_cycles(2 * a_words, system),
            )
        )

    expected_outputs: Dict[str, np.ndarray] = {}
    readbacks: Dict[str, ReadbackSpec] = {}
    quant_config: Optional[QuantizationConfig] = None
    if workload.quantize:
        quant_config = _quantization_for(expected_d)
        expected_outputs["E"] = rescale_tile(expected_d, quant_config)
        readbacks["E"] = ReadbackSpec(
            "E", plan["E"].base_address, sizes["E"], plan["E"].group_size
        )
    else:
        expected_outputs["D"] = expected_d
        readbacks["D"] = ReadbackSpec(
            "D", plan["D"].base_address, sizes["D"], plan["D"].group_size
        )

    job = GemmJob(
        tiles_m=tiles_m,
        tiles_n=tiles_n,
        tiles_k=tiles_k,
        use_init_stream=workload.with_bias,
    )
    metadata = {
        "kind": "gemm",
        "rows": workload.m,
        "cols": workload.n,
        "mu": mu,
        "nu": nu,
        "transposed_a": workload.transposed_a,
        "use_transposer": use_transposer,
        "use_broadcaster": use_broadcaster,
        "allocation": {name: plan[name].base_address for name in plan.regions},
    }
    return KernelProgram(
        workload=workload,
        features=features,
        job=job,
        streamer_configs=configs,
        csr_writes=_encode_all(system, configs),
        tensor_loads=loads,
        prepasses=prepasses,
        quant_config=quant_config,
        readbacks=readbacks,
        expected_outputs=expected_outputs,
        metadata=metadata,
    )


# ----------------------------------------------------------------------
# Convolution compilation (implicit im2col dataflow).
# ----------------------------------------------------------------------
def compile_conv(
    workload: ConvWorkload,
    system: AcceleratorSystemDesign,
    features: FeatureSet,
    seed: int = 0,
) -> KernelProgram:
    """Lower a 2-D convolution onto the evaluation system."""
    mu, nu, ku = system.gemm_mu, system.gemm_nu, system.gemm_ku
    word = system.memory.bank_width_bytes
    tile_b = ku * nu
    tile_acc = mu * nu * 4
    tile_e = mu * nu

    out_h, out_w = workload.out_height, workload.out_width
    tiles_x = ceil_div(out_w, mu)
    tiles_n = ceil_div(workload.out_channels, nu)
    tiles_c = ceil_div(workload.in_channels, ku)
    tiles_k = workload.kernel_h * workload.kernel_w * tiles_c
    tiles_m = out_h * tiles_x

    rng = _workload_rng(workload, seed)
    feature_map = _random_int8(
        rng, (workload.in_height, workload.in_width, workload.in_channels)
    )
    weights = _random_int8(
        rng,
        (
            workload.kernel_h,
            workload.kernel_w,
            workload.in_channels,
            workload.out_channels,
        ),
    )
    bias = _random_bias(rng, workload.out_channels) if workload.with_bias else None
    expected_o = conv2d_reference(
        feature_map, weights, bias, stride=workload.stride, padding=workload.padding
    )

    use_broadcaster = workload.with_bias and features.broadcaster

    # ------------------------------------------------------------------
    # Input feature map, spatially padded and widened to cover the padded
    # output tile grid (extra columns compute throw-away outputs).
    # ------------------------------------------------------------------
    padded_h = workload.in_height + 2 * workload.padding
    logical_w = workload.in_width + 2 * workload.padding
    needed_w = (tiles_x * mu - 1) * workload.stride + workload.kernel_w
    stored_w = max(logical_w, needed_w)
    staged = np.zeros((padded_h, stored_w, workload.in_channels), dtype=np.int8)
    staged[
        workload.padding : workload.padding + workload.in_height,
        workload.padding : workload.padding + workload.in_width,
        :,
    ] = feature_map
    a_image, (in_h, in_w, in_c) = layout.pack_conv_input(staged, ku)
    b_image = layout.pack_conv_weights(weights, ku, nu)

    sizes: Dict[str, int] = {"A": int(a_image.size), "B": int(b_image.size)}
    if workload.with_bias:
        if use_broadcaster:
            c_image = layout.pack_bias_rows(bias, nu)
        else:
            c_image = layout.pack_bias_full(
                bias, tiles_m * mu, workload.out_channels, mu, nu
            )
        sizes["C"] = int(c_image.size)
    else:
        c_image = None
    if workload.quantize:
        sizes["E"] = tiles_m * tiles_n * tile_e
    else:
        sizes["D"] = tiles_m * tiles_n * tile_acc

    allocator = MemoryAllocator(system.memory, features.addressing_mode_switching)
    plan = allocator.plan(
        {name: sizes[name] for name in sorted(sizes, key=sizes.get, reverse=True)}
    )

    # ------------------------------------------------------------------
    # Streamer runtime configurations.
    # ------------------------------------------------------------------
    stride = workload.stride
    configs: Dict[str, StreamerRuntimeConfig] = {}

    # Input walk: (c2, fx, fy, n2, x2, y), innermost first.
    configs["A"] = StreamerRuntimeConfig(
        base_address=plan["A"].base_address,
        temporal_bounds=(
            tiles_c,
            workload.kernel_w,
            workload.kernel_h,
            tiles_n,
            tiles_x,
            out_h,
        ),
        temporal_strides=(
            in_h * in_w * ku,
            ku,
            in_w * ku,
            0,
            mu * stride * ku,
            in_w * stride * ku,
        ),
        spatial_strides=(stride * ku,),
        bank_group_size=plan["A"].group_size,
        extension_enables=(False,),
        label=f"{workload.name}.A",
    )

    # Weight walk, matching the same reduction order.
    configs["B"] = StreamerRuntimeConfig(
        base_address=plan["B"].base_address,
        temporal_bounds=(
            tiles_c,
            workload.kernel_w,
            workload.kernel_h,
            tiles_n,
            tiles_x,
            out_h,
        ),
        temporal_strides=(
            tiles_n * tile_b,
            tiles_c * tiles_n * tile_b,
            workload.kernel_w * tiles_c * tiles_n * tile_b,
            tile_b,
            0,
            0,
        ),
        spatial_strides=(nu,),
        bank_group_size=plan["B"].group_size,
        label=f"{workload.name}.B",
    )

    if workload.with_bias:
        c_spatial = _acc_spatial_strides(system, "C")
        if use_broadcaster:
            c_bounds = (tiles_n, tiles_x, out_h)
            c_strides = (nu * 4, 0, 0)
            active = (nu * 4) // word
            c_ext_enables = (True,)
            c_ext_params = (("broadcaster", (("factor", mu),)),)
        else:
            c_bounds = (tiles_n, tiles_x, out_h)
            c_strides = (tile_acc, tiles_n * tile_acc, tiles_x * tiles_n * tile_acc)
            active = None
            c_ext_enables = (False,)
            c_ext_params = ()
        configs["C"] = StreamerRuntimeConfig(
            base_address=plan["C"].base_address,
            temporal_bounds=c_bounds,
            temporal_strides=c_strides,
            spatial_strides=c_spatial,
            bank_group_size=plan["C"].group_size,
            active_channels=active,
            extension_enables=c_ext_enables,
            extension_params=c_ext_params,
            label=f"{workload.name}.C",
        )

    if workload.quantize:
        configs["E"] = StreamerRuntimeConfig(
            base_address=plan["E"].base_address,
            temporal_bounds=(tiles_n, tiles_x, out_h),
            temporal_strides=(tile_e, tiles_n * tile_e, tiles_x * tiles_n * tile_e),
            spatial_strides=(word,),
            bank_group_size=plan["E"].group_size,
            label=f"{workload.name}.E",
        )
    else:
        configs["D"] = StreamerRuntimeConfig(
            base_address=plan["D"].base_address,
            temporal_bounds=(tiles_n, tiles_x, out_h),
            temporal_strides=(
                tile_acc,
                tiles_n * tile_acc,
                tiles_x * tiles_n * tile_acc,
            ),
            spatial_strides=_acc_spatial_strides(system, "D"),
            bank_group_size=plan["D"].group_size,
            label=f"{workload.name}.D",
        )

    # ------------------------------------------------------------------
    # Tensor loads, pre-passes, readbacks, oracle.
    # ------------------------------------------------------------------
    loads = [
        TensorLoad("A", plan["A"].base_address, a_image, plan["A"].group_size),
        TensorLoad("B", plan["B"].base_address, b_image, plan["B"].group_size),
    ]
    if c_image is not None:
        loads.append(
            TensorLoad("C", plan["C"].base_address, c_image, plan["C"].group_size)
        )

    prepasses: List[PrePass] = []
    needs_explicit_im2col = not features.implicit_im2col and not (
        workload.is_pointwise and workload.stride == 1
    )
    if needs_explicit_im2col:
        im2col_words = (tiles_m * mu) * (tiles_k * ku) // word
        prepasses.append(
            PrePass(
                name="software_im2col",
                word_reads=im2col_words,
                word_writes=im2col_words,
                cycles=_prepass_cycles(2 * im2col_words, system),
            )
        )

    expected_outputs: Dict[str, np.ndarray] = {}
    readbacks: Dict[str, ReadbackSpec] = {}
    quant_config: Optional[QuantizationConfig] = None
    if workload.quantize:
        quant_config = _quantization_for(expected_o)
        expected_outputs["E"] = rescale_tile(
            expected_o.reshape(-1, workload.out_channels), quant_config
        ).reshape(expected_o.shape)
        readbacks["E"] = ReadbackSpec(
            "E", plan["E"].base_address, sizes["E"], plan["E"].group_size
        )
    else:
        expected_outputs["D"] = expected_o
        readbacks["D"] = ReadbackSpec(
            "D", plan["D"].base_address, sizes["D"], plan["D"].group_size
        )

    job = GemmJob(
        tiles_m=tiles_m,
        tiles_n=tiles_n,
        tiles_k=tiles_k,
        use_init_stream=workload.with_bias,
    )
    metadata = {
        "kind": "conv",
        "out_height": out_h,
        "out_width": out_w,
        "out_channels": workload.out_channels,
        "mu": mu,
        "nu": nu,
        "use_broadcaster": use_broadcaster,
        "explicit_im2col": needs_explicit_im2col,
        "allocation": {name: plan[name].base_address for name in plan.regions},
    }
    return KernelProgram(
        workload=workload,
        features=features,
        job=job,
        streamer_configs=configs,
        csr_writes=_encode_all(system, configs),
        tensor_loads=loads,
        prepasses=prepasses,
        quant_config=quant_config,
        readbacks=readbacks,
        expected_outputs=expected_outputs,
        metadata=metadata,
    )


# ----------------------------------------------------------------------
# Dispatch + result extraction.
# ----------------------------------------------------------------------
def compile_workload(
    workload: Workload,
    system: AcceleratorSystemDesign,
    features: Optional[FeatureSet] = None,
    seed: int = 0,
) -> KernelProgram:
    """Lower any supported workload onto ``system``."""
    features = features or FeatureSet.all_enabled()
    if isinstance(workload, GemmWorkload):
        return compile_gemm(workload, system, features, seed)
    if isinstance(workload, ConvWorkload):
        return compile_conv(workload, system, features, seed)
    raise TypeError(f"unsupported workload type {type(workload)!r}")


def extract_outputs(
    program: KernelProgram, memory: MemorySubsystem
) -> Dict[str, np.ndarray]:
    """Read back and unpack the program's outputs from the scratchpad."""
    outputs: Dict[str, np.ndarray] = {}
    meta = program.metadata
    for name, readback in program.readbacks.items():
        raw = memory.scratchpad.backdoor_read(
            readback.base_address, readback.size_bytes, readback.group_size
        )
        if meta.get("kind") == "gemm":
            rows, cols = int(meta["rows"]), int(meta["cols"])
            mu, nu = int(meta["mu"]), int(meta["nu"])
            if name == "D":
                outputs[name] = layout.unpack_acc_tiles(raw, rows, cols, mu, nu)
            else:
                outputs[name] = layout.unpack_int8_tiles(raw, rows, cols, mu, nu)
        else:
            out_h = int(meta["out_height"])
            out_w = int(meta["out_width"])
            out_c = int(meta["out_channels"])
            mu, nu = int(meta["mu"]), int(meta["nu"])
            if name == "D":
                outputs[name] = layout.unpack_conv_output(raw, out_h, out_w, out_c, mu, nu)
            else:
                outputs[name] = layout.unpack_conv_output_int8(
                    raw, out_h, out_w, out_c, mu, nu
                )
    return outputs
