"""Numpy reference (oracle) implementations of the accelerator kernels.

The cycle-level system moves real int8/int32 data, so every simulation can be
checked end-to-end against these straightforward numpy implementations.  They
are also used by the compiler to produce the ``expected_outputs`` recorded in
each :class:`~repro.compiler.programs.KernelProgram`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def gemm_reference(
    a: np.ndarray,
    b: np.ndarray,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``D[M, N] = A[M, K] @ B[K, N] (+ bias[N])`` with int32 accumulation."""
    a = np.asarray(a, dtype=np.int8).astype(np.int32)
    b = np.asarray(b, dtype=np.int8).astype(np.int32)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("GeMM operands must be 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: A is {a.shape}, B is {b.shape}"
        )
    result = a @ b
    if bias is not None:
        bias = np.asarray(bias, dtype=np.int32).reshape(-1)
        if bias.size != b.shape[1]:
            raise ValueError(
                f"bias has {bias.size} entries, expected {b.shape[1]}"
            )
        result = result + bias[np.newaxis, :]
    return result.astype(np.int32)


def conv2d_reference(
    feature_map: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Direct 2-D convolution ``O[y, x, k]`` with int32 accumulation.

    ``feature_map`` has shape ``[H, W, C]``, ``weights`` ``[FH, FW, C, K]``.
    """
    feature_map = np.asarray(feature_map, dtype=np.int8).astype(np.int32)
    weights = np.asarray(weights, dtype=np.int8).astype(np.int32)
    if feature_map.ndim != 3:
        raise ValueError("feature map must have shape [H, W, C]")
    if weights.ndim != 4:
        raise ValueError("weights must have shape [FH, FW, C, K]")
    if feature_map.shape[2] != weights.shape[2]:
        raise ValueError(
            f"channel mismatch: input has {feature_map.shape[2]}, "
            f"weights have {weights.shape[2]}"
        )
    if stride <= 0:
        raise ValueError("stride must be positive")
    if padding < 0:
        raise ValueError("padding must be non-negative")

    height, width, channels = feature_map.shape
    kernel_h, kernel_w, _, out_channels = weights.shape
    padded = np.pad(
        feature_map,
        ((padding, padding), (padding, padding), (0, 0)),
        mode="constant",
    )
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("convolution produces an empty output")

    output = np.zeros((out_h, out_w, out_channels), dtype=np.int64)
    for fy in range(kernel_h):
        for fx in range(kernel_w):
            window = padded[
                fy : fy + out_h * stride : stride,
                fx : fx + out_w * stride : stride,
                :,
            ]
            output += np.tensordot(window, weights[fy, fx], axes=([2], [0]))
    if bias is not None:
        bias = np.asarray(bias, dtype=np.int64).reshape(-1)
        if bias.size != out_channels:
            raise ValueError(f"bias has {bias.size} entries, expected {out_channels}")
        output = output + bias[np.newaxis, np.newaxis, :]
    return output.astype(np.int32)


def im2col_reference(
    feature_map: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Explicit im2col: returns the unrolled matrix ``[OY*OX, FH*FW*C]``.

    This is the data-manipulation pass the implicit-im2col feature makes
    unnecessary; the reference is used to validate the implicit access
    pattern and to size the explicit pre-pass cost model.
    """
    feature_map = np.asarray(feature_map)
    height, width, channels = feature_map.shape
    padded = np.pad(
        feature_map,
        ((padding, padding), (padding, padding), (0, 0)),
        mode="constant",
    )
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    rows = []
    for y in range(out_h):
        for x in range(out_w):
            patch = padded[
                y * stride : y * stride + kernel_h,
                x * stride : x * stride + kernel_w,
                :,
            ]
            rows.append(patch.reshape(-1))
    return np.stack(rows, axis=0)
