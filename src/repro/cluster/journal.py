"""Durable job journal: the cluster's crash-safe backlog.

The journal makes the sharded service's queue *durable*: every accepted
job is recorded before it is dispatched, every completion is recorded when
its outcome settles, and a restarted daemon replays the difference — jobs
submitted but never completed are resubmitted, jobs already completed are
served from the journal (or the shared result cache) without touching a
worker.

The format reuses the append + truncated-tail-repair idiom proven by
:class:`repro.explore.journal.RunJournal`: an append-only JSON-lines file
whose first line is a header, where a crash mid-append at worst truncates
the final line.  :meth:`JobJournal.resume` tolerates that partial line and
atomically rewrites the file without it (temp file + ``os.replace``), so a
crash during the repair itself can never lose a record either.

Record types after the header line:

* ``{"type": "submitted", "key": <job hash>, "job": <base64 pickle>,
  "workload": ..., "backend": ...}`` — the pickled job rides along so a
  restart can rebuild and resubmit it without the original caller;
* ``{"type": "completed", "key": <job hash>}`` — plus an ``"outcome"``
  base64 pickle when the cluster runs cache-less (with a shared result
  cache the outcome is already durable there, and the journal stays slim).

Resume compacts: completed work whose outcome is durable elsewhere is
dropped from the rewritten journal, so the file tracks the live backlog
instead of growing monotonically across restarts.  A journal written by a
different package version drops its pickled payloads (they may not
unpickle) and resubmits everything unfinished — safe, at worst wasteful.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from ..runtime.job import SimJob
from ..runtime.outcome import SimOutcome

__all__ = [
    "JOB_JOURNAL_FORMAT",
    "JobJournal",
    "JobJournalContents",
    "JobJournalError",
]

#: Journal format version; bump on incompatible record changes.
JOB_JOURNAL_FORMAT = 1


class JobJournalError(ValueError):
    """The journal file cannot be used (bad header, wrong format)."""


def _encode(obj: object) -> str:
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode(text: str) -> object:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


@dataclass
class JobJournalContents:
    """Parsed journal state: what was accepted, what finished."""

    header: Dict[str, object]
    #: job hash -> SimJob (``None`` when the pickle could not be decoded).
    submitted: Dict[str, Optional[SimJob]] = field(default_factory=dict)
    #: job hash -> journaled outcome (``None`` when durable in the cache).
    completed: Dict[str, Optional[SimOutcome]] = field(default_factory=dict)
    dropped_lines: int = 0
    undecodable_jobs: int = 0

    def unfinished(self) -> Dict[str, SimJob]:
        """Jobs accepted but never completed, ready for resubmission.

        Submissions whose pickled job failed to decode (foreign package
        version) are excluded — they are counted in ``undecodable_jobs``
        and cannot be replayed.
        """
        return {
            key: job
            for key, job in self.submitted.items()
            if key not in self.completed and job is not None
        }


class JobJournal:
    """Append-only JSONL record of cluster submissions and completions."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file() and self.path.stat().st_size > 0

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    @staticmethod
    def _header_record(header: Dict[str, object]) -> str:
        record = {"type": "header", "format": JOB_JOURNAL_FORMAT, **header}
        return json.dumps(record, sort_keys=True) + "\n"

    def start(self, header: Optional[Dict[str, object]] = None) -> None:
        """Begin a fresh journal (truncates any previous file)."""
        from .. import __version__

        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"package_version": __version__, **(header or {})}
        with self.path.open("w", encoding="utf-8") as handle:
            handle.write(self._header_record(payload))

    def record_submission(self, key: str, job: SimJob) -> None:
        """Journal one accepted job before it is dispatched to a shard."""
        record = {
            "type": "submitted",
            "key": key,
            "workload": job.workload.name,
            "backend": job.backend,
            "job": _encode(job),
        }
        self._append(record)

    def record_completion(
        self, key: str, outcome: Optional[SimOutcome] = None
    ) -> None:
        """Journal one settled job; ``outcome`` rides along when the
        cluster has no shared result cache to keep it durable."""
        record: Dict[str, object] = {"type": "completed", "key": key}
        if outcome is not None:
            record["outcome"] = _encode(outcome)
        self._append(record)

    def _append(self, record: Dict[str, object]) -> None:
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def load(self) -> JobJournalContents:
        """Parse the journal, tolerating a truncated/garbled trailing line."""
        if not self.exists():
            raise JobJournalError(f"journal {self.path} does not exist or is empty")
        lines = self.path.read_text(encoding="utf-8").splitlines()
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as error:
            raise JobJournalError(f"journal {self.path}: unreadable header") from error
        if not isinstance(header, dict) or header.get("type") != "header":
            raise JobJournalError(f"journal {self.path}: first line is not a header")
        if header.get("format") != JOB_JOURNAL_FORMAT:
            raise JobJournalError(
                f"journal {self.path}: format {header.get('format')!r} "
                f"!= {JOB_JOURNAL_FORMAT}"
            )
        from .. import __version__

        foreign_version = header.get("package_version") != __version__

        contents = JobJournalContents(header=header)
        for position, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                kind = record.get("type")
                if kind == "submitted":
                    key = str(record["key"])
                    job: Optional[SimJob] = None
                    if not foreign_version:
                        try:
                            decoded = _decode(str(record["job"]))
                            if isinstance(decoded, SimJob):
                                job = decoded
                        except Exception:  # noqa: BLE001 — stale pickle
                            job = None
                    if job is None:
                        contents.undecodable_jobs += 1
                    contents.submitted[key] = job
                elif kind == "completed":
                    key = str(record["key"])
                    outcome: Optional[SimOutcome] = None
                    if "outcome" in record and not foreign_version:
                        try:
                            decoded = _decode(str(record["outcome"]))
                            if isinstance(decoded, SimOutcome):
                                outcome = decoded
                        except Exception:  # noqa: BLE001 — stale pickle
                            outcome = None
                    contents.completed[key] = outcome
                else:
                    raise ValueError(f"unknown record type {kind!r}")
            except (ValueError, KeyError, TypeError):
                if position == len(lines):
                    # Interrupted mid-append: drop the partial final record.
                    contents.dropped_lines += 1
                    continue
                raise JobJournalError(
                    f"journal {self.path}: unreadable record on line {position}"
                )
        return contents

    def resume(self) -> JobJournalContents:
        """Load for a daemon restart: repair the tail, compact, return state.

        The rewritten journal keeps the header, every unfinished
        submission, and completed records that still carry their outcome
        (cache-less clusters).  Completed work durable in the result cache
        is compacted away.  The rewrite is atomic (temp + ``os.replace``),
        mirroring :meth:`repro.explore.journal.RunJournal._rewrite`.
        """
        contents = self.load()
        self._rewrite(contents)
        contents.dropped_lines = 0
        return contents

    def _rewrite(self, contents: JobJournalContents) -> None:
        from .. import __version__

        header = {
            key: value
            for key, value in contents.header.items()
            if key not in ("type", "format")
        }
        header["package_version"] = __version__
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{self.path.name}-", suffix=".tmp", dir=str(self.path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self._header_record(header))
                for key, job in contents.submitted.items():
                    if key in contents.completed or job is None:
                        continue
                    handle.write(
                        json.dumps(
                            {
                                "type": "submitted",
                                "key": key,
                                "workload": job.workload.name,
                                "backend": job.backend,
                                "job": _encode(job),
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
                for key, outcome in contents.completed.items():
                    if outcome is None:
                        continue  # durable in the shared result cache
                    handle.write(
                        json.dumps(
                            {"type": "completed", "key": key, "outcome": _encode(outcome)},
                            sort_keys=True,
                        )
                        + "\n"
                    )
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
