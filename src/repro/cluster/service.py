"""The sharded simulation cluster: routing, coalescing, durability.

:class:`ClusterService` is the multi-process sibling of the single-process
:class:`~repro.serve.service.SimulationService`.  It keeps the same outward
contract — submit a :class:`~repro.runtime.job.SimJob`, get a ticket whose
future resolves to one :class:`~repro.runtime.outcome.SimOutcome`; identical
in-flight submissions coalesce; caches are probed before any work is
scheduled — but executes on worker *processes*, so N shards run N
simulations with N private GILs and throughput finally scales with cores.

How one submission flows:

1. **Coalesce** — the job hash is looked up in the cluster-wide in-flight
   map; a duplicate rides the existing future.
2. **Probe** — journal-replayed completions, then the shared on-disk
   :class:`~repro.runtime.cache.ResultCache`; a hit resolves instantly.
3. **Journal** — with a :class:`~repro.cluster.journal.JobJournal`
   configured, the accepted job is recorded *before* dispatch, so a crash
   between acceptance and completion resubmits it on restart.
4. **Route** — :class:`~repro.cluster.router.ShardRouter` hash-partitions
   by job hash: identical jobs always share a shard, keeping the shard's
   own in-flight coalescing exactly correct.
5. **Dispatch** — the job travels to the shard worker over the
   length-prefixed :mod:`~repro.cluster.protocol` channel; the worker's
   embedded :class:`~repro.serve.service.SimulationService` executes it and
   sends the outcome (or the original exception) back.
6. **Settle** — the future resolves, the completion is journaled, and every
   coalesced waiter observes the same outcome object.

Failures are the :class:`~repro.cluster.supervisor.Supervisor`'s job: a
crashed or hung shard is killed and restarted with capped exponential
backoff, and its in-flight jobs are redispatched onto the replacement —
waiters keep their original future and never observe the crash.  A shard
that crash-loops without doing work fails its jobs with
:class:`~repro.cluster.supervisor.ShardFailedError` instead of hanging.

``ClusterService`` quacks like :class:`~repro.serve.client.ServiceClient`
(``submit`` / ``run`` / ``stats`` / ``snapshot`` / ``close``), so
``Simulator(service=...)``, ``BatchRunner(service=...)`` and
``ExplorationEngine(service=...)`` work unchanged on top of it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..obs.metrics import MetricsRegistry
from ..obs.trace import get_tracer
from ..runtime.cache import ResultCache
from ..runtime.job import SimJob
from ..runtime.outcome import SimOutcome
from ..serve.service import ServiceClosedError
from .journal import JobJournal
from .protocol import MSG_ERROR, MSG_RESULT
from .router import ShardRouter
from .supervisor import ShardFailedError, ShardHandle, Supervisor, SupervisorConfig

__all__ = [
    "ClusterConfig",
    "ClusterService",
    "ClusterStats",
    "ClusterTicket",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one :class:`ClusterService`.

    Parameters
    ----------
    shards:
        Worker processes; throughput scales with this up to the core count.
    worker_threads:
        Executor threads *inside* each shard's embedded service.  ``1`` is
        right for CPU-bound simulation (the shard process is the unit of
        parallelism); raise it only for I/O-heavy custom backends.
    max_backlog:
        Per-shard admission bound of the embedded service.
    progress_interval:
        Cycle cadence of the engines' cooperative yield points in workers.
    heartbeat_interval / heartbeat_timeout / backoff_base / backoff_cap /
    max_restarts / ready_timeout:
        Supervision knobs, see
        :class:`~repro.cluster.supervisor.SupervisorConfig`.
    shutdown_timeout:
        Seconds :meth:`ClusterService.close` waits for draining shards
        before failing leftover futures.
    """

    shards: int = 2
    worker_threads: int = 1
    max_backlog: int = 1024
    progress_interval: int = 250_000
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 15.0
    backoff_base: float = 0.1
    backoff_cap: float = 5.0
    max_restarts: int = 5
    ready_timeout: float = 30.0
    shutdown_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.worker_threads <= 0:
            raise ValueError("worker_threads must be positive")
        if self.max_backlog <= 0:
            raise ValueError("max_backlog must be positive")
        if self.shutdown_timeout <= 0:
            raise ValueError("shutdown_timeout must be positive")

    def supervisor_config(self) -> SupervisorConfig:
        return SupervisorConfig(
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
            max_restarts=self.max_restarts,
            ready_timeout=self.ready_timeout,
        )


class ClusterStats:
    """Monotonic counters of one cluster instance.

    Backed by a per-cluster :class:`~repro.obs.metrics.MetricsRegistry`
    exactly like the thread service's ``ServiceStats``: reads return plain
    ints, ``stats.executed += 1`` routes the delta into the backing
    counter, and monotonicity is enforced (a decrease raises
    ``ValueError``).
    """

    _COUNTERS = {
        "submitted": ("repro_submitted_total", "Jobs submitted to the cluster."),
        "coalesced": (
            "repro_coalesced_total",
            "Submissions that rode an identical in-flight job.",
        ),
        # Parent-side result-cache hits (never dispatched).
        "cache_hits": (
            "repro_cache_hits_total",
            "Submissions resolved from the parent-side result cache.",
        ),
        # Served from the journal's replayed completions (cache-less mode).
        "journal_hits": (
            "repro_journal_hits_total",
            "Submissions served from journal-replayed completions.",
        ),
        # Jobs a shard actually simulated.
        "executed": ("repro_executed_total", "Jobs a shard actually simulated."),
        # Jobs a shard resolved from the shared cache (raced writers etc.).
        "shard_cache_hits": (
            "repro_shard_cache_hits_total",
            "Jobs a shard resolved from the shared cache.",
        ),
        "failed": ("repro_failed_total", "Jobs whose shard raised."),
        # In-flight jobs redispatched after a shard crash.
        "requeued": (
            "repro_requeued_total",
            "In-flight jobs redispatched after a shard crash.",
        ),
        # Unfinished journal entries resubmitted at startup.
        "recovered": (
            "repro_journal_recovered_total",
            "Unfinished journal entries replayed at startup.",
        ),
    }

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            attr: self.registry.counter(name, help)
            for attr, (name, help) in self._COUNTERS.items()
        }

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters and name in counters:
            return counters[name].value
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            counters[name].inc(value - counters[name].value)
            return
        object.__setattr__(self, name, value)

    @property
    def coalescing_hit_rate(self) -> float:
        return self.coalesced / self.submitted if self.submitted else 0.0

    @property
    def cache_hit_rate(self) -> float:
        hits = self.cache_hits + self.journal_hits
        return hits / self.submitted if self.submitted else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "journal_hits": self.journal_hits,
            "executed": self.executed,
            "shard_cache_hits": self.shard_cache_hits,
            "failed": self.failed,
            "requeued": self.requeued,
            "recovered": self.recovered,
            "coalescing_hit_rate": self.coalescing_hit_rate,
            "cache_hit_rate": self.cache_hit_rate,
        }


@dataclass
class ClusterTicket:
    """Receipt for one submission; :meth:`result` blocks for the outcome."""

    job: SimJob
    job_hash: str
    client: str
    #: This submission attached to an identical in-flight job.
    coalesced: bool
    #: Resolved instantly from the cache or the journal (never dispatched).
    cache_hit: bool
    #: Which shard owns the job (``-1`` for instant resolutions).
    shard: int
    _future: "Future[SimOutcome]"

    def result(self, timeout: Optional[float] = None) -> SimOutcome:
        """Block until the outcome is available (re-raises shard errors)."""
        return self._future.result(timeout)

    def done(self) -> bool:
        return self._future.done()

    def add_done_callback(self, callback) -> None:
        """Invoke ``callback(ticket)`` when the outcome settles.

        Runs on the completing thread (or immediately when already done) —
        :class:`~repro.serve.client.ClientTicket` API parity, used by the
        replay harness to timestamp completions.
        """
        self._future.add_done_callback(lambda _future: callback(self))


@dataclass
class _ClusterEntry:
    """One unique in-flight job owned by the cluster."""

    job: SimJob
    key: str
    seq: int
    shard: int
    client: str
    future: "Future[SimOutcome]"
    waiters: int = 1
    submitted_at: float = 0.0


class ClusterService:
    """Multi-process sharded simulation service with supervision.

    Usable as a context manager::

        with ClusterService(cache_dir=path, config=ClusterConfig(shards=4)) as cluster:
            outcomes = cluster.run(jobs)

    Parameters
    ----------
    cache:
        A ready-made :class:`ResultCache`, or ``None``.
    cache_dir:
        Convenience alternative to ``cache``; all shards share this
        directory (their writes are atomic, see ``ResultCache.put``).
    config:
        Shard count and supervision tunables.
    journal:
        Path (or :class:`JobJournal`) enabling the durable backlog.  When
        the file already holds a previous run, the cluster resumes it:
        completed outcomes are served without re-execution and unfinished
        jobs are resubmitted in the background (``wait_idle`` to observe).
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        config: Optional[ClusterConfig] = None,
        journal: Optional[Union[str, Path, JobJournal]] = None,
    ) -> None:
        if cache is None and cache_dir is not None:
            cache = ResultCache(Path(cache_dir).expanduser())
        self.cache = cache
        self.config = config or ClusterConfig()
        self.stats = ClusterStats()
        #: The per-cluster metrics registry backing :attr:`stats`.
        self.metrics = self.stats.registry
        self.metrics.gauge(
            "repro_inflight",
            "Unique jobs between acceptance and settlement.",
            fn=self.inflight,
        )
        self.router = ShardRouter(self.config.shards)
        if journal is not None and not isinstance(journal, JobJournal):
            journal = JobJournal(Path(journal).expanduser())
        self.journal: Optional[JobJournal] = journal

        self._lock = threading.RLock()
        self._inflight: Dict[str, _ClusterEntry] = {}
        self._pending: Dict[int, _ClusterEntry] = {}  # seq -> entry
        self._completed_from_journal: Dict[str, SimOutcome] = {}
        self._handles: List[ShardHandle] = []
        self._dead_shards: Dict[int, str] = {}
        self._seq = 0
        self._closed = False

        self._supervisor = Supervisor(
            self.config.supervisor_config(),
            get_handle=self._get_handle,
            replace_handle=self._replace_handle,
            on_shard_lost=self._redispatch_shard,
            on_shard_failed=self._fail_shard,
        )
        self._start()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def _start(self) -> None:
        try:
            for index in range(self.config.shards):
                handle = self._make_handle(index)
                handle.start(self.config.ready_timeout)
                self._handles.append(handle)
        except BaseException:
            for handle in self._handles:
                handle.kill()
            raise
        self._supervisor.start(self.config.shards)
        if self.journal is not None:
            self._resume_journal()

    def _make_handle(self, index: int) -> ShardHandle:
        return ShardHandle(
            index,
            cache_dir=str(self.cache.root) if self.cache is not None else None,
            worker_threads=self.config.worker_threads,
            max_backlog=self.config.max_backlog,
            progress_interval=self.config.progress_interval,
            on_message=self._on_message,
            on_disconnect=self._supervisor.notify_disconnect,
        )

    def _get_handle(self, index: int) -> ShardHandle:
        with self._lock:
            return self._handles[index]

    def _replace_handle(self, index: int) -> ShardHandle:
        handle = self._make_handle(index)
        handle.start(self.config.ready_timeout)
        with self._lock:
            self._handles[index] = handle
        return handle

    def _resume_journal(self) -> None:
        assert self.journal is not None
        if not self.journal.exists():
            self.journal.start()
            return
        contents = self.journal.resume()
        with self._lock:
            self._completed_from_journal = {
                key: outcome
                for key, outcome in contents.completed.items()
                if outcome is not None
            }
        unfinished = contents.unfinished()
        for key, job in unfinished.items():
            # Already journaled (the compacted file retains them): skip the
            # duplicate submission record, keep everything else identical.
            self._submit(job, client="recovery", journal_submission=False)
        self.stats.recovered += len(unfinished)

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, drain: bool = True) -> None:
        """Shut the cluster down.

        ``drain=True`` (default): every dispatched job runs to completion
        on its shard and resolves its waiters before the processes exit.
        ``drain=False``: jobs still queued inside a shard's service are
        cancelled (waiters get :class:`ServiceClosedError`); jobs already
        executing finish and resolve normally.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._supervisor.stop()
        for handle in self._handles:
            handle.request_shutdown(drain)
        deadline = time.monotonic() + self.config.shutdown_timeout
        if drain:
            with self._lock:
                futures = [entry.future for entry in self._pending.values()]
            for future in futures:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    future.exception(timeout=remaining)
                except Exception:  # noqa: BLE001 — includes TimeoutError
                    pass
        for handle in self._handles:
            handle.join(max(0.5, deadline - time.monotonic()))
            if handle.channel is not None:
                handle.channel.close()
        self._fail_leftovers("cluster closed")

    def terminate(self) -> None:
        """Crash-stop: kill every shard, fail every waiter, journal nothing.

        The programmatic equivalent of the daemon dying — used by the
        crash-recovery tests and as the last-resort operator action.  The
        journal keeps its unfinished submissions, so a new
        :class:`ClusterService` on the same journal resumes the backlog.
        """
        with self._lock:
            self._closed = True
        self._supervisor.stop()
        for handle in self._handles:
            handle.closing = True
            handle.kill()
        self._fail_leftovers("cluster terminated")

    def _fail_leftovers(self, reason: str) -> None:
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
            self._inflight.clear()
        for entry in leftovers:
            if not entry.future.done():
                entry.future.set_exception(
                    ServiceClosedError(f"{reason} before job {entry.key[:12]} settled")
                )

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(
        self, job: SimJob, client_name: str = "anon", priority: int = 0
    ) -> ClusterTicket:
        """Submit one job; never blocks on simulation.

        ``priority`` is accepted for :class:`ServiceClient` API parity and
        currently ignored — shard dispatch is FIFO per shard.
        """
        del priority
        return self._submit(job, client=client_name, journal_submission=True)

    def _submit(
        self, job: SimJob, client: str, journal_submission: bool
    ) -> ClusterTicket:
        key = job.job_hash()
        with self._lock:
            if self._closed:
                raise ServiceClosedError("cluster is closed")

            tracer = get_tracer()
            entry = self._inflight.get(key)
            if entry is not None:
                entry.waiters += 1
                self.stats.submitted += 1
                self.stats.coalesced += 1
                if tracer is not None:
                    tracer.instant("coalesced", key, client=client)
                return ClusterTicket(job, key, client, True, False, entry.shard, entry.future)

            replayed = self._completed_from_journal.get(key)
            if replayed is not None:
                self.stats.submitted += 1
                self.stats.journal_hits += 1
                future: "Future[SimOutcome]" = Future()
                replayed.cache_hit = True
                future.set_result(replayed)
                if tracer is not None:
                    tracer.begin("job", key, client=client)
                    tracer.instant("journal_hit", key)
                    tracer.end("job", key, outcome="journal_hit")
                return ClusterTicket(job, key, client, False, True, -1, future)

            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    self.stats.submitted += 1
                    self.stats.cache_hits += 1
                    future = Future()
                    future.set_result(hit)
                    if tracer is not None:
                        tracer.begin("job", key, client=client)
                        tracer.instant("cache_hit", key)
                        tracer.end("job", key, outcome="cache_hit")
                    return ClusterTicket(job, key, client, False, True, -1, future)

            shard = self.router.shard_for(key)
            dead_reason = self._dead_shards.get(shard)
            if dead_reason is not None:
                raise ShardFailedError(dead_reason)

            self._seq += 1
            entry = _ClusterEntry(
                job=job,
                key=key,
                seq=self._seq,
                shard=shard,
                client=client,
                future=Future(),
                submitted_at=time.monotonic(),
            )
            if self.journal is not None and journal_submission:
                self.journal.record_submission(key, job)
            self._inflight[key] = entry
            self._pending[entry.seq] = entry
            self.stats.submitted += 1
            handle = self._handles[shard]
        # The send happens outside the lock (socket I/O); a failed send is
        # recovered by the supervisor's redispatch when the shard restarts.
        tracer = get_tracer()
        if tracer is not None:
            tracer.begin("job", key, client=client, workload=job.workload.name)
            tracer.instant("shard_routed", key, shard=shard)
            tracer.begin("dispatched", key, shard=shard)
        handle.dispatch(entry.seq, key, job)
        return ClusterTicket(job, key, client, False, False, shard, entry.future)

    def run(
        self,
        jobs: Sequence[SimJob],
        client_name: str = "anon",
        priority: int = 0,
    ) -> List[SimOutcome]:
        """Submit a batch and block for every outcome, in submission order.

        Duplicates within the batch coalesce; this is the entry point
        ``BatchRunner(service=...)`` / ``Simulator(service=...)`` use.
        """
        tickets = [
            self.submit(job, client_name=client_name, priority=priority)
            for job in jobs
        ]
        return [ticket.result() for ticket in tickets]

    # ------------------------------------------------------------------
    # Shard callbacks (reader threads + supervisor thread).
    # ------------------------------------------------------------------
    def _on_message(self, handle: ShardHandle, message: dict) -> None:
        kind = message.get("kind")
        if kind == MSG_RESULT:
            self._settle(message["seq"], outcome=message["outcome"])
        elif kind == MSG_ERROR:
            error = message.get("exception")
            if not isinstance(error, BaseException):
                error = RuntimeError(message.get("error", "shard error"))
            self._settle(message["seq"], error=error)
        # ready/pong/bye are handled by the handle and supervisor.

    def _settle(
        self,
        seq: int,
        outcome: Optional[SimOutcome] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            entry = self._pending.pop(seq, None)
            if entry is None:
                return  # stale frame from a killed incarnation
            self._inflight.pop(entry.key, None)
            if outcome is not None:
                if outcome.cache_hit:
                    self.stats.shard_cache_hits += 1
                else:
                    self.stats.executed += 1
                if self.journal is not None:
                    # The outcome only rides into the journal when no shared
                    # cache keeps it durable.
                    self.journal.record_completion(
                        entry.key, outcome if self.cache is None else None
                    )
                    if self.cache is None:
                        self._completed_from_journal[entry.key] = outcome
            else:
                self.stats.failed += 1
        tracer = get_tracer()
        if tracer is not None:
            tracer.maybe_end("dispatched", entry.key)
            tracer.end(
                "job",
                entry.key,
                outcome="finished" if outcome is not None else "failed",
                waiters=entry.waiters,
            )
        if outcome is not None:
            if not entry.future.done():
                entry.future.set_result(outcome)
        else:
            assert error is not None
            if not entry.future.done():
                entry.future.set_exception(error)

    def _redispatch_shard(self, index: int) -> None:
        """Requeue a dead incarnation's in-flight jobs onto its successor."""
        with self._lock:
            entries = [e for e in self._pending.values() if e.shard == index]
            handle = self._handles[index]
            self.stats.requeued += len(entries)
        tracer = get_tracer()
        for entry in sorted(entries, key=lambda e: e.seq):
            if tracer is not None:
                tracer.instant("requeued", entry.key, shard=index)
            handle.dispatch(entry.seq, entry.key, entry.job)

    def _fail_shard(self, index: int, reason: str) -> None:
        """Restart budget exhausted: fail the shard's waiters for good."""
        with self._lock:
            self._dead_shards[index] = reason
            entries = [e for e in self._pending.values() if e.shard == index]
            for entry in entries:
                self._pending.pop(entry.seq, None)
                self._inflight.pop(entry.key, None)
                self.stats.failed += 1
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(ShardFailedError(reason))

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def inflight(self) -> int:
        """Unique jobs somewhere between acceptance and settlement."""
        with self._lock:
            return len(self._inflight)

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until nothing is in flight; ``False`` on timeout.

        Primarily for observing journal recovery: the resubmitted backlog
        has no caller-held tickets, so idleness is the completion signal.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.inflight() == 0:
                return True
            time.sleep(0.02)
        return self.inflight() == 0

    @property
    def restarts(self) -> int:
        """Shard restarts performed by the supervisor so far."""
        return self._supervisor.restarts

    def stats_dict(self) -> Dict[str, object]:
        summary = self.stats.as_dict()
        summary["restarts"] = self.restarts
        return summary

    # ServiceClient API parity: callers treat stats() as a dict snapshot.
    def stats_snapshot(self) -> Dict[str, object]:
        return self.stats_dict()

    def snapshot(self, wait: float = 0.5) -> Dict[str, object]:
        """Cluster-wide ops snapshot, aggregated over per-shard services.

        Pings every live shard and waits up to ``wait`` seconds for fresh
        pongs, then merges: total queue depth, per-shard executed counts
        and the cluster's own counters.  Stale snapshots (a shard mid-
        restart) are used as-is rather than blocking the caller.
        """
        asked_at = time.monotonic()
        with self._lock:
            handles = list(self._handles)
        for position, handle in enumerate(handles):
            handle.ping(-(position + 1))
        deadline = asked_at + wait
        while time.monotonic() < deadline:
            if all(
                handle.last_snapshot is not None and handle.last_seen >= asked_at
                for handle in handles
                if handle.alive()
            ):
                break
            time.sleep(0.01)
        shards = []
        queue_depth = 0
        for handle in handles:
            snapshot = handle.last_snapshot
            if snapshot is not None:
                queue_depth += int(snapshot.get("queue_depth", 0))
            shards.append(
                {
                    "shard": handle.index,
                    "alive": handle.alive(),
                    "pid": handle.process.pid if handle.process else None,
                    "snapshot": snapshot,
                }
            )
        return {
            "shards": shards,
            "shard_count": len(handles),
            "queue_depth": queue_depth,
            "inflight": self.inflight(),
            "stats": self.stats_dict(),
            "journal": str(self.journal.path) if self.journal else None,
            "cache": self.cache.stats() if self.cache is not None else None,
        }

    def describe(self) -> Dict[str, object]:
        return {
            "config": {
                "shards": self.config.shards,
                "worker_threads": self.config.worker_threads,
                "max_backlog": self.config.max_backlog,
                "progress_interval": self.config.progress_interval,
            },
            "cache": self.cache.stats() if self.cache is not None else None,
            "journal": str(self.journal.path) if self.journal else None,
            "inflight": self.inflight(),
            "stats": self.stats_dict(),
        }
