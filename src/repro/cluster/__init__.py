"""Multi-process sharded simulation cluster.

The :mod:`repro.serve` service coalesces, caches and fair-queues — but one
process means one GIL, and compute-bound simulation throughput flatlines
however many threads it runs.  :mod:`repro.cluster` shards that same
service across worker *processes*:

* :class:`~repro.cluster.router.ShardRouter` hash-partitions jobs by their
  content hash, so identical jobs land on the same shard and per-shard
  in-flight coalescing stays exactly correct;
* each shard is a forked process running a private
  :class:`~repro.serve.service.SimulationService`
  (:mod:`~repro.cluster.worker`), speaking the length-prefixed message
  protocol of :mod:`~repro.cluster.protocol`;
* a :class:`~repro.cluster.supervisor.Supervisor` heartbeats every shard,
  restarts crashed or hung workers with capped exponential backoff, and
  requeues their in-flight jobs onto the replacement;
* an optional :class:`~repro.cluster.journal.JobJournal` makes the backlog
  durable: a restarted daemon resubmits unfinished jobs and serves
  completed ones without re-execution.

:class:`~repro.cluster.service.ClusterService` is the front door; it is
API-compatible with :class:`~repro.serve.client.ServiceClient`, so
``Simulator(service=cluster)`` and ``BatchRunner(service=cluster)`` work
unchanged.  ``repro serve --shards N`` exposes it from the CLI.
"""

from .journal import (
    JOB_JOURNAL_FORMAT,
    JobJournal,
    JobJournalContents,
    JobJournalError,
)
from .protocol import MAX_FRAME_BYTES, MessageChannel, ProtocolError, channel_pair
from .router import ShardRouter
from .service import ClusterConfig, ClusterService, ClusterStats, ClusterTicket
from .supervisor import ShardFailedError, ShardHandle, Supervisor, SupervisorConfig

__all__ = [
    "JOB_JOURNAL_FORMAT",
    "JobJournal",
    "JobJournalContents",
    "JobJournalError",
    "MAX_FRAME_BYTES",
    "MessageChannel",
    "ProtocolError",
    "channel_pair",
    "ShardRouter",
    "ClusterConfig",
    "ClusterService",
    "ClusterStats",
    "ClusterTicket",
    "ShardFailedError",
    "ShardHandle",
    "Supervisor",
    "SupervisorConfig",
]
