"""Hash partitioning of jobs across shards.

The cluster routes every job by its stable content hash
(:meth:`~repro.runtime.job.SimJob.job_hash`), so

* identical jobs always land on the same shard — in-flight coalescing
  inside each shard's :class:`~repro.serve.service.SimulationService`
  stays exactly as correct as in the single-process service;
* routing is deterministic across processes and restarts — a requeued job
  goes back to (the restarted incarnation of) its original shard, and a
  resumed journal replays onto the same partitioning.

The partition function is the leading 64 bits of the job hash modulo the
shard count.  The job hash is SHA-256, already uniformly distributed, so
no extra mixing is needed.
"""

from __future__ import annotations

__all__ = ["ShardRouter"]


class ShardRouter:
    """Deterministic ``job_hash -> shard index`` partitioning."""

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards

    def shard_for(self, job_hash: str) -> int:
        """The shard index owning ``job_hash`` (stable across processes)."""
        return int(job_hash[:16], 16) % self.num_shards

    def partition(self, job_hashes) -> dict:
        """Group ``job_hashes`` by owning shard (reporting convenience)."""
        groups: dict = {index: [] for index in range(self.num_shards)}
        for job_hash in job_hashes:
            groups[self.shard_for(job_hash)].append(job_hash)
        return groups
