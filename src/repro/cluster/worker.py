"""The shard worker process: one ``SimulationService`` behind a socket.

Each shard is a forked child process running :func:`shard_worker_main`.
Inside it, a full single-process :class:`~repro.serve.service.SimulationService`
(via the sync :class:`~repro.serve.client.ServiceClient` facade) does what
it already does well — coalesce duplicate in-flight jobs, probe the shared
result cache before scheduling, execute on a small thread pool — while the
process boundary buys what threads cannot: a private GIL, so N shards run
N simulations truly in parallel.

The worker's main thread is a plain receive loop on the length-prefixed
:class:`~repro.cluster.protocol.MessageChannel`:

* ``job``      → submit to the service; a completion callback sends the
  ``result`` (or ``error``) frame from the service's loop thread, so the
  main thread keeps answering pings while simulations run;
* ``ping``     → answer ``pong`` carrying the service's stats snapshot —
  the supervisor's liveness signal and the cluster's per-shard telemetry;
* ``shutdown`` → close the service (draining or not), answer ``bye``, exit.

EOF on the channel means the parent died: the worker closes without
draining and exits — an orphaned shard must not outlive its cluster.
"""

from __future__ import annotations

import os
from typing import Optional

from ..serve.client import ServiceClient
from ..serve.service import ServiceConfig
from .protocol import (
    MSG_BYE,
    MSG_ERROR,
    MSG_JOB,
    MSG_PING,
    MSG_PONG,
    MSG_READY,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MessageChannel,
    ProtocolError,
)

__all__ = ["shard_worker_main"]


def _pickle_safe(error: BaseException) -> Optional[BaseException]:
    """Return ``error`` if it survives a pickle round-trip, else ``None``.

    The original exception object is forwarded to the parent when possible
    so coalesced waiters re-raise the real type; exceptions holding
    unpicklable state degrade to the textual ``error`` field.
    """
    import pickle

    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:  # noqa: BLE001 — any pickle failure means "no"
        return None


def shard_worker_main(
    channel: MessageChannel,
    parent_channel: Optional[MessageChannel],
    shard_index: int,
    cache_dir: Optional[str],
    worker_threads: int,
    max_backlog: int,
    progress_interval: int,
) -> None:
    """Entry point of one shard process (started via the fork context).

    ``channel`` is the child end of the socket pair; ``parent_channel`` is
    the parent's end, inherited by the fork and closed here first so the
    parent's death surfaces as EOF on ``channel``.
    """
    if parent_channel is not None:
        # Inherited duplicate of the parent's end: plain fd close only — a
        # shutdown() here would sever the connection the parent still uses.
        parent_channel.close(shutdown=False)

    client = ServiceClient(
        cache_dir=cache_dir,
        config=ServiceConfig(
            max_workers=worker_threads,
            max_backlog=max_backlog,
            progress_interval=progress_interval,
        ),
    )

    def send(message: dict) -> None:
        # A dead parent is terminal for the shard; the enclosing loop exits
        # on the next recv EOF, so a failed send is safe to swallow.
        try:
            channel.send(message)
        except (OSError, ValueError):
            pass

    def on_done(seq: int, key: str, future) -> None:
        error = future.exception()
        if error is None:
            send(
                {
                    "kind": MSG_RESULT,
                    "seq": seq,
                    "key": key,
                    "shard": shard_index,
                    "outcome": future.result(),
                }
            )
        else:
            send(
                {
                    "kind": MSG_ERROR,
                    "seq": seq,
                    "key": key,
                    "shard": shard_index,
                    "error": f"{type(error).__name__}: {error}",
                    "exception": _pickle_safe(error),
                }
            )

    send({"kind": MSG_READY, "shard": shard_index, "pid": os.getpid()})

    drain_on_exit = False
    try:
        while True:
            try:
                message = channel.recv()
            except (EOFError, OSError, ProtocolError):
                break  # parent gone (or stream corrupt): exit without drain
            kind = message.get("kind")
            if kind == MSG_JOB:
                seq, key, job = message["seq"], message["key"], message["job"]
                try:
                    ticket = client.submit(job, client_name=f"shard{shard_index}")
                except Exception as error:  # noqa: BLE001 — backpressure etc.
                    send(
                        {
                            "kind": MSG_ERROR,
                            "seq": seq,
                            "key": key,
                            "shard": shard_index,
                            "error": f"{type(error).__name__}: {error}",
                            "exception": _pickle_safe(error),
                        }
                    )
                    continue
                ticket._future.add_done_callback(
                    lambda future, seq=seq, key=key: on_done(seq, key, future)
                )
            elif kind == MSG_PING:
                send(
                    {
                        "kind": MSG_PONG,
                        "seq": message.get("seq", 0),
                        "shard": shard_index,
                        "snapshot": client.snapshot(),
                    }
                )
            elif kind == MSG_SHUTDOWN:
                # Close (draining or not) *before* acknowledging: results
                # of draining jobs are sent by their completion callbacks
                # during close, so ``bye`` is always the final frame.
                drain_on_exit = bool(message.get("drain", True))
                client.close(drain=drain_on_exit)
                send({"kind": MSG_BYE, "shard": shard_index})
                break
            # Unknown kinds are ignored: a newer parent may speak a richer
            # dialect, and dropping is safer than dying.
    finally:
        try:
            client.close(drain=drain_on_exit)
        finally:
            channel.close()
