"""Length-prefixed message framing between the cluster and its shards.

The cluster parent and each shard worker process talk over a socket pair
using the smallest protocol that does the job: every message is one pickle
payload prefixed by a 4-byte big-endian length.  Framing and transport are
deliberately separate from meaning — :class:`MessageChannel` moves ``dict``
messages; what the dicts say is defined by the module-level ``MSG_*``
constants and interpreted by :mod:`repro.cluster.worker` (shard side) and
:mod:`repro.cluster.supervisor` (parent side).

Message kinds, parent → shard:

* ``{"kind": "job", "seq": int, "key": str, "job": SimJob}`` — execute one
  simulation; ``seq`` is the dispatch id the answer must echo.
* ``{"kind": "ping", "seq": int}`` — health check; answered with ``pong``.
* ``{"kind": "shutdown", "drain": bool}`` — finish (or cancel) queued work,
  answer ``bye`` and exit.

Shard → parent:

* ``{"kind": "ready", "shard": int, "pid": int}`` — handshake after start.
* ``{"kind": "result", "seq": int, "key": str, "outcome": SimOutcome}``
* ``{"kind": "error", "seq": int, "key": str, "error": str,
  "exception": BaseException | None}`` — the exception rides along when it
  pickles, so coalesced waiters re-raise the original error type.
* ``{"kind": "pong", "seq": int, "snapshot": dict}`` — health answer with
  the shard's :meth:`ServiceStats.snapshot`.
* ``{"kind": "bye", "shard": int}`` — clean shutdown acknowledgement.

A truncated stream (peer died mid-frame) surfaces as :class:`EOFError`;
frames above :data:`MAX_FRAME_BYTES` raise :class:`ProtocolError` instead
of silently attempting a multi-gigabyte allocation on a corrupt prefix.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any, Dict, Tuple

__all__ = [
    "MAX_FRAME_BYTES",
    "MSG_BYE",
    "MSG_ERROR",
    "MSG_JOB",
    "MSG_PING",
    "MSG_PONG",
    "MSG_READY",
    "MSG_RESULT",
    "MSG_SHUTDOWN",
    "MessageChannel",
    "ProtocolError",
    "channel_pair",
]

#: 4-byte big-endian payload length prefix.
_HEADER = struct.Struct(">I")

#: Upper bound on one frame; a corrupt prefix must not look like a 4 GiB read.
MAX_FRAME_BYTES = 256 * 1024 * 1024

MSG_JOB = "job"
MSG_PING = "ping"
MSG_SHUTDOWN = "shutdown"
MSG_READY = "ready"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_PONG = "pong"
MSG_BYE = "bye"


class ProtocolError(RuntimeError):
    """The byte stream violated the framing contract."""


def pack_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its 4-byte big-endian length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _HEADER.pack(len(payload)) + payload


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes; :class:`EOFError` on a closed peer."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError(
                f"peer closed mid-frame ({count - remaining}/{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class MessageChannel:
    """Bidirectional pickle messages over one socket, length-prefixed.

    ``send`` is thread-safe (the cluster parent sends from the submit path,
    the supervisor and the stats poller concurrently; the shard sends from
    its service's completion callbacks).  ``recv`` is single-consumer: each
    side dedicates one reader loop to the channel.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def send(self, message: Dict[str, Any]) -> None:
        """Frame and send one message (raises ``OSError`` on a dead peer)."""
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        frame = pack_frame(payload)
        with self._send_lock:
            self._sock.sendall(frame)

    def recv(self) -> Dict[str, Any]:
        """Receive one message; :class:`EOFError` when the peer is gone."""
        header = _recv_exact(self._sock, _HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"incoming frame claims {length} bytes (> MAX_FRAME_BYTES); "
                f"stream is corrupt"
            )
        payload = _recv_exact(self._sock, length)
        message = pickle.loads(payload)
        if not isinstance(message, dict) or "kind" not in message:
            raise ProtocolError(f"malformed message: {type(message).__name__}")
        return message

    # ------------------------------------------------------------------
    def settimeout(self, timeout: float | None) -> None:
        self._sock.settimeout(timeout)

    def fileno(self) -> int:
        return self._sock.fileno()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, shutdown: bool = True) -> None:
        """Close this end of the channel.

        ``shutdown=True`` (the default) tears the *connection* down with
        ``SHUT_RDWR`` first, which reliably unblocks a reader thread parked
        in :meth:`recv`.  Pass ``shutdown=False`` when dropping a
        fork-inherited duplicate of the *other* process's end: shutdown
        acts on the shared connection (not just this process's file
        descriptor), so shutting down a duplicate would sever the link the
        owning process is still using.
        """
        if not self._closed:
            self._closed = True
            if shutdown:
                try:
                    self._sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
            self._sock.close()


def channel_pair() -> Tuple[MessageChannel, MessageChannel]:
    """A connected channel pair (parent end, child end) over a socketpair.

    Used with fork-started worker processes: the child inherits both ends,
    closes the parent's, and keeps its own — exactly like a pipe, but with
    a real socket so the framing layer is identical in tests and in the
    live cluster.
    """
    parent_sock, child_sock = socket.socketpair()
    return MessageChannel(parent_sock), MessageChannel(child_sock)
