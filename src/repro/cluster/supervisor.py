"""Shard process management: handles, health checks, restart with backoff.

Two pieces live here:

* :class:`ShardHandle` — the parent-side view of one worker process: the
  forked ``multiprocessing.Process``, the parent end of its message
  channel, and a reader thread that turns incoming frames into callbacks.
  A handle is immutable once failed; restarts build a *new* handle for the
  same shard index.
* :class:`Supervisor` — the health loop.  It pings every shard on a fixed
  cadence, declares a shard dead when its process has exited or its last
  sign of life is older than the heartbeat timeout, kills and restarts it
  with capped exponential backoff, and asks the cluster to requeue the
  dead incarnation's in-flight jobs onto the new one.  A shard that keeps
  dying without ever doing useful work again (no result, no pong) is
  eventually declared failed for good, and its pending jobs get a
  :class:`ShardFailedError` instead of waiting forever.

The division of labour with :class:`~repro.cluster.service.ClusterService`:
the service owns routing, coalescing, the journal and the futures; the
supervisor owns *process lifecycle* and never touches job state directly —
it only calls back into the service's ``_redispatch``/``_fail_shard``
hooks.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .protocol import (
    MSG_BYE,
    MSG_ERROR,
    MSG_JOB,
    MSG_PING,
    MSG_PONG,
    MSG_READY,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MessageChannel,
    ProtocolError,
    channel_pair,
)
from .worker import shard_worker_main

__all__ = ["ShardFailedError", "ShardHandle", "Supervisor", "SupervisorConfig"]


class ShardFailedError(RuntimeError):
    """A shard exhausted its restart budget; its jobs cannot complete."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Health-check and restart tunables.

    Parameters
    ----------
    heartbeat_interval:
        Seconds between ping rounds.
    heartbeat_timeout:
        A live process whose last message (pong, result, ready) is older
        than this is considered hung and is killed and restarted.
    backoff_base:
        First restart delay; successive failures double it.
    backoff_cap:
        Upper bound on the restart delay.
    max_restarts:
        Consecutive fruitless restarts (no result or pong in between)
        before the shard is declared failed for good.
    ready_timeout:
        Seconds to wait for a freshly started worker's ``ready`` frame.
    """

    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 15.0
    backoff_base: float = 0.1
    backoff_cap: float = 5.0
    max_restarts: int = 5
    ready_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat interval/timeout must be positive")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")


class ShardHandle:
    """Parent-side endpoint of one worker process incarnation."""

    def __init__(
        self,
        index: int,
        *,
        cache_dir: Optional[str],
        worker_threads: int,
        max_backlog: int,
        progress_interval: int,
        on_message: Callable[["ShardHandle", dict], None],
        on_disconnect: Callable[["ShardHandle"], None],
    ) -> None:
        self.index = index
        self._cache_dir = cache_dir
        self._worker_threads = worker_threads
        self._max_backlog = max_backlog
        self._progress_interval = progress_interval
        self._on_message = on_message
        self._on_disconnect = on_disconnect
        self.process = None
        self.channel: Optional[MessageChannel] = None
        self._reader: Optional[threading.Thread] = None
        #: Monotonic time of the last frame received from this incarnation.
        self.last_seen = 0.0
        #: True once the incarnation produced a result or pong (i.e. it is
        #: genuinely serving, not just surviving the ready handshake).
        self.productive = False
        #: Set when the handle is intentionally shut down (no restart).
        self.closing = False
        #: Set by the reader thread on EOF.  Definitive: once the channel
        #: is gone the incarnation can never deliver another result, even
        #: if ``process.is_alive()`` still reports True for a moment while
        #: the dying child waits to be reaped.
        self.disconnected = False
        #: Set once the incarnation is considered dead.
        self.failed = False
        #: Last stats snapshot carried by a pong.
        self.last_snapshot: Optional[dict] = None

    # ------------------------------------------------------------------
    def start(self, ready_timeout: float) -> None:
        """Fork the worker, wait for its ``ready`` frame, start the reader."""
        import multiprocessing

        context = multiprocessing.get_context("fork")
        parent_channel, child_channel = channel_pair()
        self.channel = parent_channel
        self.process = context.Process(
            target=shard_worker_main,
            args=(
                child_channel,
                parent_channel,
                self.index,
                self._cache_dir,
                self._worker_threads,
                self._max_backlog,
                self._progress_interval,
            ),
            name=f"repro-shard-{self.index}",
            daemon=True,
        )
        self.process.start()
        # The child owns its end now; drop the parent's duplicate fd (no
        # shutdown — that would sever the child's live connection) so EOF
        # propagates when the child exits.
        child_channel.close(shutdown=False)
        parent_channel.settimeout(ready_timeout)
        try:
            message = parent_channel.recv()
        except (EOFError, OSError, ProtocolError) as error:
            self.kill()
            raise ShardFailedError(
                f"shard {self.index} never answered the ready handshake: {error}"
            ) from error
        if message.get("kind") != MSG_READY:
            self.kill()
            raise ShardFailedError(
                f"shard {self.index} spoke {message.get('kind')!r} before ready"
            )
        parent_channel.settimeout(None)
        self.last_seen = time.monotonic()
        self._reader = threading.Thread(
            target=self._reader_loop, name=f"repro-shard-{self.index}-reader", daemon=True
        )
        self._reader.start()

    def _reader_loop(self) -> None:
        assert self.channel is not None
        while True:
            try:
                message = self.channel.recv()
            except (EOFError, OSError, ProtocolError):
                break
            self.last_seen = time.monotonic()
            if message.get("kind") in (MSG_RESULT, MSG_PONG):
                self.productive = True
            if message.get("kind") == MSG_PONG:
                self.last_snapshot = message.get("snapshot")
            try:
                self._on_message(self, message)
            except Exception:  # noqa: BLE001 — observers must not kill the reader
                pass
        self.disconnected = True
        self._on_disconnect(self)

    # ------------------------------------------------------------------
    def send(self, message: dict) -> bool:
        """Best-effort send; ``False`` when the incarnation is unreachable.

        A ``False`` (or a silently lost frame on a dying socket) is always
        recovered by the supervisor: the shard's death redispatches every
        pending entry, so no job is lost to a failed send.
        """
        if self.failed or self.channel is None:
            return False
        try:
            self.channel.send(message)
            return True
        except (OSError, ValueError):
            return False

    def dispatch(self, seq: int, key: str, job) -> bool:
        return self.send({"kind": MSG_JOB, "seq": seq, "key": key, "job": job})

    def ping(self, seq: int) -> bool:
        return self.send({"kind": MSG_PING, "seq": seq})

    def request_shutdown(self, drain: bool) -> bool:
        self.closing = True
        return self.send({"kind": MSG_SHUTDOWN, "drain": drain})

    # ------------------------------------------------------------------
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        """Terminate the worker process immediately (SIGKILL)."""
        self.failed = True
        if self.process is not None and self.process.is_alive():
            self.process.kill()
        if self.channel is not None:
            self.channel.close()

    def join(self, timeout: float) -> None:
        if self.process is not None:
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout)


class Supervisor:
    """Health-checks shards, restarts the dead, requeues their work.

    The supervisor thread wakes every ``heartbeat_interval`` seconds and,
    per shard: pings it, checks the process is alive, and checks the last
    message is younger than ``heartbeat_timeout``.  A failed check kills
    the incarnation, waits the capped exponential backoff, starts a fresh
    one, and hands its predecessor's pending jobs back to the cluster for
    redispatch.  ``notify_disconnect`` lets reader threads short-circuit
    the cadence: an EOF triggers recovery on the next loop tick without
    waiting out the interval.
    """

    def __init__(
        self,
        config: SupervisorConfig,
        *,
        get_handle: Callable[[int], ShardHandle],
        replace_handle: Callable[[int], ShardHandle],
        on_shard_lost: Callable[[int], None],
        on_shard_failed: Callable[[int, str], None],
    ) -> None:
        self.config = config
        self._get_handle = get_handle
        self._replace_handle = replace_handle
        self._on_shard_lost = on_shard_lost
        self._on_shard_failed = on_shard_failed
        self._failures: Dict[int, int] = {}
        self._restarts = 0
        self._given_up: Dict[int, bool] = {}
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._ping_seq = 0
        self._shard_count = 0

    # ------------------------------------------------------------------
    @property
    def restarts(self) -> int:
        """Total successful shard restarts performed so far."""
        return self._restarts

    def start(self, shard_count: int) -> None:
        self._shard_count = shard_count
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout)

    def notify_disconnect(self, handle: ShardHandle) -> None:
        """Reader-thread EOF hook: trigger an immediate health pass."""
        if not handle.closing:
            self._wake.set()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.config.heartbeat_interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            for index in range(self._shard_count):
                if self._given_up.get(index):
                    continue
                try:
                    self._check_shard(index)
                except Exception:  # noqa: BLE001 — supervision must survive
                    pass

    def _check_shard(self, index: int) -> None:
        handle = self._get_handle(index)
        if handle.closing:
            return
        now = time.monotonic()
        hung = (now - handle.last_seen) > self.config.heartbeat_timeout
        dead = handle.failed or handle.disconnected or not handle.alive()
        if not dead and not hung:
            self._ping_seq += 1
            handle.ping(self._ping_seq)
            return
        if handle.disconnected:
            reason = "disconnected"
        elif hung and not dead:
            reason = "hung"
        else:
            reason = "exited"
        self._recover(index, handle, reason=reason)

    def _recover(self, index: int, handle: ShardHandle, reason: str) -> None:
        if self._stop.is_set():
            return
        # A productive predecessor resets the failure streak: crashing
        # after real work is an incident, not a crash loop.
        if handle.productive:
            self._failures[index] = 0
        handle.kill()
        failures = self._failures.get(index, 0)
        if failures >= self.config.max_restarts:
            self._given_up[index] = True
            self._on_shard_failed(
                index,
                f"shard {index} failed {failures} consecutive restarts "
                f"(last reason: {reason})",
            )
            return
        self._failures[index] = failures + 1
        delay = min(
            self.config.backoff_cap, self.config.backoff_base * (2.0 ** failures)
        )
        if delay > 0 and self._stop.wait(delay):
            return
        try:
            # replace_handle forks, handshakes and installs the new
            # incarnation (raising on any of the three), so routing and
            # redispatch only ever see started shards.
            self._replace_handle(index)
        except Exception:  # noqa: BLE001 — a failed start is one more failure
            self._wake.set()
            return
        self._restarts += 1
        # The cluster redispatches the dead incarnation's pending jobs onto
        # the freshly installed replacement.
        self._on_shard_lost(index)
