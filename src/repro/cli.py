"""Command-line interface of the DataMaestro reproduction.

Provides quick access to the main entry points without writing Python:

* ``python -m repro.cli list-experiments`` — list the paper tables/figures
  that can be regenerated and how;
* ``python -m repro.cli experiment fig7 --workloads-per-group 3`` — run one
  experiment and print its report;
* ``python -m repro.cli simulate-gemm 64 64 64 --quantize`` — compile and
  cycle-simulate a single GeMM kernel on the evaluation system;
* ``python -m repro.cli simulate-conv 16 16 16 32 --kernel 3 --stride 1`` —
  the same for a convolution layer;
* ``python -m repro.cli batch gemm:64x64x64 conv:16x16x16x32:k3:p1`` — run a
  set of jobs through the runtime (``--jobs N`` fans out over processes,
  results land in the on-disk cache);
* ``python -m repro.cli sweep gemm:32x32x64 --steps 1_baseline,6_full`` —
  sweep the ablation feature ladder over one or more workloads;
* ``python -m repro.cli explore --space default --strategy grid --budget 18``
  — multi-objective design-space exploration with Pareto-frontier reporting,
  JSON/CSV export and journal-based resume (see ``docs/EXPLORE.md``);
* ``python -m repro.cli serve gemm:64x64x64 --repeat 8 --clients 2 --events``
  — run a workload stream through the asynchronous simulation service:
  duplicate in-flight requests coalesce onto one simulation, admission is
  fair and bounded, and lifecycle/progress events stream to stdout (see
  ``docs/SERVE.md``);
* ``python -m repro.cli serve gemm:64x64x64 --shards 4 --journal
  --stats-interval 5`` — the same stream through the multi-process sharded
  cluster: each shard owns a private GIL, a supervisor restarts crashed
  workers, and the durable job journal replays the unfinished backlog after
  a daemon restart (see ``docs/SERVE.md``);
* ``python -m repro.cli serve gemm:64x64x64 --repeat 32 --metrics-port 0
  --trace run.json --stats-interval 2 --stats-format json`` — the same
  stream with the full observability surface: a loopback HTTP endpoint
  serving Prometheus ``/metrics``, a JSON ``/snapshot``, a ``/config``
  report and a live dashboard, plus a Chrome trace-event timeline written
  on exit (see ``docs/OBSERVABILITY.md``);
* ``python -m repro.cli replay --regime hotkey --requests 200 --shards 2``
  — drive the service with a realistic arrival trace (Poisson, diurnal,
  correlated-burst or Zipf hot-key-skew regimes, or a recorded JSONL trace)
  and report p50/p99 latency, coalesce rate and cache hit-rate (see
  ``docs/SCENARIOS.md``);
* ``python -m repro.cli metrics --once`` — print one Prometheus text scrape
  of the process-wide registry (or serve it over HTTP without ``--once``);
* ``python -m repro.cli cache info|prune|clear`` — inspect or bound the
  on-disk result cache (``prune`` evicts least-recently-used entries);
* ``python -m repro.cli selftest`` — tiny cached GeMM end-to-end smoke test;
* ``python -m repro.cli suite-info`` — describe the synthetic ablation suite.

All simulation goes through :mod:`repro.runtime`; ``--jobs``, ``--cache-dir``
and ``--no-cache`` control parallelism and result caching wherever they
appear, and ``--engine {event,lockstep}`` selects the simulation engine
(event-driven next-event scheduling vs the legacy per-cycle loop; see
``docs/ENGINE.md``).  ``docs/ARCHITECTURE.md`` maps every subcommand to the
subsystem behind it.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import tempfile
from typing import List, Optional

from .analysis.reporting import format_comparison, format_table
from .core.params import FeatureSet, ablation_feature_sets
from .experiments import EXPERIMENTS
from .explore import (
    JournalError,
    ParameterAxis,
    available_strategies,
    make_strategy,
    named_search_spaces,
    parse_objectives,
    search_space_by_name,
)
from .engine import DEFAULT_ENGINE, available_engines
from .runtime import (
    DATAMAESTRO_BACKEND,
    SimJob,
    Simulator,
    available_backends,
    default_cache_dir,
)
from .workloads.spec import ConvWorkload, GemmWorkload, Workload
from .workloads.synthetic import FULL_SUITE_COUNTS, synthetic_suite


def _features_from_args(args: argparse.Namespace) -> FeatureSet:
    if getattr(args, "baseline", False):
        return FeatureSet.all_disabled()
    return FeatureSet.all_enabled()


# ----------------------------------------------------------------------
# Runtime plumbing shared by the simulation-running subcommands.
# ----------------------------------------------------------------------
def _add_runtime_flags(
    parser: argparse.ArgumentParser, cache_default: bool = False
) -> None:
    """Attach the shared --jobs / --cache-dir / --no-cache flags.

    ``cache_default`` decides whether the command caches when neither
    ``--cache-dir`` nor ``--no-cache`` is given (batch/sweep do; the
    single-shot commands do not).
    """
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for batched simulation (default: 1, in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-datamaestro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default=DEFAULT_ENGINE,
        help="simulation engine: 'event' skips provably idle cycles, "
        "'lockstep' is the legacy per-cycle loop (see docs/ENGINE.md)",
    )
    parser.set_defaults(cache_default=cache_default)


def _simulator_from_args(args: argparse.Namespace) -> Simulator:
    """Build the Simulator the runtime flags describe."""
    if getattr(args, "no_cache", False):
        cache_dir = None
    elif getattr(args, "cache_dir", None):
        cache_dir = args.cache_dir
    elif getattr(args, "cache_default", False):
        cache_dir = default_cache_dir()
    else:
        cache_dir = None
    return Simulator(cache_dir=cache_dir, max_workers=getattr(args, "jobs", 1))


def parse_workload_spec(text: str) -> Workload:
    """Parse a CLI workload spec.

    Formats::

        gemm:MxNxK[:t][:q]           (t = transposed A, q = quantize)
        conv:HxWxCINxCOUT[:kN][:sN][:pN][:q]
    """
    tokens = text.split(":")
    kind = tokens[0].lower()
    if len(tokens) < 2:
        raise ValueError(f"workload spec {text!r} is missing its dimensions")
    dims = tokens[1].lower().split("x")
    flags = [token.lower() for token in tokens[2:]]
    if kind == "gemm":
        if len(dims) != 3:
            raise ValueError(f"gemm spec needs MxNxK dimensions, got {text!r}")
        m, n, k = (int(value) for value in dims)
        transposed = "t" in flags
        quantize = "q" in flags
        unknown = [f for f in flags if f not in ("t", "q")]
        if unknown:
            raise ValueError(f"unknown gemm flags {unknown} in {text!r}")
        name = f"cli_gemm_{m}x{n}x{k}" + ("_t" if transposed else "")
        return GemmWorkload(
            name=name, m=m, n=n, k=k, transposed_a=transposed, quantize=quantize
        )
    if kind == "conv":
        if len(dims) != 4:
            raise ValueError(f"conv spec needs HxWxCINxCOUT dimensions, got {text!r}")
        height, width, cin, cout = (int(value) for value in dims)
        kernel, stride, padding, quantize = 3, 1, 0, False
        for flag in flags:
            if flag == "q":
                quantize = True
            elif flag.startswith("k") and flag[1:].isdigit():
                kernel = int(flag[1:])
            elif flag.startswith("s") and flag[1:].isdigit():
                stride = int(flag[1:])
            elif flag.startswith("p") and flag[1:].isdigit():
                padding = int(flag[1:])
            else:
                raise ValueError(f"unknown conv flag {flag!r} in {text!r}")
        name = f"cli_conv_{height}x{width}x{cin}_{cout}_k{kernel}s{stride}p{padding}"
        return ConvWorkload(
            name=name,
            in_height=height,
            in_width=width,
            in_channels=cin,
            out_channels=cout,
            kernel_h=kernel,
            kernel_w=kernel,
            stride=stride,
            padding=padding,
            quantize=quantize,
        )
    raise ValueError(f"unknown workload kind {kind!r} (use gemm: or conv:)")


def _print_outcomes(outcomes, title: str) -> None:
    rows = [
        [
            outcome.workload_name,
            outcome.backend,
            f"{outcome.utilization:.2%}",
            outcome.kernel_cycles,
            outcome.memory_accesses,
            "hit" if outcome.cache_hit else "miss",
        ]
        for outcome in outcomes
    ]
    print(
        format_table(
            ["workload", "backend", "utilization", "kernel cycles", "mem accesses", "cache"],
            rows,
            title=title,
        )
    )


def _print_runtime_stats(simulator: Simulator) -> None:
    stats = simulator.stats
    cache_text = (
        f"cache dir {simulator.cache.directory}" if simulator.cache else "cache off"
    )
    print(
        f"runtime: {stats.executed} simulated, {stats.cache_hits} cache hits, "
        f"{stats.deduplicated} deduplicated ({cache_text})"
    )


def _print_simulation(outcome) -> None:
    rows = [
        ["workload", outcome.workload_name],
        ["backend", outcome.backend],
        ["engine", outcome.provenance.get("engine", "-")],
        ["ideal compute cycles", outcome.ideal_compute_cycles],
        ["kernel cycles", outcome.kernel_cycles],
        ["utilization", f"{outcome.utilization:.2%}"],
        ["memory accesses", outcome.memory_accesses],
        ["bank conflicts", outcome.bank_conflicts],
        ["pre-pass cycles", outcome.prepass_cycles],
        ["functional match", outcome.functional_match],
        ["cache", "hit" if outcome.cache_hit else "miss"],
    ]
    print(format_table(["metric", "value"], rows, title="Simulation result"))


# ----------------------------------------------------------------------
# Subcommands.
# ----------------------------------------------------------------------
def cmd_list_experiments(_args: argparse.Namespace) -> int:
    rows = []
    descriptions = {
        "table1": "Feature comparison of SotA data-movement solutions",
        "fig4": "AGU address-generation example (4x4x4 GeMM on 2x2x2 PEs)",
        "fig7": "Ablation study: utilization and data access counts",
        "fig8": "FPGA prototype resource utilization",
        "fig9": "Area and power breakdowns, energy efficiency",
        "fig10": "Throughput and overhead comparison with SotA",
        "table3": "Real-world DNN utilization (ResNet/VGG/ViT/BERT + MobileNetV2)",
    }
    for name in EXPERIMENTS:
        rows.append([name, descriptions.get(name, ""), f"python -m repro.experiments.{EXPERIMENTS[name].__name__.split('.')[-1]}"])
    print(format_table(["id", "paper artefact", "command"], rows, title="Experiments"))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    module = EXPERIMENTS.get(args.name)
    if module is None:
        print(f"unknown experiment {args.name!r}; run 'list-experiments'", file=sys.stderr)
        return 2
    kwargs = {}
    if args.name == "fig7" and args.workloads_per_group is not None:
        kwargs["workloads_per_group"] = args.workloads_per_group
    parameters = inspect.signature(module.run).parameters
    simulator = None
    if "simulator" in parameters:
        simulator = _simulator_from_args(args)
        kwargs["simulator"] = simulator
    if "engine" in parameters:
        kwargs["engine"] = getattr(args, "engine", DEFAULT_ENGINE)
    results = module.run(**kwargs)
    print(module.report(results))
    if simulator is not None:
        _print_runtime_stats(simulator)
    return 0


def cmd_simulate_gemm(args: argparse.Namespace) -> int:
    workload = GemmWorkload(
        name=f"cli_gemm_{args.m}x{args.n}x{args.k}",
        m=args.m,
        n=args.n,
        k=args.k,
        transposed_a=args.transposed,
        quantize=args.quantize,
    )
    outcome = _simulator_from_args(args).simulate(
        SimJob(workload=workload, features=_features_from_args(args), engine=args.engine)
    )
    _print_simulation(outcome)
    return 0


def cmd_simulate_conv(args: argparse.Namespace) -> int:
    workload = ConvWorkload(
        name=f"cli_conv_{args.height}x{args.width}x{args.cin}_{args.cout}",
        in_height=args.height,
        in_width=args.width,
        in_channels=args.cin,
        out_channels=args.cout,
        kernel_h=args.kernel,
        kernel_w=args.kernel,
        stride=args.stride,
        padding=args.padding,
        quantize=args.quantize,
    )
    outcome = _simulator_from_args(args).simulate(
        SimJob(workload=workload, features=_features_from_args(args), engine=args.engine)
    )
    _print_simulation(outcome)
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    try:
        workloads = [parse_workload_spec(spec) for spec in args.workloads]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.backend not in available_backends():
        print(
            f"error: unknown backend {args.backend!r}; "
            f"available: {available_backends()}",
            file=sys.stderr,
        )
        return 2
    simulator = _simulator_from_args(args)
    features = _features_from_args(args)
    jobs = [
        SimJob(
            workload=workload,
            features=features,
            backend=args.backend,
            seed=args.seed,
            engine=args.engine,
        )
        for workload in workloads
    ]
    outcomes = simulator.simulate_many(jobs)
    _print_outcomes(outcomes, f"Batch results ({len(jobs)} jobs)")
    _print_runtime_stats(simulator)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    try:
        workloads = [parse_workload_spec(spec) for spec in args.workloads]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.backend and args.backend not in available_backends():
        print(
            f"error: unknown backend {args.backend!r}; "
            f"available: {available_backends()}",
            file=sys.stderr,
        )
        return 2
    ladder = ablation_feature_sets()
    step_names = list(ladder) if args.steps is None else args.steps.split(",")
    unknown = [step for step in step_names if step not in ladder]
    if unknown:
        print(
            f"error: unknown ablation steps {unknown}; available: {list(ladder)}",
            file=sys.stderr,
        )
        return 2
    simulator = _simulator_from_args(args)
    outcomes = simulator.sweep(
        workloads,
        features=[ladder[step] for step in step_names],
        backends=(args.backend,) if args.backend else (DATAMAESTRO_BACKEND,),
        seed=args.seed,
        engine=args.engine,
    )
    # sweep() nests feature sets outside workloads, in deterministic order.
    comparison = {workload.name: {} for workload in workloads}
    for index, outcome in enumerate(outcomes):
        step = step_names[index // len(workloads)]
        workload = workloads[index % len(workloads)]
        comparison[workload.name][step] = outcome.utilization
    print(
        format_comparison(
            "Feature-ladder sweep: GeMM-core utilization per architecture step",
            comparison,
        )
    )
    _print_runtime_stats(simulator)
    return 0


def _parse_axis_override(text: str) -> ParameterAxis:
    """Parse a CLI axis spec ``name=v1,v2,...`` (ints where possible)."""
    if "=" not in text:
        raise ValueError(f"axis spec {text!r} must look like name=v1,v2,...")
    name, _, values_text = text.partition("=")
    values = []
    for token in values_text.split(","):
        token = token.strip()
        if not token:
            continue
        if token.lower() in ("true", "false"):
            values.append(token.lower() == "true")
        else:
            values.append(int(token))
    if not values:
        raise ValueError(f"axis spec {text!r} has no values")
    return ParameterAxis.make(name.strip(), values)


def cmd_explore(args: argparse.Namespace) -> int:
    from .explore.engine import ExplorationEngine

    try:
        space = search_space_by_name(args.space)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    try:
        if args.axis:
            overrides = [_parse_axis_override(spec) for spec in args.axis]
            axes = {axis.name: axis for axis in space.axes}
            axes.update({axis.name: axis for axis in overrides})
            space.axes = tuple(axes.values())
        objectives = parse_objectives(args.objectives)
        workloads = (
            [parse_workload_spec(spec) for spec in args.workload]
            if args.workload
            else None
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.strategy not in available_strategies():
        print(
            f"error: unknown strategy {args.strategy!r}; "
            f"available: {available_strategies()}",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    if args.budget <= 0:
        print("error: --budget must be positive", file=sys.stderr)
        return 2

    simulator = _simulator_from_args(args)
    engine = ExplorationEngine(
        space=space,
        strategy=make_strategy(
            args.strategy, objectives=objectives, population=args.population
        ),
        objectives=objectives,
        workloads=workloads,
        simulator=simulator,
        seed=args.seed,
        sim_seed=args.sim_seed,
        sim_engine=args.engine,
    )
    try:
        report_data = engine.run(
            budget=args.budget, journal=args.journal, resume=args.resume
        )
    except JournalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        # An --axis override the design builder does not understand.
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if not report_data.evaluations:
        print(
            "error: no valid candidates in the search space (every axis "
            "combination was filtered by a constraint or failed design "
            "validation)",
            file=sys.stderr,
        )
        return 2

    objective_names = report_data.objective_names()
    print(
        format_table(
            ["candidate"] + objective_names,
            report_data.frontier_rows(),
            title=(
                f"Pareto frontier ({len(report_data.frontier)} of "
                f"{len(report_data.evaluations)} evaluated designs)"
            ),
            float_format="{:.4g}",
        )
    )
    best = report_data.best()
    print(
        f"best on {objective_names[0]}: {best.candidate.key()} "
        f"({objective_names[0]}={best.metrics[objective_names[0]]:.6g})"
    )
    print(
        f"exploration: {report_data.simulated} simulated, "
        f"{report_data.cache_hits} cache hits, "
        f"{report_data.replayed_from_journal} replayed from journal"
    )
    if report_data.proposal_shortfall:
        print(
            f"note: budget under-spent — the strategy came up "
            f"{report_data.proposal_shortfall} proposal(s) short (space "
            f"smaller than the budget, or draws exhausted)"
        )
    if args.json:
        report_data.to_json(args.json)
        print(f"wrote JSON report to {args.json}")
    if args.csv:
        report_data.to_csv(args.csv)
        print(f"wrote CSV report to {args.csv}")
    _print_runtime_stats(simulator)
    return 0


def _format_stats_line(snapshot: dict) -> str:
    """One compact periodic-stats line for thread or cluster snapshots."""
    counters = snapshot.get("stats", snapshot)  # cluster nests its counters
    line = (
        f"stats: queue={snapshot.get('queue_depth', 0)} "
        f"inflight={snapshot.get('inflight', 0)} "
        f"submitted={counters.get('submitted', 0)} "
        f"executed={counters.get('executed', 0)} "
        f"coalesced={counters.get('coalesced', 0)} "
        f"cache_hits={counters.get('cache_hits', 0)}"
    )
    latency = snapshot.get("latency")
    if isinstance(latency, dict) and latency.get("count"):
        line += (
            f" p50={latency['p50_seconds'] * 1000:.1f}ms"
            f" p99={latency['p99_seconds'] * 1000:.1f}ms"
        )
    if "shards" in snapshot:
        alive = sum(1 for shard in snapshot["shards"] if shard.get("alive"))
        line += f" shards={alive}/{snapshot.get('shard_count', 0)}"
        restarts = counters.get("restarts", 0)
        if restarts:
            line += f" restarts={restarts}"
    return line


def _emit_stats(snapshot: dict, fmt: str) -> None:
    """Print one periodic-stats record: text line or a JSON object line."""
    if fmt == "json":
        print(json.dumps(snapshot, default=str, sort_keys=True))
    else:
        print(f"  {_format_stats_line(snapshot)}")


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a workload stream through the asynchronous simulation service."""
    import threading

    from .config import get_config
    from .serve import QueueFullError, ServiceClient, ServiceConfig

    try:
        workloads = [parse_workload_spec(spec) for spec in args.workloads]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.backend not in available_backends():
        print(
            f"error: unknown backend {args.backend!r}; "
            f"available: {available_backends()}",
            file=sys.stderr,
        )
        return 2
    if args.repeat <= 0 or args.clients <= 0:
        print("error: --repeat and --clients must be positive", file=sys.stderr)
        return 2
    if args.workers <= 0 or args.backlog <= 0 or args.progress_interval <= 0:
        print(
            "error: --workers, --backlog and --progress-interval must be positive",
            file=sys.stderr,
        )
        return 2
    runtime_config = get_config()
    shards = args.shards if args.shards is not None else runtime_config.serve_shards
    if shards < 0:
        print("error: --shards must be non-negative", file=sys.stderr)
        return 2
    if args.stats_interval is not None and args.stats_interval <= 0:
        print("error: --stats-interval must be positive", file=sys.stderr)
        return 2
    # --metrics-port on the command line always wins; otherwise the env
    # knob enables the exporter when non-zero.  An *explicit* 0 asks for
    # an ephemeral port (the bound port is printed), while an unset flag
    # with REPRO_METRICS_PORT=0 keeps the exporter off entirely.
    metrics_port = args.metrics_port
    if metrics_port is None and runtime_config.metrics_port:
        metrics_port = runtime_config.metrics_port
    if metrics_port is not None and not 0 <= metrics_port <= 65535:
        print("error: --metrics-port must be in [0, 65535]", file=sys.stderr)
        return 2
    trace_path = args.trace if args.trace is not None else runtime_config.trace_path
    if args.journal is not None and shards == 0:
        print(
            "error: --journal needs the sharded service (--shards N, N >= 1)",
            file=sys.stderr,
        )
        return 2
    if args.events and shards > 0:
        print(
            "note: --events is unavailable in sharded mode (events stay "
            "inside each shard process); ignoring it",
            file=sys.stderr,
        )
    recorder = None
    if trace_path is not None:
        from .obs.trace import install_tracer

        # Installed before the service exists so admission/replay of the
        # very first submissions is already on the timeline.
        recorder = install_tracer()
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    features = _features_from_args(args)
    jobs = [
        SimJob(
            workload=workload,
            features=features,
            backend=args.backend,
            seed=args.seed,
            engine=args.engine,
        )
        for workload in workloads
        for _ in range(args.repeat)
    ]
    if shards > 0:
        from pathlib import Path

        from .cluster import ClusterConfig, ClusterService

        journal_path = None
        if args.journal == "":
            journal_path = runtime_config.journal_dir / "serve.jsonl"
        elif args.journal is not None:
            journal_path = Path(args.journal)
        client = ClusterService(
            cache_dir=cache_dir,
            config=ClusterConfig(
                shards=shards,
                worker_threads=args.workers,
                max_backlog=args.backlog,
                progress_interval=args.progress_interval,
            ),
            journal=journal_path,
        )
    else:
        on_event = (
            (lambda event: print(f"  {event.describe()}")) if args.events else None
        )
        client = ServiceClient(
            cache_dir=cache_dir,
            config=ServiceConfig(
                max_workers=args.workers,
                max_backlog=args.backlog,
                progress_interval=args.progress_interval,
            ),
            on_event=on_event,
        )
    metrics_server = None
    if metrics_port is not None:
        from .obs.http import MetricsServer

        metrics_server = MetricsServer(
            snapshot_fn=client.snapshot, port=metrics_port
        ).start()
        print(
            f"metrics: {metrics_server.url}/metrics "
            f"(snapshot {metrics_server.url}/snapshot, "
            f"dashboard {metrics_server.url}/)"
        )
    stop_stats = threading.Event()
    if args.stats_interval:

        def _dump_stats() -> None:
            while not stop_stats.wait(args.stats_interval):
                try:
                    _emit_stats(client.snapshot(), args.stats_format)
                except Exception:  # noqa: BLE001 — telemetry must not kill serving
                    break

        threading.Thread(
            target=_dump_stats, name="repro-serve-stats", daemon=True
        ).start()
    try:
        # Spread the stream round-robin over the simulated clients; the
        # fair queue interleaves them, duplicates coalesce in-flight.
        tickets = []
        for index, job in enumerate(jobs):
            name = f"client{index % args.clients}"
            try:
                tickets.append(client.submit(job, client_name=name))
            except QueueFullError as error:
                print(f"  backpressure: {error}", file=sys.stderr)
                return 1
        outcomes = [ticket.result() for ticket in tickets]
        if args.stats_interval:
            # Guarantee at least one stats record even when the stream
            # drains faster than the first interval tick.
            _emit_stats(client.snapshot(), args.stats_format)
    finally:
        stop_stats.set()
        if metrics_server is not None:
            metrics_server.close()
        client.close(drain=True)
        if recorder is not None:
            from .obs.trace import uninstall_tracer

            uninstall_tracer()
            count = recorder.export(trace_path)
            print(f"trace: {count} events -> {trace_path} (view in Perfetto)")
    unique = {}
    for outcome in outcomes:
        unique.setdefault(outcome.job_hash, outcome)
    _print_outcomes(
        unique.values(), f"Service results ({len(jobs)} submissions, "
        f"{len(unique)} unique jobs)"
    )
    stats = client.stats() if shards == 0 else client.stats_dict()
    print(
        f"service: {stats['submitted']} submitted, {stats['executed']} simulated, "
        f"{stats['coalesced']} coalesced, {stats['cache_hits']} cache hits "
        f"(coalescing hit-rate {stats['coalescing_hit_rate']:.0%}, "
        f"workers {args.workers}, backlog {args.backlog}"
        + (f", shards {shards}, restarts {stats['restarts']})" if shards else ")")
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay an arrival trace (synthetic regime or recorded JSONL) against
    the service and report latency/avoidance per regime."""
    from pathlib import Path

    from .config import get_config
    from .serve import ServiceClient, ServiceConfig
    from .serve.replay import (
        REGIMES,
        build_trace,
        default_pool,
        load_trace,
        replay_trace,
        save_trace,
    )

    if args.backend not in available_backends():
        print(
            f"error: unknown backend {args.backend!r}; "
            f"available: {available_backends()}",
            file=sys.stderr,
        )
        return 2
    for flag, value in (
        ("--requests", args.requests),
        ("--rate", args.rate),
        ("--pool", args.pool),
        ("--workers", args.workers),
        ("--backlog", args.backlog),
        ("--time-scale", args.time_scale),
    ):
        if value <= 0:
            print(f"error: {flag} must be positive", file=sys.stderr)
            return 2
    runtime_config = get_config()
    shards = args.shards if args.shards is not None else runtime_config.serve_shards
    if shards < 0:
        print("error: --shards must be non-negative", file=sys.stderr)
        return 2
    seed = args.seed if args.seed is not None else runtime_config.fuzz_seed

    if args.trace_file is not None:
        try:
            trace = load_trace(Path(args.trace_file))
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not trace:
            print(f"error: {args.trace_file} holds no events", file=sys.stderr)
            return 2
        regime = "trace"
    else:
        if args.workloads:
            try:
                pool = [parse_workload_spec(spec) for spec in args.workloads]
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        else:
            pool = default_pool(args.pool, seed=seed)
        trace = build_trace(args.regime, args.requests, args.rate, pool, seed=seed)
        regime = args.regime
    if args.record is not None:
        save_trace(Path(args.record), trace)
        print(f"recorded {len(trace)} events -> {args.record}")

    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    if shards > 0:
        from .cluster import ClusterConfig, ClusterService

        client = ClusterService(
            cache_dir=cache_dir,
            config=ClusterConfig(
                shards=shards,
                worker_threads=args.workers,
                max_backlog=args.backlog,
            ),
        )
    else:
        client = ServiceClient(
            cache_dir=cache_dir,
            config=ServiceConfig(
                max_workers=args.workers,
                max_backlog=args.backlog,
            ),
        )
    try:
        report = replay_trace(
            client,
            trace,
            regime=regime,
            backend=args.backend,
            engine=args.engine,
            seed=seed,
            time_scale=args.time_scale,
        )
    finally:
        client.close(drain=True)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        shape = REGIMES.get(regime)
        if shape is not None:
            print(f"regime {shape.name}: {shape.description}")
        print(f"replay: {report.summary_line()}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect, prune or clear the on-disk result cache."""
    from .runtime import ResultCache

    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.action == "info":
        stats = cache.stats()
        rows = [[key, value] for key, value in stats.items()]
        print(format_table(["field", "value"], rows, title="Result cache"))
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.directory}")
        return 0
    # prune
    if args.max_entries is None and args.max_bytes is None:
        print(
            "error: cache prune needs --max-entries and/or --max-bytes",
            file=sys.stderr,
        )
        return 2
    report = cache.prune(max_entries=args.max_entries, max_bytes=args.max_bytes)
    print(
        f"pruned {report.removed} entries ({report.bytes_freed} bytes) from "
        f"{cache.directory}; {report.remaining} entries "
        f"({report.bytes_remaining} bytes) remain"
    )
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Expose process-wide telemetry over HTTP, or print one scrape."""
    from .obs.exposition import render
    from .obs.metrics import get_registry
    from .runtime import ResultCache

    if args.port is not None and not 0 <= args.port <= 65535:
        print("error: --port must be in [0, 65535]", file=sys.stderr)
        return 2
    if args.duration is not None and args.duration <= 0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    registry = get_registry()
    # No service snapshot here, so the cache reports through the registry
    # (a serving daemon instead carries cache stats inside its snapshot).
    cache = ResultCache(args.cache_dir or default_cache_dir())
    cache.register_metrics(registry)
    if args.once:
        sys.stdout.write(render(registry.collect()))
        return 0
    import time

    from .config import get_config
    from .obs.http import MetricsServer

    port = args.port if args.port is not None else get_config().metrics_port
    server = MetricsServer(registry=registry, port=port).start()
    print(
        f"metrics: {server.url}/metrics (config {server.url}/config, "
        f"dashboard {server.url}/) — Ctrl-C to stop"
    )
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    """Run one tiny GeMM job end-to-end, twice, through a result cache."""
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-selftest-")
    engine = getattr(args, "engine", DEFAULT_ENGINE)
    workload = GemmWorkload(name="selftest_gemm", m=16, n=16, k=16)
    job = SimJob(workload=workload, engine=engine, label="selftest")

    cold = Simulator(cache_dir=cache_dir)
    outcome = cold.simulate(job)
    warm = Simulator(cache_dir=cache_dir)
    cached = warm.simulate(job)

    checks = [
        ("cycle simulation ran", cold.stats.executed == 1),
        ("functional match vs numpy", outcome.functional_match is True),
        ("utilization in (0, 1]", 0.0 < outcome.utilization <= 1.0),
        ("second run served from cache", warm.stats.executed == 0 and cached.cache_hit),
        ("cached outcome identical", cached.as_dict() == {**outcome.as_dict(), "cache_hit": True}),
        ("cache counters consistent", cold.stats.cache_misses == 1 and warm.stats.cache_hits == 1),
    ]
    steady_line = ""
    if engine == "event":
        # Exercise the steady-span macro-step fast path on a kernel dense
        # enough to reach a periodic steady state, against lockstep truth.
        from .compiler import compile_workload
        from .system import AcceleratorSystem, datamaestro_evaluation_system

        design = datamaestro_evaluation_system()
        dense = GemmWorkload(name="selftest_dense", m=64, n=64, k=64)
        program = compile_workload(dense, design, FeatureSet.all_enabled())
        fast = AcceleratorSystem(design)
        fast_result = fast.run(program, engine="event")
        slow_result = AcceleratorSystem(design).run(program, engine="lockstep")
        steady = fast.steady_stats()
        checks.append(("macro fast path engaged", steady.get("jumps", 0) >= 1))
        checks.append(
            (
                "macro fast path bit-identical to lockstep",
                fast_result.streaming_cycles == slow_result.streaming_cycles
                and fast_result.bank_conflicts == slow_result.bank_conflicts,
            )
        )
        steady_line = (
            f", macro-stepped {steady.get('cycles_skipped', 0)}/"
            f"{fast_result.streaming_cycles} dense cycles in "
            f"{steady.get('jumps', 0)} jump(s)"
        )
    failed = [label for label, ok in checks if not ok]
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if failed:
        print(f"selftest FAILED: {failed}", file=sys.stderr)
        return 1
    print(
        f"selftest ok: {workload.name} at {outcome.utilization:.2%} utilization, "
        f"{outcome.kernel_cycles} cycles, engine {engine}"
        f"{steady_line} (cache: {cache_dir})"
    )
    return 0


def cmd_suite_info(_args: argparse.Namespace) -> int:
    suite = synthetic_suite()
    rows = []
    for group, workloads in suite.items():
        rows.append(
            [
                group.value,
                len(workloads),
                workloads[0].name,
                workloads[-1].name,
            ]
        )
    print(
        format_table(
            ["group", "count", "first workload", "last workload"],
            rows,
            title=f"Synthetic ablation suite ({sum(FULL_SUITE_COUNTS.values())} workloads)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DataMaestro reproduction command-line interface"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list-experiments", help="list the reproducible paper tables/figures"
    ).set_defaults(func=cmd_list_experiments)

    experiment = subparsers.add_parser("experiment", help="run one experiment")
    experiment.add_argument("name", help="experiment id (e.g. fig7, table3)")
    experiment.add_argument(
        "--workloads-per-group",
        type=int,
        default=None,
        help="subset size per workload group (fig7 only)",
    )
    _add_runtime_flags(experiment)
    experiment.set_defaults(func=cmd_experiment)

    gemm = subparsers.add_parser("simulate-gemm", help="simulate one GeMM kernel")
    gemm.add_argument("m", type=int)
    gemm.add_argument("n", type=int)
    gemm.add_argument("k", type=int)
    gemm.add_argument("--transposed", action="store_true", help="A operand stored transposed")
    gemm.add_argument("--quantize", action="store_true", help="requantize the output to int8")
    gemm.add_argument("--baseline", action="store_true", help="disable every DataMaestro feature")
    _add_runtime_flags(gemm)
    gemm.set_defaults(func=cmd_simulate_gemm)

    conv = subparsers.add_parser("simulate-conv", help="simulate one convolution layer")
    conv.add_argument("height", type=int)
    conv.add_argument("width", type=int)
    conv.add_argument("cin", type=int)
    conv.add_argument("cout", type=int)
    conv.add_argument("--kernel", type=int, default=3)
    conv.add_argument("--stride", type=int, default=1)
    conv.add_argument("--padding", type=int, default=0)
    conv.add_argument("--quantize", action="store_true")
    conv.add_argument("--baseline", action="store_true")
    _add_runtime_flags(conv)
    conv.set_defaults(func=cmd_simulate_conv)

    batch = subparsers.add_parser(
        "batch", help="run a batch of workload jobs through the runtime"
    )
    batch.add_argument(
        "workloads",
        nargs="+",
        metavar="SPEC",
        help="workload specs, e.g. gemm:64x64x64 or conv:16x16x16x32:k3:p1",
    )
    batch.add_argument(
        "--backend",
        default=DATAMAESTRO_BACKEND,
        help="simulation backend (datamaestro or baseline:<slug>)",
    )
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument("--baseline", action="store_true", help="disable every DataMaestro feature")
    _add_runtime_flags(batch, cache_default=True)
    batch.set_defaults(func=cmd_batch)

    sweep = subparsers.add_parser(
        "sweep", help="sweep the ablation feature ladder over workloads"
    )
    sweep.add_argument("workloads", nargs="+", metavar="SPEC")
    sweep.add_argument(
        "--steps",
        default=None,
        help="comma-separated ablation steps (default: all six)",
    )
    sweep.add_argument("--backend", default=None, help="simulation backend")
    sweep.add_argument("--seed", type=int, default=0)
    _add_runtime_flags(sweep, cache_default=True)
    sweep.set_defaults(func=cmd_sweep)

    explore = subparsers.add_parser(
        "explore",
        help="multi-objective design-space exploration (see docs/EXPLORE.md)",
    )
    explore.add_argument(
        "--space",
        default="default",
        help=f"named search space (available: {sorted(named_search_spaces())})",
    )
    explore.add_argument(
        "--axis",
        action="append",
        default=None,
        metavar="NAME=V1,V2,...",
        help="override or add an axis, e.g. --axis data_fifo_depth=2,4,8",
    )
    explore.add_argument(
        "--strategy",
        default="grid",
        help=f"search strategy (available: {available_strategies()})",
    )
    explore.add_argument(
        "--budget",
        type=int,
        default=16,
        metavar="N",
        help="maximum number of candidate evaluations (default: 16)",
    )
    explore.add_argument(
        "--objectives",
        default="cycles,energy_pj,area",
        help="comma-separated objectives, e.g. cycles,energy_pj,area "
        "(prefix min:/max: to override the intrinsic direction)",
    )
    explore.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="SPEC",
        help="workload spec (repeatable; default: the 64x64x96 DSE GeMM)",
    )
    explore.add_argument("--seed", type=int, default=0, help="strategy seed")
    explore.add_argument(
        "--sim-seed", type=int, default=0, help="operand-data seed for simulations"
    )
    explore.add_argument(
        "--population",
        type=int,
        default=8,
        help="batch/population size for random and evolutionary strategies",
    )
    explore.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="JSONL run journal enabling checkpoint/resume",
    )
    explore.add_argument(
        "--resume",
        action="store_true",
        help="replay an existing journal instead of starting fresh",
    )
    explore.add_argument("--json", default=None, metavar="PATH", help="write JSON report")
    explore.add_argument("--csv", default=None, metavar="PATH", help="write CSV report")
    _add_runtime_flags(explore, cache_default=True)
    explore.set_defaults(func=cmd_explore)

    serve = subparsers.add_parser(
        "serve",
        help="serve a workload stream through the async simulation service "
        "(see docs/SERVE.md)",
    )
    serve.add_argument(
        "workloads",
        nargs="+",
        metavar="SPEC",
        help="workload specs, e.g. gemm:64x64x64 or conv:16x16x16x32:k3:p1",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="submit each spec N times (duplicates coalesce in-flight; default: 1)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=1,
        metavar="N",
        help="spread submissions round-robin over N client names (default: 1)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent service worker threads (default: 2)",
    )
    serve.add_argument(
        "--backlog",
        type=int,
        default=64,
        metavar="N",
        help="bounded admission-queue depth; overflowing it is rejected "
        "with QueueFullError (default: 64)",
    )
    serve.add_argument(
        "--progress-interval",
        type=int,
        default=250_000,
        metavar="CYCLES",
        help="cycle cadence of streaming progress events (default: 250000)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard the service over N worker processes (private GIL each; "
        "default: $REPRO_SERVE_SHARDS or 0 = single-process thread service; "
        "see docs/SERVE.md)",
    )
    serve.add_argument(
        "--journal",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="durable job journal for the sharded service: accepted jobs are "
        "recorded before dispatch and a restarted daemon resubmits the "
        "unfinished backlog (bare flag: $REPRO_JOURNAL_DIR/serve.jsonl)",
    )
    serve.add_argument(
        "--stats-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="periodically print a structured stats snapshot (queue depth, "
        "hit rates, latency percentiles, live shards)",
    )
    serve.add_argument(
        "--stats-format",
        choices=("text", "json"),
        default="text",
        help="format of --stats-interval records: human-readable text or "
        "one JSON snapshot object per line (default: text)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose /metrics (Prometheus text), /snapshot, /config and the "
        "live dashboard on this loopback port while serving (0 = ephemeral, "
        "the bound port is printed; default: $REPRO_METRICS_PORT, else off; "
        "see docs/OBSERVABILITY.md)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record the per-job span timeline and export Chrome trace-event "
        "JSON to PATH on exit (open in Perfetto; default: $REPRO_TRACE, "
        "else off)",
    )
    serve.add_argument(
        "--events",
        action="store_true",
        help="stream per-job lifecycle/progress events to stdout "
        "(single-process mode only)",
    )
    serve.add_argument(
        "--backend",
        default=DATAMAESTRO_BACKEND,
        help="simulation backend (datamaestro or baseline:<slug>)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--baseline", action="store_true", help="disable every DataMaestro feature"
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-datamaestro)",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    serve.add_argument(
        "--engine",
        choices=available_engines(),
        default=DEFAULT_ENGINE,
        help="simulation engine: 'event' skips provably idle cycles, "
        "'lockstep' is the legacy per-cycle loop (see docs/ENGINE.md)",
    )
    serve.set_defaults(func=cmd_serve)

    replay = subparsers.add_parser(
        "replay",
        help="drive the service with a realistic arrival trace and report "
        "latency/coalescing per regime (see docs/SCENARIOS.md)",
    )
    replay.add_argument(
        "workloads",
        nargs="*",
        metavar="SPEC",
        help="optional workload pool specs (e.g. gemm:16x16x16); default: a "
        "seeded generator pool of --pool distinct small workloads",
    )
    replay.add_argument(
        "--regime",
        choices=("poisson", "diurnal", "bursty", "hotkey"),
        default="poisson",
        help="synthetic arrival regime (ignored with --trace-file; "
        "default: poisson)",
    )
    replay.add_argument(
        "--requests",
        type=int,
        default=100,
        metavar="N",
        help="number of arrivals to synthesise (default: 100)",
    )
    replay.add_argument(
        "--rate",
        type=float,
        default=200.0,
        metavar="PER_SEC",
        help="nominal arrival rate in requests/second (default: 200)",
    )
    replay.add_argument(
        "--pool",
        type=int,
        default=24,
        metavar="N",
        help="size of the generated workload pool — the request key space "
        "(default: 24)",
    )
    replay.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="multiply arrival gaps by FACTOR (< 1 compresses the trace; "
        "default: 1.0)",
    )
    replay.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="replay a recorded JSONL trace instead of synthesising one",
    )
    replay.add_argument(
        "--record",
        default=None,
        metavar="PATH",
        help="write the (synthesised or loaded) trace as JSONL to PATH "
        "before replaying it",
    )
    replay.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="replay against the N-process sharded cluster (default: "
        "$REPRO_SERVE_SHARDS or 0 = single-process thread service)",
    )
    replay.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker threads per service/shard (default: 2)",
    )
    replay.add_argument(
        "--backlog",
        type=int,
        default=256,
        metavar="N",
        help="bounded admission-queue depth (default: 256)",
    )
    replay.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="trace/pool seed (default: $REPRO_FUZZ_SEED, else 0)",
    )
    replay.add_argument(
        "--json",
        action="store_true",
        help="print the full replay report as JSON instead of one summary line",
    )
    replay.add_argument(
        "--backend",
        default=DATAMAESTRO_BACKEND,
        help="simulation backend (datamaestro or baseline:<slug>)",
    )
    replay.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-datamaestro)",
    )
    replay.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    replay.add_argument(
        "--engine",
        choices=available_engines(),
        default=DEFAULT_ENGINE,
        help="simulation engine: 'event' skips provably idle cycles, "
        "'lockstep' is the legacy per-cycle loop (see docs/ENGINE.md)",
    )
    replay.set_defaults(func=cmd_replay)

    cache = subparsers.add_parser(
        "cache", help="inspect, prune or clear the on-disk result cache"
    )
    cache.add_argument(
        "action",
        choices=("info", "prune", "clear"),
        help="info: show entry count/size; prune: evict least-recently-used "
        "entries down to the given bounds; clear: delete every entry",
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-datamaestro)",
    )
    cache.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="prune: keep at most N entries",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="prune: keep at most BYTES of cached outcomes",
    )
    cache.set_defaults(func=cmd_cache)

    metrics = subparsers.add_parser(
        "metrics",
        help="expose process-wide telemetry over HTTP, or print one "
        "Prometheus scrape (see docs/OBSERVABILITY.md)",
    )
    metrics.add_argument(
        "--once",
        action="store_true",
        help="print one Prometheus text scrape to stdout and exit",
    )
    metrics.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="bind port (0 = ephemeral; default: $REPRO_METRICS_PORT, else 0)",
    )
    metrics.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for a fixed time then exit (default: until Ctrl-C)",
    )
    metrics.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result cache whose entry count/size to expose (default: "
        "$REPRO_CACHE_DIR or ~/.cache/repro-datamaestro)",
    )
    metrics.set_defaults(func=cmd_metrics)

    selftest = subparsers.add_parser(
        "selftest", help="tiny cached GeMM end-to-end smoke test"
    )
    selftest.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="cache directory (default: a fresh temporary directory)",
    )
    selftest.add_argument(
        "--engine",
        choices=available_engines(),
        default=DEFAULT_ENGINE,
        help="simulation engine to exercise (event or lockstep)",
    )
    selftest.set_defaults(func=cmd_selftest)

    subparsers.add_parser(
        "suite-info", help="describe the synthetic ablation workload suite"
    ).set_defaults(func=cmd_suite_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
