"""Command-line interface of the DataMaestro reproduction.

Provides quick access to the main entry points without writing Python:

* ``python -m repro.cli list-experiments`` — list the paper tables/figures
  that can be regenerated and how;
* ``python -m repro.cli experiment fig7 --workloads-per-group 3`` — run one
  experiment and print its report;
* ``python -m repro.cli simulate-gemm 64 64 64 --quantize`` — compile and
  cycle-simulate a single GeMM kernel on the evaluation system;
* ``python -m repro.cli simulate-conv 16 16 16 32 --kernel 3 --stride 1`` —
  the same for a convolution layer;
* ``python -m repro.cli suite-info`` — describe the synthetic ablation suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.reporting import format_table
from .compiler import compile_workload
from .core.params import FeatureSet
from .experiments import EXPERIMENTS
from .system.design import datamaestro_evaluation_system
from .system.system import AcceleratorSystem
from .workloads.spec import ConvWorkload, GemmWorkload
from .workloads.synthetic import FULL_SUITE_COUNTS, synthetic_suite


def _features_from_args(args: argparse.Namespace) -> FeatureSet:
    if getattr(args, "baseline", False):
        return FeatureSet.all_disabled()
    return FeatureSet.all_enabled()


def _print_simulation(result, program) -> None:
    rows = [
        ["workload", program.name],
        ["ideal compute cycles", result.ideal_compute_cycles],
        ["kernel cycles", result.kernel_cycles],
        ["utilization", f"{result.utilization:.2%}"],
        ["memory word reads", result.memory_reads],
        ["memory word writes", result.memory_writes],
        ["bank conflicts", result.bank_conflicts],
        ["pre-pass cycles", result.prepass_cycles],
    ]
    print(format_table(["metric", "value"], rows, title="Simulation result"))


def cmd_list_experiments(_args: argparse.Namespace) -> int:
    rows = []
    descriptions = {
        "table1": "Feature comparison of SotA data-movement solutions",
        "fig4": "AGU address-generation example (4x4x4 GeMM on 2x2x2 PEs)",
        "fig7": "Ablation study: utilization and data access counts",
        "fig8": "FPGA prototype resource utilization",
        "fig9": "Area and power breakdowns, energy efficiency",
        "fig10": "Throughput and overhead comparison with SotA",
        "table3": "Real-world DNN utilization (ResNet/VGG/ViT/BERT)",
    }
    for name in EXPERIMENTS:
        rows.append([name, descriptions.get(name, ""), f"python -m repro.experiments.{EXPERIMENTS[name].__name__.split('.')[-1]}"])
    print(format_table(["id", "paper artefact", "command"], rows, title="Experiments"))
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    module = EXPERIMENTS.get(args.name)
    if module is None:
        print(f"unknown experiment {args.name!r}; run 'list-experiments'", file=sys.stderr)
        return 2
    kwargs = {}
    if args.name == "fig7" and args.workloads_per_group is not None:
        kwargs["workloads_per_group"] = args.workloads_per_group
    results = module.run(**kwargs)
    print(module.report(results))
    return 0


def cmd_simulate_gemm(args: argparse.Namespace) -> int:
    design = datamaestro_evaluation_system()
    workload = GemmWorkload(
        name=f"cli_gemm_{args.m}x{args.n}x{args.k}",
        m=args.m,
        n=args.n,
        k=args.k,
        transposed_a=args.transposed,
        quantize=args.quantize,
    )
    program = compile_workload(workload, design, _features_from_args(args))
    result = AcceleratorSystem(design).run(program)
    _print_simulation(result, program)
    return 0


def cmd_simulate_conv(args: argparse.Namespace) -> int:
    design = datamaestro_evaluation_system()
    workload = ConvWorkload(
        name=f"cli_conv_{args.height}x{args.width}x{args.cin}_{args.cout}",
        in_height=args.height,
        in_width=args.width,
        in_channels=args.cin,
        out_channels=args.cout,
        kernel_h=args.kernel,
        kernel_w=args.kernel,
        stride=args.stride,
        padding=args.padding,
        quantize=args.quantize,
    )
    program = compile_workload(workload, design, _features_from_args(args))
    result = AcceleratorSystem(design).run(program)
    _print_simulation(result, program)
    return 0


def cmd_suite_info(_args: argparse.Namespace) -> int:
    suite = synthetic_suite()
    rows = []
    for group, workloads in suite.items():
        rows.append(
            [
                group.value,
                len(workloads),
                workloads[0].name,
                workloads[-1].name,
            ]
        )
    print(
        format_table(
            ["group", "count", "first workload", "last workload"],
            rows,
            title=f"Synthetic ablation suite ({sum(FULL_SUITE_COUNTS.values())} workloads)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DataMaestro reproduction command-line interface"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list-experiments", help="list the reproducible paper tables/figures"
    ).set_defaults(func=cmd_list_experiments)

    experiment = subparsers.add_parser("experiment", help="run one experiment")
    experiment.add_argument("name", help="experiment id (e.g. fig7, table3)")
    experiment.add_argument(
        "--workloads-per-group",
        type=int,
        default=None,
        help="subset size per workload group (fig7 only)",
    )
    experiment.set_defaults(func=cmd_experiment)

    gemm = subparsers.add_parser("simulate-gemm", help="simulate one GeMM kernel")
    gemm.add_argument("m", type=int)
    gemm.add_argument("n", type=int)
    gemm.add_argument("k", type=int)
    gemm.add_argument("--transposed", action="store_true", help="A operand stored transposed")
    gemm.add_argument("--quantize", action="store_true", help="requantize the output to int8")
    gemm.add_argument("--baseline", action="store_true", help="disable every DataMaestro feature")
    gemm.set_defaults(func=cmd_simulate_gemm)

    conv = subparsers.add_parser("simulate-conv", help="simulate one convolution layer")
    conv.add_argument("height", type=int)
    conv.add_argument("width", type=int)
    conv.add_argument("cin", type=int)
    conv.add_argument("cout", type=int)
    conv.add_argument("--kernel", type=int, default=3)
    conv.add_argument("--stride", type=int, default=1)
    conv.add_argument("--padding", type=int, default=0)
    conv.add_argument("--quantize", action="store_true")
    conv.add_argument("--baseline", action="store_true")
    conv.set_defaults(func=cmd_simulate_conv)

    subparsers.add_parser(
        "suite-info", help="describe the synthetic ablation workload suite"
    ).set_defaults(func=cmd_suite_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
