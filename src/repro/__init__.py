"""DataMaestro reproduction: decoupled access/execute streaming for dataflow accelerators.

This package is a cycle-level, pure-Python reproduction of the DAC 2025 paper
*DataMaestro: A Versatile and Efficient Data Streaming Engine Bringing
Decoupled Memory Access To Dataflow Accelerators*.  ``docs/ARCHITECTURE.md``
maps the package stack; ``docs/RUNTIME.md`` documents the simulation
runtime; the per-module docstrings and the experiment reports record the
paper-vs-measured comparison for every table and figure.

Top-level convenience imports expose the most frequently used entry points;
the sub-packages hold the full API:

* :mod:`repro.core` — the DataMaestro streaming engine itself;
* :mod:`repro.memory` — the multi-banked scratchpad and crossbar;
* :mod:`repro.accelerators` — the GeMM and quantization datapaths;
* :mod:`repro.system` — the evaluation system (five DataMaestros + host);
* :mod:`repro.compiler` — workload-to-CSR mapping, layouts and allocation;
* :mod:`repro.workloads` — workload specs, the synthetic suite, DNN models;
* :mod:`repro.runtime` — the simulation runtime: declarative jobs, the
  :class:`~repro.runtime.simulator.Simulator` facade, parallel batch
  execution and the on-disk result cache;
* :mod:`repro.serve` — the asynchronous simulation service on top of the
  runtime: request coalescing, fair bounded admission, streaming
  lifecycle/progress events (``docs/SERVE.md``);
* :mod:`repro.cluster` — the service sharded across supervised worker
  processes: hash routing, heartbeat/restart supervision and a durable
  job journal (``docs/SERVE.md``);
* :mod:`repro.obs` — the unified telemetry layer: metrics registry,
  Prometheus ``/metrics`` exporter, per-job trace timelines and the live
  ops dashboard (``docs/OBSERVABILITY.md``);
* :mod:`repro.config` — the typed :class:`~repro.config.RuntimeConfig`
  holding every environment knob;
* :mod:`repro.baselines` — SotA comparator models;
* :mod:`repro.analysis` — metrics, ablation driver, area/power models;
* :mod:`repro.explore` — multi-objective design-space exploration: search
  spaces over the design-time parameters, pluggable grid/random/evolutionary
  strategies, Pareto frontiers and resumable runs (``docs/EXPLORE.md``);
* :mod:`repro.experiments` — one module per paper table/figure.

The runtime is the front door for running simulations::

    from repro import SimJob, Simulator
    from repro.workloads import GemmWorkload

    outcome = Simulator().simulate(
        SimJob(workload=GemmWorkload(name="demo", m=64, n=64, k=64))
    )
"""

from .core.params import FeatureSet, StreamerDesign, StreamerMode, StreamerRuntimeConfig
from .core.streamer import DataMaestro
from .memory.addressing import AddressingMode, BankGeometry

__version__ = "1.6.0"

from .engine import DEFAULT_ENGINE, EVENT_ENGINE, LOCKSTEP_ENGINE, available_engines
from .runtime import BatchRunner, SimJob, SimOutcome, Simulator, simulate

__all__ = [
    "DataMaestro",
    "FeatureSet",
    "StreamerDesign",
    "StreamerMode",
    "StreamerRuntimeConfig",
    "AddressingMode",
    "BankGeometry",
    "SimJob",
    "SimOutcome",
    "Simulator",
    "BatchRunner",
    "simulate",
    "DEFAULT_ENGINE",
    "EVENT_ENGINE",
    "LOCKSTEP_ENGINE",
    "available_engines",
    "__version__",
]
