"""Simulation result containers.

A kernel simulation produces three kinds of information:

* timing — how many cycles the kernel took, split into the streaming phase
  and any explicit pre-passes (software transpose / im2col performed by the
  DMA when the corresponding DataMaestro feature is disabled);
* activity — scratchpad word accesses, bank conflicts, per-streamer stall
  and active cycles;
* functional output — the tensors written back to the scratchpad, so the
  result can be checked against a numpy oracle.

:class:`SimulationResult` gathers all of it in one immutable-ish record with
the derived metrics (utilization, throughput) the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from .stats import StreamerStats

#: Default cycle budget shared by every simulation driver.
#:
#: Historically :class:`~repro.sim.runner.CycleRunner` defaulted to ten
#: million cycles while :meth:`repro.system.system.AcceleratorSystem.run`
#: hard-coded five million; the single source of truth now lives here and is
#: threaded through the runner, the system model and
#: :class:`~repro.runtime.job.SimJob`.  Exceeding the budget raises
#: :class:`SimulationLimitError`, whose ``detail`` carries the deadlock
#: report.
DEFAULT_CYCLE_BUDGET = 10_000_000


@dataclass
class SimulationResult:
    """Outcome of running one kernel on the cycle-level system model."""

    workload_name: str
    ideal_compute_cycles: int
    streaming_cycles: int
    prepass_cycles: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    bank_conflicts: int = 0
    streamer_stats: Dict[str, StreamerStats] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    outputs: Dict[str, Any] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived metrics.
    # ------------------------------------------------------------------
    @property
    def kernel_cycles(self) -> int:
        """Total cycles attributed to the kernel (pre-passes + streaming)."""
        return self.prepass_cycles + self.streaming_cycles

    @property
    def memory_accesses(self) -> int:
        """Total scratchpad word accesses (reads + writes)."""
        return self.memory_reads + self.memory_writes

    @property
    def utilization(self) -> float:
        """PE-array utilization as defined in the paper (§IV-C, Table III).

        Ratio of theoretical computation cycles without memory stalls to the
        cycles the accelerator/DataMaestros were actually active.
        """
        if self.kernel_cycles <= 0:
            return 0.0
        return self.ideal_compute_cycles / self.kernel_cycles

    def throughput_gops(self, num_pes: int, frequency_ghz: float = 1.0) -> float:
        """Normalized throughput in GOPS (2 ops per MAC), Figure 10 style."""
        return 2.0 * num_pes * frequency_ghz * self.utilization

    def as_dict(self) -> Dict[str, Any]:
        """Flatten the result into a plain dictionary for reports."""
        data: Dict[str, Any] = {
            "workload": self.workload_name,
            "ideal_compute_cycles": self.ideal_compute_cycles,
            "streaming_cycles": self.streaming_cycles,
            "prepass_cycles": self.prepass_cycles,
            "kernel_cycles": self.kernel_cycles,
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
            "memory_accesses": self.memory_accesses,
            "bank_conflicts": self.bank_conflicts,
            "utilization": self.utilization,
        }
        data.update({f"counter_{k}": v for k, v in self.counters.items()})
        return data


@dataclass
class RunSummary:
    """Aggregate of several :class:`SimulationResult` (e.g. one per layer)."""

    name: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def add(self, key: str, result: SimulationResult) -> None:
        self.results[key] = result

    @property
    def total_ideal_cycles(self) -> int:
        return sum(r.ideal_compute_cycles for r in self.results.values())

    @property
    def total_kernel_cycles(self) -> int:
        return sum(r.kernel_cycles for r in self.results.values())

    @property
    def utilization(self) -> float:
        total = self.total_kernel_cycles
        if total <= 0:
            return 0.0
        return self.total_ideal_cycles / total

    @property
    def total_memory_accesses(self) -> int:
        return sum(r.memory_accesses for r in self.results.values())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "num_results": len(self.results),
            "total_ideal_cycles": self.total_ideal_cycles,
            "total_kernel_cycles": self.total_kernel_cycles,
            "utilization": self.utilization,
            "total_memory_accesses": self.total_memory_accesses,
        }


def weighted_utilization(parts: Mapping[str, SimulationResult]) -> float:
    """Utilization of a set of results weighted by ideal compute cycles."""
    ideal = sum(r.ideal_compute_cycles for r in parts.values())
    actual = sum(r.kernel_cycles for r in parts.values())
    if actual <= 0:
        return 0.0
    return ideal / actual


@dataclass
class SimulationLimitError(RuntimeError):
    """Raised when a simulation exceeds its cycle budget (likely deadlock)."""

    message: str
    cycles: int = 0
    detail: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.message} after {self.cycles} cycles{extra}"
