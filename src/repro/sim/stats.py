"""Statistics counters shared by all cycle-level components.

The simulator is organised around plain Python objects that are stepped once
per clock cycle.  Rather than every component inventing its own ad-hoc
dictionaries, they all record events into a :class:`StatCounters` instance.
The counters are intentionally simple — named integer counters plus a couple
of convenience helpers — so they can be merged, diffed and rendered in the
experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping


class StatCounters:
    """A bag of named integer counters.

    Counters spring into existence at first use, which keeps the component
    code free from boilerplate while still producing a complete picture at
    the end of a run.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] = self._counters.get(name, 0) + int(amount)

    def set(self, name: str, value: int) -> None:
        """Overwrite counter ``name`` with ``value``."""
        self._counters[name] = int(value)

    def get(self, name: str, default: int = 0) -> int:
        """Return the value of counter ``name`` (``default`` if unset)."""
        return self._counters.get(name, default)

    def merge(self, other: "StatCounters") -> None:
        """Add every counter of ``other`` into this instance."""
        for name, value in other._counters.items():
            self.add(name, value)

    def as_dict(self) -> Dict[str, int]:
        """Return a copy of all counters."""
        return dict(self._counters)

    def names(self) -> Iterable[str]:
        return self._counters.keys()

    def reset(self) -> None:
        self._counters.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatCounters({inner})"


@dataclass
class StreamerStats:
    """Per-streamer summary extracted at the end of a simulation."""

    name: str
    words_streamed: int = 0
    requests_issued: int = 0
    requests_granted: int = 0
    bank_conflict_retries: int = 0
    stall_cycles: int = 0
    active_cycles: int = 0
    extension_words: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        data = {
            "words_streamed": self.words_streamed,
            "requests_issued": self.requests_issued,
            "requests_granted": self.requests_granted,
            "bank_conflict_retries": self.bank_conflict_retries,
            "stall_cycles": self.stall_cycles,
            "active_cycles": self.active_cycles,
        }
        for key, value in self.extension_words.items():
            data[f"extension_{key}"] = value
        return data


def merge_counter_dicts(dicts: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Sum a sequence of counter dictionaries key-wise."""
    total: Dict[str, int] = {}
    for entry in dicts:
        for key, value in entry.items():
            total[key] = total.get(key, 0) + value
    return total
