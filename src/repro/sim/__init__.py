"""Cycle-level simulation primitives (FIFOs, counters, results, runner)."""

from .fifo import Fifo, FifoError
from .result import (
    DEFAULT_CYCLE_BUDGET,
    RunSummary,
    SimulationLimitError,
    SimulationResult,
    weighted_utilization,
)
from .runner import (
    DEFAULT_PROGRESS_INTERVAL,
    CycleRunner,
    Steppable,
    run_to_completion,
)
from .stats import StatCounters, StreamerStats, merge_counter_dicts
from .trace import CycleTracer, TraceProbe, trace_streamer_occupancy

__all__ = [
    "DEFAULT_CYCLE_BUDGET",
    "DEFAULT_PROGRESS_INTERVAL",
    "CycleTracer",
    "TraceProbe",
    "trace_streamer_occupancy",
    "Fifo",
    "FifoError",
    "StatCounters",
    "StreamerStats",
    "merge_counter_dicts",
    "SimulationResult",
    "RunSummary",
    "SimulationLimitError",
    "weighted_utilization",
    "CycleRunner",
    "Steppable",
    "run_to_completion",
]
