"""Cycle-loop runner shared by the system models.

The DataMaestro evaluation system and the baseline models all expose a
``step() -> bool`` method ("perform one clock cycle, return True while still
busy").  :class:`CycleRunner` drives such objects until completion, enforces a
cycle budget so deadlocks surface as errors instead of hangs, and records the
elapsed cycle count.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Sequence

from .result import SimulationLimitError


class Steppable(Protocol):
    """Anything with a per-cycle ``step`` method."""

    def step(self) -> bool:
        """Advance one cycle; return ``True`` while more work remains."""
        ...


class CycleRunner:
    """Drives a :class:`Steppable` object to completion.

    Parameters
    ----------
    max_cycles:
        Upper bound on the number of cycles to simulate.  Exceeding it raises
        :class:`SimulationLimitError`, which almost always indicates a
        deadlock (e.g. a write streamer waiting for data that will never
        arrive because of a mis-configured AGU).
    progress_callback:
        Optional callable invoked every ``progress_interval`` cycles with the
        current cycle count; useful for long experiment sweeps.
    """

    def __init__(
        self,
        max_cycles: int = 10_000_000,
        progress_callback: Optional[Callable[[int], None]] = None,
        progress_interval: int = 100_000,
    ) -> None:
        if max_cycles <= 0:
            raise ValueError("max_cycles must be positive")
        self.max_cycles = int(max_cycles)
        self.progress_callback = progress_callback
        self.progress_interval = int(progress_interval)

    def run(self, target: Steppable, name: Optional[str] = None) -> int:
        """Step ``target`` until it reports completion; return cycles used.

        ``name`` identifies the job/program in the
        :class:`SimulationLimitError` raised on budget exhaustion; when
        omitted, the target's ``name`` attribute is used if it has one.
        """
        if name is None:
            name = getattr(target, "name", None)
        cycles = 0
        busy = True
        while busy:
            if cycles >= self.max_cycles:
                what = f"simulation of {name!r}" if name else "simulation"
                raise SimulationLimitError(
                    message=f"{what} exceeded its cycle budget",
                    cycles=cycles,
                    detail=f"max_cycles={self.max_cycles}",
                )
            busy = target.step()
            cycles += 1
            if (
                self.progress_callback is not None
                and cycles % self.progress_interval == 0
            ):
                self.progress_callback(cycles)
        return cycles

    def run_many(
        self,
        targets: Sequence[Steppable],
        names: Optional[Sequence[str]] = None,
    ) -> List[int]:
        """Run several targets back to back; return cycles used per target.

        Each target gets the full ``max_cycles`` budget, and the progress
        callback keeps its per-target cadence.  ``names`` (parallel to
        ``targets``) labels budget-exhaustion errors.
        """
        if names is not None and len(names) != len(targets):
            raise ValueError("names must parallel targets")
        return [
            self.run(target, name=names[index] if names is not None else None)
            for index, target in enumerate(targets)
        ]


def run_to_completion(
    target: Steppable, max_cycles: int = 10_000_000, name: Optional[str] = None
) -> int:
    """Convenience wrapper around :class:`CycleRunner` for one-off runs."""
    return CycleRunner(max_cycles=max_cycles).run(target, name=name)
