"""Cycle-loop runner shared by the system models.

The DataMaestro evaluation system and other cycle-level models expose a
``step() -> bool`` method ("perform one clock cycle, return True while still
busy").  :class:`CycleRunner` drives such objects until completion, enforces a
cycle budget so deadlocks surface as errors instead of hangs, and records the
elapsed cycle count.

The runner is a thin driver over the simulation engines in
:mod:`repro.engine`: targets that implement the event protocol
(``last_step_activity`` / ``next_event_cycle()`` / ``advance(n)`` alongside
``step()``) are scheduled event-driven by default — time jumps over provably
inactive spans, and targets that additionally implement the macro protocol
(``steady_span(limit)`` / ``advance_active(n)``, see
:mod:`repro.engine.steady`) get whole *active* steady-state spans replayed
vectorized — while plain :class:`Steppable` targets fall back to the legacy
lockstep loop.  Pass ``engine="lockstep"`` or ``engine="event"`` to force a
mode.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Sequence

from .result import DEFAULT_CYCLE_BUDGET

#: Default cycle cadence of cooperative progress callbacks, shared by
#: every surface that accepts one (CycleRunner, AcceleratorSystem.run,
#: the engine protocol and the runtime backends).
DEFAULT_PROGRESS_INTERVAL = 100_000


class Steppable(Protocol):
    """Anything with a per-cycle ``step`` method."""

    def step(self) -> bool:
        """Advance one cycle; return ``True`` while more work remains."""
        ...


class CycleRunner:
    """Drives a :class:`Steppable` object to completion.

    Parameters
    ----------
    max_cycles:
        Upper bound on the number of cycles to simulate.  Exceeding it raises
        :class:`SimulationLimitError`, which almost always indicates a
        deadlock (e.g. a write streamer waiting for data that will never
        arrive because of a mis-configured AGU).  Defaults to the package-wide
        :data:`~repro.sim.result.DEFAULT_CYCLE_BUDGET`.
    progress_callback:
        Optional callable invoked every ``progress_interval`` cycles with the
        current cycle count; useful for long experiment sweeps.  Under the
        event engine a bulk advance that crosses one or more interval
        boundaries triggers a single invocation with the post-jump count.
    engine:
        ``"event"``, ``"lockstep"``, or ``None`` (the default) to pick
        automatically: event-driven for targets implementing the event
        protocol, lockstep otherwise.
    """

    def __init__(
        self,
        max_cycles: int = DEFAULT_CYCLE_BUDGET,
        progress_callback: Optional[Callable[[int], None]] = None,
        progress_interval: int = DEFAULT_PROGRESS_INTERVAL,
        engine: Optional[str] = None,
    ) -> None:
        # Imported here to keep repro.sim free of a hard package-level
        # dependency on repro.engine (which imports repro.sim.result).
        from ..engine import validate_engine

        if max_cycles <= 0:
            raise ValueError("max_cycles must be positive")
        self.max_cycles = int(max_cycles)
        self.progress_callback = progress_callback
        self.progress_interval = int(progress_interval)
        self.engine = validate_engine(engine) if engine is not None else None

    def _engine_for(self, target: Steppable):
        from ..engine import (
            EVENT_ENGINE,
            LOCKSTEP_ENGINE,
            get_engine,
            supports_event_protocol,
        )

        if self.engine is not None:
            return get_engine(self.engine)
        name = EVENT_ENGINE if supports_event_protocol(target) else LOCKSTEP_ENGINE
        return get_engine(name)

    def run(self, target: Steppable, name: Optional[str] = None) -> int:
        """Step ``target`` until it reports completion; return cycles used.

        ``name`` identifies the job/program in the
        :class:`SimulationLimitError` raised on budget exhaustion; when
        omitted, the target's ``name`` attribute is used if it has one.
        """
        if name is None:
            name = getattr(target, "name", None)
        describe = f"simulation of {name!r}" if name else "simulation"
        return self._engine_for(target).drive(
            target,
            max_cycles=self.max_cycles,
            describe=describe,
            detail=getattr(target, "deadlock_report", None),
            progress_callback=self.progress_callback,
            progress_interval=self.progress_interval,
        )

    def run_many(
        self,
        targets: Sequence[Steppable],
        names: Optional[Sequence[str]] = None,
    ) -> List[int]:
        """Run several targets back to back; return cycles used per target.

        Each target gets the full ``max_cycles`` budget, and the progress
        callback keeps its per-target cadence.  ``names`` (parallel to
        ``targets``) labels budget-exhaustion errors.
        """
        if names is not None and len(names) != len(targets):
            raise ValueError("names must parallel targets")
        return [
            self.run(target, name=names[index] if names is not None else None)
            for index, target in enumerate(targets)
        ]


def run_to_completion(
    target: Steppable,
    max_cycles: int = DEFAULT_CYCLE_BUDGET,
    name: Optional[str] = None,
    engine: Optional[str] = None,
) -> int:
    """Convenience wrapper around :class:`CycleRunner` for one-off runs."""
    return CycleRunner(max_cycles=max_cycles, engine=engine).run(target, name=name)
