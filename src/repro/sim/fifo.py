"""Bounded FIFO queues used throughout the cycle-level models.

Every buffering structure in DataMaestro (the per-channel address FIFOs, the
per-channel data FIFOs and the small response queues inside the memory
subsystem) is a simple bounded first-in/first-out queue with valid/ready
semantics.  The :class:`Fifo` class below models exactly that: a producer may
``push`` only while the FIFO is not full, a consumer may ``pop`` only while it
is not empty, and occupancy statistics are tracked so utilization and area
analyses can reason about buffer sizing.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class FifoError(RuntimeError):
    """Raised when a FIFO protocol rule is violated (push-when-full, ...)."""


class Fifo(Generic[T]):
    """A bounded FIFO with valid/ready-style accessors.

    Parameters
    ----------
    depth:
        Maximum number of entries the FIFO can hold.  Must be positive.
    name:
        Optional name used in error messages and debugging output.
    """

    def __init__(self, depth: int, name: str = "fifo") -> None:
        if depth <= 0:
            raise ValueError(f"FIFO depth must be positive, got {depth}")
        self.depth = int(depth)
        self.name = name
        self._entries: Deque[T] = deque()
        self.total_pushes = 0
        self.total_pops = 0
        self.max_occupancy = 0

    # ------------------------------------------------------------------
    # Status queries (the "valid"/"ready" view of the FIFO).
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[T]:
        return iter(self._entries)

    @property
    def occupancy(self) -> int:
        """Number of entries currently stored."""
        return len(self._entries)

    @property
    def free_slots(self) -> int:
        """Number of additional entries that can be pushed right now."""
        return self.depth - len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.depth

    def can_push(self, count: int = 1) -> bool:
        """Return ``True`` if ``count`` entries can be pushed this cycle."""
        return self.free_slots >= count

    def can_pop(self, count: int = 1) -> bool:
        """Return ``True`` if ``count`` entries can be popped this cycle."""
        return len(self._entries) >= count

    # ------------------------------------------------------------------
    # Data movement.
    # ------------------------------------------------------------------
    def push(self, item: T) -> None:
        """Append ``item``; raises :class:`FifoError` when full."""
        if self.is_full:
            raise FifoError(f"push into full FIFO '{self.name}' (depth={self.depth})")
        self._entries.append(item)
        self.total_pushes += 1
        if len(self._entries) > self.max_occupancy:
            self.max_occupancy = len(self._entries)

    def push_many(self, items: Iterable[T]) -> None:
        """Push every item of ``items`` (all-or-nothing is *not* enforced)."""
        for item in items:
            self.push(item)

    def pop(self) -> T:
        """Remove and return the oldest entry; raises when empty."""
        if not self._entries:
            raise FifoError(f"pop from empty FIFO '{self.name}'")
        self.total_pops += 1
        return self._entries.popleft()

    def peek(self) -> T:
        """Return the oldest entry without removing it; raises when empty."""
        if not self._entries:
            raise FifoError(f"peek into empty FIFO '{self.name}'")
        return self._entries[0]

    def peek_optional(self) -> Optional[T]:
        """Return the oldest entry or ``None`` when the FIFO is empty."""
        if not self._entries:
            return None
        return self._entries[0]

    def clear(self) -> None:
        """Drop all entries (used when re-configuring between kernels)."""
        self._entries.clear()

    def replace_entries(self, items: Iterable[T]) -> None:
        """Swap the stored entries without touching the push/pop counters.

        Used by the macro-step fast path, which bulk-applies the span's
        push/pop counts separately and then installs the window of entries
        the per-cycle loop would have left behind.
        """
        entries: Deque[T] = deque(items)
        if len(entries) > self.depth:
            raise FifoError(
                f"replace_entries overfills FIFO '{self.name}' "
                f"({len(entries)} > depth {self.depth})"
            )
        self._entries = entries

    def snapshot(self) -> List[T]:
        """Return the current contents oldest-first (for tests/debugging)."""
        return list(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fifo(name={self.name!r}, depth={self.depth}, "
            f"occupancy={self.occupancy})"
        )
