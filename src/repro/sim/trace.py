"""Cycle-trace recording for debugging and visualising streaming behaviour.

The cycle-level models expose their state through ordinary attributes;
:class:`CycleTracer` samples a set of named probes once per cycle and stores
the values, so a user can inspect how FIFO occupancies, outstanding request
counts or accelerator progress evolve over a kernel — the Python equivalent
of dumping a few waveform signals from the RTL.

Example
-------
>>> tracer = CycleTracer()
>>> tracer.add_probe("a_occupancy",
...                  lambda: system.streamers["A"].channels[0].data_fifo.occupancy)
>>> while not system.finished:
...     system.step()
...     tracer.sample()
>>> tracer.as_columns()["a_occupancy"][:5]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class TraceProbe:
    """One named signal sampled every cycle."""

    name: str
    sample: Callable[[], object]


@dataclass
class CycleTracer:
    """Samples registered probes once per call to :meth:`sample`."""

    probes: List[TraceProbe] = field(default_factory=list)
    rows: List[Dict[str, object]] = field(default_factory=list)
    max_rows: Optional[int] = None

    # ------------------------------------------------------------------
    def add_probe(self, name: str, sample: Callable[[], object]) -> None:
        """Register a probe; ``sample`` is called with no arguments."""
        if any(probe.name == name for probe in self.probes):
            raise ValueError(f"probe {name!r} already registered")
        self.probes.append(TraceProbe(name=name, sample=sample))

    def sample(self, cycle: Optional[int] = None) -> Dict[str, object]:
        """Record one row of probe values (optionally tagged with a cycle)."""
        row: Dict[str, object] = {}
        if cycle is not None:
            row["cycle"] = cycle
        else:
            row["cycle"] = len(self.rows)
        for probe in self.probes:
            row[probe.name] = probe.sample()
        if self.max_rows is None or len(self.rows) < self.max_rows:
            self.rows.append(row)
        return row

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[object]:
        """All sampled values of one probe (or the cycle column)."""
        if name != "cycle" and all(probe.name != name for probe in self.probes):
            raise KeyError(f"unknown probe {name!r}")
        return [row.get(name) for row in self.rows]

    def as_columns(self) -> Dict[str, List[object]]:
        names = ["cycle"] + [probe.name for probe in self.probes]
        return {name: self.column(name) for name in names}

    def clear(self) -> None:
        self.rows.clear()

    # ------------------------------------------------------------------
    def to_csv(self, separator: str = ",") -> str:
        """Render the trace as CSV text (header + one line per cycle)."""
        names = ["cycle"] + [probe.name for probe in self.probes]
        lines = [separator.join(names)]
        for row in self.rows:
            lines.append(separator.join(str(row.get(name, "")) for name in names))
        return "\n".join(lines)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Min/max/mean per numeric probe (non-numeric probes are skipped)."""
        stats: Dict[str, Dict[str, float]] = {}
        for probe in self.probes:
            values = [
                float(v)
                for v in self.column(probe.name)
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
            if not values:
                continue
            stats[probe.name] = {
                "min": min(values),
                "max": max(values),
                "mean": sum(values) / len(values),
            }
        return stats


def trace_streamer_occupancy(system, ports: Sequence[str]) -> CycleTracer:
    """Convenience: build a tracer over the data-FIFO occupancy of ``ports``.

    ``system`` is an :class:`repro.system.system.AcceleratorSystem` with a
    loaded program; one probe per (port, channel 0) plus the GeMM-core
    progress is registered.
    """
    tracer = CycleTracer()
    for port in ports:
        streamer = system.streamers[port]

        def occupancy_probe(target):
            return lambda: target.channels[0].data_fifo.occupancy

        def outstanding_probe(target):
            return lambda: target.channels[0].outstanding

        def words_probe(target):
            return lambda: target.words_streamed

        tracer.add_probe(f"{port}_ch0_data_occupancy", occupancy_probe(streamer))
        tracer.add_probe(f"{port}_ch0_outstanding", outstanding_probe(streamer))
        tracer.add_probe(f"{port}_words_streamed", words_probe(streamer))
    tracer.add_probe("gemm_progress", lambda: round(system.gemm_core.progress, 4))
    return tracer
