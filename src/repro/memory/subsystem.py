"""Memory subsystem: interleaved crossbar + banked scratchpad arbitration.

The paper's memory subsystem (§III-A, Fig. 2(a)) is an ``N_BF``-banked
scratchpad behind an interleaved crossbar that gives every requester port
access to every bank.  Each bank is single ported, so when two requests
target the same bank in the same cycle one of them has to wait — a *bank
conflict*, the central performance effect the DataMaestro features are
designed to avoid.

:class:`MemorySubsystem` models this at cycle granularity:

* requesters (DataMaestro channels, the DMA) ``submit`` word requests that
  are queued per requester and served strictly in order per requester;
* once per cycle :meth:`arbitrate` considers the head-of-queue request of
  every requester, grants at most one request per bank (round-robin among
  contenders) and performs the SRAM access;
* read data and write acknowledgements become visible to the requester
  ``read_latency`` cycles after the grant, via :meth:`collect_responses`.

For the event-driven simulation kernel (:mod:`repro.engine`) the subsystem
additionally implements the next-event protocol: :meth:`next_event_cycle`
reports the earliest cycle at which the memory can change state (now, when
requests are pending or matured responses await collection; the earliest
``ready_cycle`` when only in-flight responses remain; never, when fully
idle), and :meth:`advance` fast-forwards the clock over a span the scheduler
has proven inactive.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from ..sim.stats import StatCounters
from .addressing import BankGeometry
from .scratchpad import ScratchpadMemory


@dataclass
class MemoryRequest:
    """A single word-wide request from one requester port."""

    requester: str
    is_write: bool
    bank: int
    line: int
    data: Optional[np.ndarray] = None
    strobe: Optional[np.ndarray] = None
    tag: Any = None
    submit_cycle: int = 0


@dataclass
class MemoryResponse:
    """Completion of a request, visible ``read_latency`` cycles after grant."""

    requester: str
    is_write: bool
    tag: Any
    data: Optional[np.ndarray]
    ready_cycle: int
    grant_cycle: int


@dataclass
class _RequesterState:
    pending: Deque[MemoryRequest] = field(default_factory=deque)
    responses: Deque[MemoryResponse] = field(default_factory=deque)
    granted: int = 0
    retries: int = 0


class MemorySubsystem:
    """Banked scratchpad + crossbar with one grant per bank per cycle."""

    def __init__(self, geometry: BankGeometry, read_latency: int = 1) -> None:
        if read_latency < 1:
            raise ValueError("read_latency must be at least 1 cycle")
        self.geometry = geometry
        self.read_latency = int(read_latency)
        self.scratchpad = ScratchpadMemory(geometry)
        self.cycle = 0
        self.counters = StatCounters()
        self._requesters: Dict[str, _RequesterState] = {}
        self._in_flight: List[MemoryResponse] = []
        self._last_grant: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Requester-facing API.
    # ------------------------------------------------------------------
    def _state(self, requester: str) -> _RequesterState:
        state = self._requesters.get(requester)
        if state is None:
            state = _RequesterState()
            self._requesters[requester] = state
        return state

    def submit(self, request: MemoryRequest) -> None:
        """Queue a request; it will be served in submission order."""
        if not 0 <= request.bank < self.geometry.num_banks:
            raise ValueError(
                f"bank {request.bank} out of range "
                f"(num_banks={self.geometry.num_banks})"
            )
        request.submit_cycle = self.cycle
        self._state(request.requester).pending.append(request)

    def pending_count(self, requester: str) -> int:
        """Number of not-yet-granted requests queued by ``requester``."""
        state = self._requesters.get(requester)
        return len(state.pending) if state else 0

    def outstanding_count(self, requester: str) -> int:
        """Pending plus granted-but-not-yet-delivered requests."""
        state = self._requesters.get(requester)
        pending = len(state.pending) if state else 0
        in_flight = sum(
            1 for response in self._in_flight if response.requester == requester
        )
        waiting = len(state.responses) if state else 0
        return pending + in_flight + waiting

    def collect_responses(self, requester: str) -> List[MemoryResponse]:
        """Return (and consume) all responses ready for ``requester``."""
        state = self._requesters.get(requester)
        if state is None or not state.responses:
            return []
        ready: List[MemoryResponse] = []
        while state.responses and state.responses[0].ready_cycle <= self.cycle:
            ready.append(state.responses.popleft())
        return ready

    # ------------------------------------------------------------------
    # Cycle behaviour.
    # ------------------------------------------------------------------
    def deliver(self) -> int:
        """Move matured in-flight responses to their requester queues.

        Called at the start of every cycle, before requesters look at their
        response queues.  Returns the number of responses that matured (the
        event scheduler uses this as an activity signal).
        """
        if not self._in_flight:
            return 0
        still_flying: List[MemoryResponse] = []
        delivered = 0
        for response in self._in_flight:
            if response.ready_cycle <= self.cycle:
                self._state(response.requester).responses.append(response)
                delivered += 1
            else:
                still_flying.append(response)
        self._in_flight = still_flying
        return delivered

    def _pick_winner(self, bank: int, contenders: List[MemoryRequest]) -> int:
        """Round-robin selection among contenders for one bank."""
        if len(contenders) == 1:
            return 0
        names = [request.requester for request in contenders]
        last = self._last_grant.get(bank)
        if last is None:
            return 0
        # Grant the first requester strictly "after" the previous winner in
        # name order, wrapping around — a simple rotating-priority arbiter.
        ordering = sorted(range(len(names)), key=lambda i: names[i])
        for idx in ordering:
            if names[idx] > last:
                return idx
        return ordering[0]

    def arbitrate(self) -> int:
        """Grant at most one head-of-queue request per bank this cycle.

        Returns the number of grants performed.
        """
        by_bank: Dict[int, List[MemoryRequest]] = {}
        for name, state in self._requesters.items():
            if state.pending:
                head = state.pending[0]
                by_bank.setdefault(head.bank, []).append(head)

        for bank, contenders in by_bank.items():
            if len(contenders) > 1:
                self.counters.add("bank_conflicts", len(contenders) - 1)
                for request in contenders:
                    self._state(request.requester).retries += 1
            winner_idx = self._pick_winner(bank, contenders)
            winner = contenders[winner_idx]
            self._last_grant[bank] = winner.requester
            state = self._state(winner.requester)
            state.pending.popleft()
            state.granted += 1
            self._perform_access(winner)
        return len(by_bank)

    def _perform_access(self, request: MemoryRequest) -> None:
        if request.is_write:
            if request.data is None:
                raise ValueError("write request without data")
            self.scratchpad.write_word(
                request.bank, request.line, request.data, request.strobe
            )
            self.counters.add("word_writes")
            data = None
        else:
            data = self.scratchpad.read_word(request.bank, request.line)
            self.counters.add("word_reads")
        response = MemoryResponse(
            requester=request.requester,
            is_write=request.is_write,
            tag=request.tag,
            data=data,
            ready_cycle=self.cycle + self.read_latency,
            grant_cycle=self.cycle,
        )
        self._in_flight.append(response)

    def step(self) -> int:
        """Arbitrate this cycle's requests and advance the clock.

        Returns the number of grants performed this cycle.
        """
        granted = self.arbitrate()
        self.cycle += 1
        return granted

    # ------------------------------------------------------------------
    # Next-event protocol (see repro.engine).
    # ------------------------------------------------------------------
    def next_event_cycle(self) -> Optional[int]:
        """Earliest cycle at which this subsystem can change state.

        * ``self.cycle`` when any request awaits arbitration or a matured
          response awaits collection — the memory can act *now*;
        * the earliest ``ready_cycle`` when only in-flight responses remain —
          the memory's only pending event is that delivery;
        * ``None`` when fully idle: without new requests, nothing will ever
          happen here again.
        """
        for state in self._requesters.values():
            if state.pending or state.responses:
                return self.cycle
        earliest: Optional[int] = None
        for response in self._in_flight:
            if earliest is None or response.ready_cycle < earliest:
                earliest = response.ready_cycle
        return earliest

    def advance(self, cycles: int) -> None:
        """Fast-forward the clock over ``cycles`` provably inactive cycles.

        The caller (the event scheduler) guarantees that no request is
        pending and no in-flight response matures inside the span, so the
        per-cycle :meth:`arbitrate` calls being skipped would all have been
        no-ops.
        """
        if cycles < 0:
            raise ValueError("cannot advance by a negative number of cycles")
        self.cycle += cycles

    # ------------------------------------------------------------------
    # Statistics & housekeeping.
    # ------------------------------------------------------------------
    @property
    def total_reads(self) -> int:
        return self.counters.get("word_reads")

    @property
    def total_writes(self) -> int:
        return self.counters.get("word_writes")

    @property
    def total_conflicts(self) -> int:
        return self.counters.get("bank_conflicts")

    def requester_stats(self, requester: str) -> Dict[str, int]:
        state = self._requesters.get(requester)
        if state is None:
            return {"granted": 0, "retries": 0}
        return {"granted": state.granted, "retries": state.retries}

    def add_uncounted_accesses(self, reads: int = 0, writes: int = 0) -> None:
        """Account accesses performed by an abstracted agent (DMA pre-pass).

        The DMA model performs explicit data-manipulation pre-passes
        (software transpose, software im2col) functionally via the backdoor
        but still needs their word accesses reflected in the totals used by
        Figure 7(b); this hook adds them without occupying crossbar ports.
        """
        if reads:
            self.counters.add("word_reads", reads)
            self.counters.add("dma_word_reads", reads)
        if writes:
            self.counters.add("word_writes", writes)
            self.counters.add("dma_word_writes", writes)

    def idle(self) -> bool:
        """True when no requests are pending or in flight anywhere."""
        if self._in_flight:
            return False
        for state in self._requesters.values():
            if state.pending or state.responses:
                return False
        return True

    def reset_statistics(self) -> None:
        """Clear counters while keeping memory contents."""
        self.counters.reset()
        for state in self._requesters.values():
            state.granted = 0
            state.retries = 0
        for bank in self.scratchpad.banks:
            bank.read_count = 0
            bank.write_count = 0
